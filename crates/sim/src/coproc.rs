//! The instruction-set coprocessor: microcode, timing, and functional
//! execution.
//!
//! [`mult_microcode`] emits the exact instruction sequence of one
//! homomorphic multiplication (Fig. 2 through the instruction set of
//! Table II); [`Coprocessor::run_mult`] prices it with the cycle model and
//! the DMA model, and [`Coprocessor::execute_mult`] additionally performs
//! the *real computation* on ciphertext data (the arithmetic is delegated
//! to the bit-exact `hefv-core` kernels; the schedule-level model in
//! [`crate::nttsched`] separately proves the NTT dataflow is realizable
//! conflict-free).

use crate::clock::ClockConfig;
use crate::cost::{CostModel, Instr, TradCostModel};
use crate::dma::DmaModel;
use hefv_core::context::FvContext;
use hefv_core::encrypt::Ciphertext;
use hefv_core::eval::{self, Backend};
use hefv_core::keys::RelinKey;
use hefv_math::rns::HpsPrecision;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Software sync overhead charged once per high-level op, µs — the
/// calibrated residue of Table I's Mult after instructions and key DMA.
/// Shared by the HPS default ([`Coprocessor::mult_sync_us`]) and every
/// traditional-datapath pricing helper so the two stay in lockstep.
pub const MULT_SYNC_US: f64 = 19.64;

/// One microcode step of a high-level operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// Execute a coprocessor instruction.
    Instr(Instr),
    /// DMA a relinearization-key polynomial from DDR (`bytes` in one
    /// mutex-arbitrated burst).
    RlkDma {
        /// Burst size in bytes.
        bytes: usize,
    },
    /// Software synchronization overhead, µs.
    SyncUs(f64),
}

/// Emits the `Mult` microcode for a parameter shape with `k` ciphertext
/// primes, `l` extension primes, `digits` relinearization digits and
/// `rpaus` parallel RPAUs.
///
/// For the paper's shape (k=6, l=7, digits=6, rpaus=7) the per-instruction
/// call counts equal Table II: NTT×14, Inverse-NTT×8, CWM×20, CWA×26,
/// Memory-Rearrange×22, Lift×4, Scale×3.
pub fn mult_microcode(
    k: usize,
    l: usize,
    digits: usize,
    rpaus: usize,
    n: usize,
    sync_us: f64,
) -> Vec<Op> {
    let full_batches = (k + l).div_ceil(rpaus);
    let q_batches = k.div_ceil(rpaus);
    let mut ops = Vec::new();
    let instr = |v: &mut Vec<Op>, i: Instr, times: usize| {
        for _ in 0..times {
            v.push(Op::Instr(i));
        }
    };
    // Step 1: Lift the four operand polynomials q → Q.
    instr(&mut ops, Instr::Lift, 4);
    // Step 2: forward transforms of the lifted polynomials (each preceded
    // by the bit-reversal Memory Rearrange), then the tensor products.
    for _ in 0..4 * full_batches {
        ops.push(Op::Instr(Instr::MemoryRearrange));
        ops.push(Op::Instr(Instr::Ntt));
    }
    // c̃0 = c00·c10 ; c̃2 = c01·c11 ; c̃1 = c00·c11 + c01·c10
    instr(&mut ops, Instr::CoeffMul, 4 * full_batches);
    instr(&mut ops, Instr::CoeffAdd, full_batches);
    // Step 3: inverse transforms of c̃0, c̃1, c̃2 and Scale Q→q.
    for _ in 0..3 * full_batches {
        ops.push(Op::Instr(Instr::InverseNtt));
        ops.push(Op::Instr(Instr::MemoryRearrange));
    }
    instr(&mut ops, Instr::Scale, 3);
    // Step 4: WordDecomp — spread each RNS digit across the q residues
    // (one conditional-subtract pass and one sign-correction pass per
    // digit, both coefficient-wise ops on the RPAUs).
    instr(&mut ops, Instr::CoeffAdd, 2 * digits * q_batches);
    // Transforms of the digit polynomials.
    for _ in 0..digits * q_batches {
        ops.push(Op::Instr(Instr::MemoryRearrange));
        ops.push(Op::Instr(Instr::Ntt));
    }
    // SoP against rlk0 and rlk1: `digits` products and `digits − 1`
    // accumulating adds per key, streaming the key from DDR.
    for _ in 0..digits {
        // one rlk0_i and one rlk1_i polynomial per digit
        ops.push(Op::RlkDma { bytes: k * n * 4 });
        ops.push(Op::RlkDma { bytes: k * n * 4 });
        instr(&mut ops, Instr::CoeffMul, 2 * q_batches);
    }
    instr(&mut ops, Instr::CoeffAdd, 2 * (digits - 1) * q_batches);
    // Inverse transforms of the two SoP accumulators, then the final adds
    // c0 = c̃0 + sop0, c1 = c̃1 + sop1.
    for _ in 0..2 * q_batches {
        ops.push(Op::Instr(Instr::InverseNtt));
        ops.push(Op::Instr(Instr::MemoryRearrange));
    }
    instr(&mut ops, Instr::CoeffAdd, 2 * q_batches);
    ops.push(Op::SyncUs(sync_us));
    ops
}

/// Emits the key-switch (Galois rotation) microcode for a shape with `k`
/// ciphertext primes, `digits` decomposition digits and `rpaus` parallel
/// RPAUs: one automorphism permutation pass per ciphertext polynomial,
/// digit decomposition of the permuted `c1`, and a relinearization-shaped
/// SoP streaming the switching key (`2·digits` polynomials of `k` residues)
/// from DDR. The HPS coprocessor decomposes into `digits = k` words; the
/// traditional architecture uses its coarser relinearization digit count.
pub fn rotate_microcode(k: usize, digits: usize, rpaus: usize, n: usize, sync_us: f64) -> Vec<Op> {
    let q_batches = k.div_ceil(rpaus);
    let mut ops = Vec::new();
    // σ_g applied to c0 and c1: permutation passes.
    ops.push(Op::Instr(Instr::MemoryRearrange));
    ops.push(Op::Instr(Instr::MemoryRearrange));
    // Digit decomposition of σ(c1): spread + sign-correct, transform.
    for _ in 0..digits {
        for _ in 0..2 * q_batches {
            ops.push(Op::Instr(Instr::CoeffAdd));
        }
        ops.push(Op::Instr(Instr::MemoryRearrange));
        ops.push(Op::Instr(Instr::Ntt));
    }
    // SoP against both key halves, streaming the switching key.
    for _ in 0..digits {
        ops.push(Op::RlkDma { bytes: k * n * 4 });
        ops.push(Op::RlkDma { bytes: k * n * 4 });
        for _ in 0..2 * q_batches {
            ops.push(Op::Instr(Instr::CoeffMul));
        }
    }
    for _ in 0..2 * digits.saturating_sub(1) * q_batches {
        ops.push(Op::Instr(Instr::CoeffAdd));
    }
    for _ in 0..2 * q_batches {
        ops.push(Op::Instr(Instr::InverseNtt));
        ops.push(Op::Instr(Instr::MemoryRearrange));
    }
    // Final add of σ(c0).
    for _ in 0..q_batches {
        ops.push(Op::Instr(Instr::CoeffAdd));
    }
    ops.push(Op::SyncUs(sync_us));
    ops
}

/// Emits the **hoisted** rotation-batch microcode: the digit decomposition
/// of `c1` (spread + sign-correct + transform per digit) runs **once**,
/// then each of the `rotations` key switches is only a permutation pass, a
/// key-streaming SoP and its inverse transforms — the Halevi–Shoup
/// hoisting `hefv_core::galois::HoistedCiphertext` implements in software.
/// Software sync is charged once for the whole batch (one fused dispatch).
pub fn hoisted_rotations_microcode(
    k: usize,
    digits: usize,
    rpaus: usize,
    n: usize,
    rotations: usize,
    sync_us: f64,
) -> Vec<Op> {
    let q_batches = k.div_ceil(rpaus);
    let mut ops = Vec::new();
    // Hoisted decomposition: once for every rotation in the batch.
    for _ in 0..digits {
        for _ in 0..2 * q_batches {
            ops.push(Op::Instr(Instr::CoeffAdd));
        }
        ops.push(Op::Instr(Instr::MemoryRearrange));
        ops.push(Op::Instr(Instr::Ntt));
    }
    for _ in 0..rotations {
        // σ_g on c0 plus the NTT-domain digit permutations.
        for _ in 0..1 + digits {
            ops.push(Op::Instr(Instr::MemoryRearrange));
        }
        // SoP against both key halves, streaming this rotation's key.
        for _ in 0..digits {
            ops.push(Op::RlkDma { bytes: k * n * 4 });
            ops.push(Op::RlkDma { bytes: k * n * 4 });
            for _ in 0..2 * q_batches {
                ops.push(Op::Instr(Instr::CoeffMul));
            }
        }
        for _ in 0..2 * digits.saturating_sub(1) * q_batches {
            ops.push(Op::Instr(Instr::CoeffAdd));
        }
        // This rotation's own inverse transforms and final add.
        for _ in 0..2 * q_batches {
            ops.push(Op::Instr(Instr::InverseNtt));
            ops.push(Op::Instr(Instr::MemoryRearrange));
        }
        for _ in 0..q_batches {
            ops.push(Op::Instr(Instr::CoeffAdd));
        }
    }
    ops.push(Op::SyncUs(sync_us));
    ops
}

/// Emits the hoisted slot-sum microcode: `log2(n)` rotate-and-add doubling
/// rounds folded in groups of `group_rounds` — per group, one digit
/// decomposition of the accumulator serves the `2^J − 1` subset-product
/// rotations, whose SoPs accumulate in the NTT domain and share a single
/// pair of inverse transforms (the `c0` track never leaves the NTT
/// domain, so only `c1` pays an inverse per group).
pub fn sum_slots_microcode(
    k: usize,
    digits: usize,
    rpaus: usize,
    n: usize,
    group_rounds: usize,
    sync_us: f64,
) -> Vec<Op> {
    let q_batches = k.div_ceil(rpaus);
    let rounds = (n / 2).trailing_zeros() as usize + 1;
    let group_rounds = group_rounds.max(1);
    let mut ops = Vec::new();
    let mut done = 0usize;
    while done < rounds {
        let in_group = group_rounds.min(rounds - done);
        let rotations = (1usize << in_group) - 1;
        // Decomposition of the evolving accumulator, once per group.
        for _ in 0..digits {
            for _ in 0..2 * q_batches {
                ops.push(Op::Instr(Instr::CoeffAdd));
            }
            ops.push(Op::Instr(Instr::MemoryRearrange));
            ops.push(Op::Instr(Instr::Ntt));
        }
        for _ in 0..rotations {
            // Fused digit + c0 permutations, key DMA and SoP.
            for _ in 0..1 + digits {
                ops.push(Op::Instr(Instr::MemoryRearrange));
            }
            for _ in 0..digits {
                ops.push(Op::RlkDma { bytes: k * n * 4 });
                ops.push(Op::RlkDma { bytes: k * n * 4 });
                for _ in 0..2 * q_batches {
                    ops.push(Op::Instr(Instr::CoeffMul));
                }
            }
            for _ in 0..2 * digits.saturating_sub(1) * q_batches {
                ops.push(Op::Instr(Instr::CoeffAdd));
            }
        }
        // One inverse transform for the accumulated c1 SoP, plus the
        // group's accumulator adds.
        for _ in 0..q_batches {
            ops.push(Op::Instr(Instr::InverseNtt));
            ops.push(Op::Instr(Instr::MemoryRearrange));
        }
        for _ in 0..2 * q_batches {
            ops.push(Op::Instr(Instr::CoeffAdd));
        }
        done += in_group;
    }
    ops.push(Op::SyncUs(sync_us));
    ops
}

/// Timing report for one high-level operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpReport {
    /// Instruction call counts.
    pub calls: HashMap<String, u32>,
    /// FPGA cycles spent in instructions.
    pub instr_fpga_cycles: u64,
    /// Time spent in relinearization-key DMA, µs.
    pub rlk_dma_us: f64,
    /// Software sync overhead, µs.
    pub sync_us: f64,
    /// Total time, µs.
    pub total_us: f64,
    /// Total in the paper's Arm-cycle unit.
    pub total_arm_cycles: u64,
}

/// One simulated coprocessor (the fast, HPS-based design unless a
/// traditional model is attached).
#[derive(Debug, Clone)]
pub struct Coprocessor {
    /// Instruction cycle model.
    pub cost: CostModel,
    /// DMA model shared with the platform.
    pub dma: DmaModel,
    /// Clock domains.
    pub clocks: ClockConfig,
    /// Software sync overhead charged once per `Mult` (calibrated: the
    /// residue of Table I's Mult after instructions and rlk DMA).
    pub mult_sync_us: f64,
}

impl Default for Coprocessor {
    fn default() -> Self {
        Coprocessor {
            cost: CostModel::default(),
            dma: DmaModel::default(),
            clocks: ClockConfig::default(),
            mult_sync_us: MULT_SYNC_US,
        }
    }
}

impl Coprocessor {
    /// Prices a microcode sequence.
    pub fn run(&self, ops: &[Op]) -> OpReport {
        let mut calls: HashMap<String, u32> = HashMap::new();
        let mut fpga = 0u64;
        let mut rlk_us = 0.0;
        let mut sync_us = 0.0;
        for op in ops {
            match *op {
                Op::Instr(i) => {
                    *calls.entry(i.name().to_string()).or_insert(0) += 1;
                    fpga += self.cost.instr_cycles(i);
                }
                Op::RlkDma { bytes } => {
                    rlk_us += self.dma.transfer_us(bytes, 1) + self.dma.mutex_sync_us;
                }
                Op::SyncUs(us) => sync_us += us,
            }
        }
        let total_us = self.clocks.fpga_cycles_to_us(fpga) + rlk_us + sync_us;
        OpReport {
            calls,
            instr_fpga_cycles: fpga,
            rlk_dma_us: rlk_us,
            sync_us,
            total_us,
            total_arm_cycles: self.clocks.us_to_arm_cycles(total_us),
        }
    }

    /// Prices one homomorphic `Mult` for the paper's parameter shape.
    pub fn run_mult(&self, ctx: &FvContext) -> OpReport {
        let p = ctx.params();
        let rpaus = (p.k() + p.l()).div_ceil(2);
        let ops = mult_microcode(p.k(), p.l(), p.k(), rpaus, p.n, self.mult_sync_us);
        self.run(&ops)
    }

    /// Prices one homomorphic `Add` (two coefficient-wise additions over
    /// the `q` batch, block-pipelined).
    pub fn run_add(&self) -> OpReport {
        let fpga = self.cost.add_op_cycles();
        let total_us = self.clocks.fpga_cycles_to_us(fpga);
        let mut calls = HashMap::new();
        calls.insert(Instr::CoeffAdd.name().to_string(), 2);
        OpReport {
            calls,
            instr_fpga_cycles: fpga,
            rlk_dma_us: 0.0,
            sync_us: 0.0,
            total_us,
            total_arm_cycles: self.clocks.us_to_arm_cycles(total_us),
        }
    }

    /// Prices a Galois rotation (the key-switching extension): one
    /// automorphism permutation (a Memory-Rearrange-class pass per
    /// polynomial) plus a relinearization-shaped SoP over the key digits —
    /// exactly the Table II instruction classes, no new hardware.
    pub fn run_rotate(&self, ctx: &FvContext) -> OpReport {
        let p = ctx.params();
        let rpaus = (p.k() + p.l()).div_ceil(2);
        let ops = rotate_microcode(p.k(), p.k(), rpaus, p.n, self.mult_sync_us);
        self.run(&ops)
    }

    /// Prices a hoisted batch of `rotations` Galois rotations of one
    /// ciphertext: the decomposition's transforms are paid once, every
    /// rotation is a permutation + key-streaming SoP + its own inverse
    /// transforms (see [`hoisted_rotations_microcode`]).
    pub fn run_hoisted_rotations(&self, ctx: &FvContext, rotations: usize) -> OpReport {
        let p = ctx.params();
        let rpaus = (p.k() + p.l()).div_ceil(2);
        let ops =
            hoisted_rotations_microcode(p.k(), p.k(), rpaus, p.n, rotations, self.mult_sync_us);
        self.run(&ops)
    }

    /// Prices one hoisted slot sum (grouped doubling rounds — see
    /// [`sum_slots_microcode`]).
    pub fn run_sum_slots(&self, ctx: &FvContext) -> OpReport {
        let p = ctx.params();
        let rpaus = (p.k() + p.l()).div_ceil(2);
        let ops = sum_slots_microcode(
            p.k(),
            p.k(),
            rpaus,
            p.n,
            hefv_core::galois::HOIST_GROUP_ROUNDS,
            self.mult_sync_us,
        );
        self.run(&ops)
    }

    /// Splits a hoisted rotation batch's instruction time into (transform
    /// µs, basis-conversion µs); rotations never lift or scale, so the
    /// second component is zero.
    pub fn hoisted_rotations_kernel_split_us(
        &self,
        ctx: &FvContext,
        rotations: usize,
    ) -> (f64, f64) {
        let p = ctx.params();
        let rpaus = (p.k() + p.l()).div_ceil(2);
        let ops =
            hoisted_rotations_microcode(p.k(), p.k(), rpaus, p.n, rotations, self.mult_sync_us);
        kernel_split_us(&ops, &self.cost, &self.clocks)
    }

    /// Splits one hoisted slot sum's instruction time into (transform µs,
    /// basis-conversion µs).
    pub fn sum_slots_kernel_split_us(&self, ctx: &FvContext) -> (f64, f64) {
        let p = ctx.params();
        let rpaus = (p.k() + p.l()).div_ceil(2);
        let ops = sum_slots_microcode(
            p.k(),
            p.k(),
            rpaus,
            p.n,
            hefv_core::galois::HOIST_GROUP_ROUNDS,
            self.mult_sync_us,
        );
        kernel_split_us(&ops, &self.cost, &self.clocks)
    }

    /// Splits one `Mult`'s instruction time into (transform µs,
    /// basis-conversion µs) — see [`kernel_split_us`].
    pub fn mult_kernel_split_us(&self, ctx: &FvContext) -> (f64, f64) {
        let p = ctx.params();
        let rpaus = (p.k() + p.l()).div_ceil(2);
        let ops = mult_microcode(p.k(), p.l(), p.k(), rpaus, p.n, self.mult_sync_us);
        kernel_split_us(&ops, &self.cost, &self.clocks)
    }

    /// Splits one rotation's instruction time into (transform µs,
    /// basis-conversion µs); rotations never lift or scale, so the second
    /// component is zero.
    pub fn rotate_kernel_split_us(&self, ctx: &FvContext) -> (f64, f64) {
        let p = ctx.params();
        let rpaus = (p.k() + p.l()).div_ceil(2);
        let ops = rotate_microcode(p.k(), p.k(), rpaus, p.n, self.mult_sync_us);
        kernel_split_us(&ops, &self.cost, &self.clocks)
    }

    /// Executes a real multiplication (bit-exact against `hefv-core` with
    /// the HPS fixed-point backend — the datapath the RTL implements) and
    /// returns the result together with its timing report.
    pub fn execute_mult(
        &self,
        ctx: &FvContext,
        a: &Ciphertext,
        b: &Ciphertext,
        rlk: &RelinKey,
    ) -> (Ciphertext, OpReport) {
        let out = eval::mul(ctx, a, b, rlk, Backend::Hps(HpsPrecision::Fixed));
        (out, self.run_mult(ctx))
    }

    /// Executes a real addition with its timing report.
    pub fn execute_add(
        &self,
        ctx: &FvContext,
        a: &Ciphertext,
        b: &Ciphertext,
    ) -> (Ciphertext, OpReport) {
        (eval::add(ctx, a, b), self.run_add())
    }
}

/// Splits a microcode sequence's instruction time into the two kernel
/// classes operators care about: **transform** time (NTT, inverse NTT and
/// the Memory-Rearrange passes around them) and **basis-conversion** time
/// (`Lift q→Q` / `Scale Q→q`). Coefficient-wise arithmetic, DMA and sync
/// fall in neither bucket. Returns `(ntt_us, basis_conv_us)`.
pub fn kernel_split_us(ops: &[Op], cost: &CostModel, clocks: &ClockConfig) -> (f64, f64) {
    let mut ntt = 0u64;
    let mut basis = 0u64;
    for op in ops {
        if let Op::Instr(i) = *op {
            match i {
                Instr::Ntt | Instr::InverseNtt | Instr::MemoryRearrange => {
                    ntt += cost.instr_cycles(i);
                }
                Instr::Lift | Instr::Scale => basis += cost.instr_cycles(i),
                _ => {}
            }
        }
    }
    (
        clocks.fpga_cycles_to_us(ntt),
        clocks.fpga_cycles_to_us(basis),
    )
}

/// [`kernel_split_us`] for one `Mult` on the traditional-CRT coprocessor:
/// transforms run on the shared RPAU model at the non-HPS clock, basis
/// conversion is the long-integer `Lift`/`Scale` phases of
/// [`trad_mult_us_for`].
pub fn trad_mult_kernel_split_us(
    ctx: &FvContext,
    model: &TradCostModel,
    clocks: &ClockConfig,
) -> (f64, f64) {
    let p = ctx.params();
    let (k, l, n) = (p.k(), p.l(), p.n);
    let digits = model.relin_digits.min(k);
    let rpaus = (k + l).div_ceil(2);
    let ops = mult_microcode(k, l, digits, rpaus, n, MULT_SYNC_US);
    let (ntt_us, _) = kernel_split_us(&ops, &model.poly, clocks);
    let lift_waves = 4usize.div_ceil(model.cores) as u64;
    let scale_waves = 3usize.div_ceil(model.cores) as u64;
    let basis_us = clocks.fpga_cycles_to_us(
        lift_waves * n as u64 * model.lift_ii + scale_waves * n as u64 * model.scale_ii,
    );
    (ntt_us, basis_us)
}

/// [`kernel_split_us`] for one rotation on the traditional-CRT
/// coprocessor (no `Lift`/`Scale`, so basis-conversion time is zero).
pub fn trad_rotate_kernel_split_us(
    ctx: &FvContext,
    model: &TradCostModel,
    clocks: &ClockConfig,
) -> (f64, f64) {
    let p = ctx.params();
    let (k, l, n) = (p.k(), p.l(), p.n);
    let digits = model.relin_digits.min(k);
    let rpaus = (k + l).div_ceil(2);
    let ops = rotate_microcode(k, digits, rpaus, n, MULT_SYNC_US);
    kernel_split_us(&ops, &model.poly, clocks)
}

/// Prices a microcode sequence on the traditional polynomial datapath:
/// RPAU instructions at the non-HPS clock plus key DMA and sync, with
/// `Lift`/`Scale` skipped (the traditional architecture runs those on its
/// dedicated long-integer cores, priced separately).
fn trad_poly_us(ops: &[Op], model: &TradCostModel, dma: &DmaModel, clocks: &ClockConfig) -> f64 {
    let mut fpga = 0u64;
    let mut rlk_us = 0.0;
    let mut sync_us = 0.0;
    for op in ops {
        match *op {
            Op::Instr(Instr::Lift) | Op::Instr(Instr::Scale) => {}
            Op::Instr(i) => fpga += model.poly.instr_cycles(i),
            Op::RlkDma { bytes } => rlk_us += dma.transfer_us(bytes, 1) + dma.mutex_sync_us,
            Op::SyncUs(us) => sync_us += us,
        }
    }
    clocks.fpga_cycles_to_us(fpga) + rlk_us + sync_us
}

/// Timing of one `Mult` on the traditional-CRT coprocessor (§VI-C):
/// 225 MHz, four parallel single-core `Lift`/`Scale` units (the four lifts
/// run concurrently, as do the three scales), smaller relinearization key.
pub fn trad_mult_us(model: &TradCostModel, dma: &DmaModel, clocks: &ClockConfig) -> f64 {
    // Phase 1: four lifts in parallel across the four cores.
    let lift_us = clocks.fpga_cycles_to_us(model.lift_cycles());
    // Phase 3: three scales in parallel.
    let scale_us = clocks.fpga_cycles_to_us(model.scale_cycles());
    // Polynomial instructions: same microcode minus Lift/Scale.
    let ops = mult_microcode(6, 7, model.relin_digits, 7, model.poly.n, MULT_SYNC_US);
    lift_us + scale_us + trad_poly_us(&ops, model, dma, clocks)
}

/// Timing of one `Mult` on the traditional-CRT coprocessor for an
/// arbitrary parameter set: the long-integer `Lift`/`Scale` phases scale
/// with the ring degree `n` (one coefficient per initiation interval per
/// core), while the polynomial instructions follow the same microcode as
/// [`trad_mult_us`] with the traditional architecture's coarser
/// relinearization digit count.
pub fn trad_mult_us_for(
    ctx: &FvContext,
    model: &TradCostModel,
    dma: &DmaModel,
    clocks: &ClockConfig,
) -> f64 {
    let p = ctx.params();
    let (k, l, n) = (p.k(), p.l(), p.n);
    let digits = model.relin_digits.min(k);
    let rpaus = (k + l).div_ceil(2);
    // Four operand lifts and three result scales spread over the parallel
    // single-core units, one coefficient per initiation interval.
    let lift_waves = 4usize.div_ceil(model.cores) as u64;
    let scale_waves = 3usize.div_ceil(model.cores) as u64;
    let lift_us = clocks.fpga_cycles_to_us(lift_waves * n as u64 * model.lift_ii);
    let scale_us = clocks.fpga_cycles_to_us(scale_waves * n as u64 * model.scale_ii);
    let ops = mult_microcode(k, l, digits, rpaus, n, MULT_SYNC_US);
    lift_us + scale_us + trad_poly_us(&ops, model, dma, clocks)
}

/// Timing of one Galois rotation on the traditional-CRT coprocessor: the
/// key switch has no `Lift`/`Scale` at all, and the traditional
/// architecture's coarser digit decomposition means fewer transforms and a
/// smaller switching key to stream — which is why rotation-heavy jobs can
/// favor the otherwise slower datapath.
pub fn trad_rotate_us_for(
    ctx: &FvContext,
    model: &TradCostModel,
    dma: &DmaModel,
    clocks: &ClockConfig,
) -> f64 {
    let p = ctx.params();
    let (k, l, n) = (p.k(), p.l(), p.n);
    let digits = model.relin_digits.min(k);
    let rpaus = (k + l).div_ceil(2);
    let ops = rotate_microcode(k, digits, rpaus, n, MULT_SYNC_US);
    trad_poly_us(&ops, model, dma, clocks)
}

/// Timing of one homomorphic `Add` on the traditional-CRT coprocessor:
/// identical RPAU work, 225 MHz clock.
pub fn trad_add_us(model: &TradCostModel, clocks: &ClockConfig) -> f64 {
    clocks.fpga_cycles_to_us(model.poly.add_op_cycles())
}

/// Timing of a hoisted batch of `rotations` Galois rotations on the
/// traditional-CRT coprocessor (same microcode as
/// [`hoisted_rotations_microcode`], the architecture's coarser digit count
/// and non-HPS clock; no `Lift`/`Scale` involved).
pub fn trad_hoisted_rotations_us_for(
    ctx: &FvContext,
    model: &TradCostModel,
    dma: &DmaModel,
    clocks: &ClockConfig,
    rotations: usize,
) -> f64 {
    let p = ctx.params();
    let (k, l, n) = (p.k(), p.l(), p.n);
    let digits = model.relin_digits.min(k);
    let rpaus = (k + l).div_ceil(2);
    let ops = hoisted_rotations_microcode(k, digits, rpaus, n, rotations, MULT_SYNC_US);
    trad_poly_us(&ops, model, dma, clocks)
}

/// Timing of one hoisted slot sum on the traditional-CRT coprocessor.
pub fn trad_sum_slots_us_for(
    ctx: &FvContext,
    model: &TradCostModel,
    dma: &DmaModel,
    clocks: &ClockConfig,
) -> f64 {
    let p = ctx.params();
    let (k, l, n) = (p.k(), p.l(), p.n);
    let digits = model.relin_digits.min(k);
    let rpaus = (k + l).div_ceil(2);
    let ops = sum_slots_microcode(
        k,
        digits,
        rpaus,
        n,
        hefv_core::galois::HOIST_GROUP_ROUNDS,
        MULT_SYNC_US,
    );
    trad_poly_us(&ops, model, dma, clocks)
}

/// [`kernel_split_us`] for a hoisted rotation batch on the
/// traditional-CRT coprocessor.
pub fn trad_hoisted_rotations_kernel_split_us(
    ctx: &FvContext,
    model: &TradCostModel,
    clocks: &ClockConfig,
    rotations: usize,
) -> (f64, f64) {
    let p = ctx.params();
    let (k, l, n) = (p.k(), p.l(), p.n);
    let digits = model.relin_digits.min(k);
    let rpaus = (k + l).div_ceil(2);
    let ops = hoisted_rotations_microcode(k, digits, rpaus, n, rotations, MULT_SYNC_US);
    kernel_split_us(&ops, &model.poly, clocks)
}

/// [`kernel_split_us`] for one hoisted slot sum on the traditional-CRT
/// coprocessor.
pub fn trad_sum_slots_kernel_split_us(
    ctx: &FvContext,
    model: &TradCostModel,
    clocks: &ClockConfig,
) -> (f64, f64) {
    let p = ctx.params();
    let (k, l, n) = (p.k(), p.l(), p.n);
    let digits = model.relin_digits.min(k);
    let rpaus = (k + l).div_ceil(2);
    let ops = sum_slots_microcode(
        k,
        digits,
        rpaus,
        n,
        hefv_core::galois::HOIST_GROUP_ROUNDS,
        MULT_SYNC_US,
    );
    kernel_split_us(&ops, &model.poly, clocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dma::POLY_BYTES;
    use hefv_core::params::FvParams;

    fn paper_ops() -> Vec<Op> {
        mult_microcode(6, 7, 6, 7, 4096, 19.64)
    }

    #[test]
    fn microcode_call_counts_match_table2() {
        let ops = paper_ops();
        let mut counts: HashMap<Instr, u32> = HashMap::new();
        for op in &ops {
            if let Op::Instr(i) = op {
                *counts.entry(*i).or_insert(0) += 1;
            }
        }
        assert_eq!(counts[&Instr::Ntt], 14);
        assert_eq!(counts[&Instr::InverseNtt], 8);
        assert_eq!(counts[&Instr::CoeffMul], 20);
        assert_eq!(counts[&Instr::CoeffAdd], 26);
        assert_eq!(counts[&Instr::MemoryRearrange], 22);
        assert_eq!(counts[&Instr::Lift], 4);
        assert_eq!(counts[&Instr::Scale], 3);
    }

    #[test]
    fn rlk_dma_totals_paper_key_size() {
        // 6 digits × 2 polys × (6 residues × 4096 × 4 B) = 1,179,648 bytes.
        let ops = paper_ops();
        let bytes: usize = ops
            .iter()
            .filter_map(|o| match o {
                Op::RlkDma { bytes } => Some(*bytes),
                _ => None,
            })
            .sum();
        assert_eq!(bytes, 12 * POLY_BYTES / 2 * 2);
        assert_eq!(bytes, 1_179_648);
    }

    #[test]
    fn mult_time_matches_table1() {
        let cop = Coprocessor::default();
        let ctx = FvContext::new(FvParams::hpca19()).unwrap();
        let r = cop.run_mult(&ctx);
        // Paper: 5,349,567 Arm cycles = 4.458 ms.
        let ratio = r.total_arm_cycles as f64 / 5_349_567.0;
        assert!(
            (0.99..=1.01).contains(&ratio),
            "Mult arm cycles {} (ratio {ratio:.4})",
            r.total_arm_cycles
        );
        // ~30% of the time is relinearization data transfer (§VI-A).
        let frac = r.rlk_dma_us / r.total_us;
        assert!(
            (0.20..=0.35).contains(&frac),
            "rlk transfer fraction {frac:.2}"
        );
    }

    #[test]
    fn add_time_matches_table1() {
        let cop = Coprocessor::default();
        let r = cop.run_add();
        let ratio = r.total_arm_cycles as f64 / 31_339.0;
        assert!((0.99..=1.01).contains(&ratio), "Add {}", r.total_arm_cycles);
    }

    #[test]
    fn executed_mult_is_bit_exact_and_timed() {
        use hefv_core::prelude::*;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let ctx = FvContext::new(FvParams::insecure_medium()).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let (sk, pk, rlk) = keygen(&ctx, &mut rng);
        let pa = Plaintext::new(vec![1, 1], ctx.params().t, ctx.params().n);
        let ca = encrypt(&ctx, &pk, &pa, &mut rng);
        let cop = Coprocessor::default();
        let (prod, report) = cop.execute_mult(&ctx, &ca, &ca, &rlk);
        assert_eq!(decrypt(&ctx, &sk, &prod).coeffs()[..3], [1, 0, 1]); // t=2: 1+2x+x² ≡ 1+x²
        let sw = eval::mul(&ctx, &ca, &ca, &rlk, Backend::Hps(HpsPrecision::Fixed));
        assert_eq!(prod, sw, "simulator result bit-exact vs library");
        assert!(report.total_us > 0.0);
    }

    #[test]
    fn rotation_costs_less_than_mult_more_than_add() {
        // The extension op's price must sit between the primitives it is
        // built from: no tensor/lift/scale, but a full key-switch SoP.
        let cop = Coprocessor::default();
        let ctx = FvContext::new(FvParams::hpca19()).unwrap();
        let rot = cop.run_rotate(&ctx);
        let mult = cop.run_mult(&ctx);
        let add = cop.run_add();
        assert!(rot.total_us < mult.total_us);
        assert!(rot.total_us > 10.0 * add.total_us);
        // Rotation ≈ the relinearization tail of Mult: same digit count,
        // so the same rlk DMA volume.
        assert!((rot.rlk_dma_us - mult.rlk_dma_us).abs() < 1e-9);
    }

    #[test]
    fn hoisting_amortizes_the_decomposition() {
        let cop = Coprocessor::default();
        let ctx = FvContext::new(FvParams::hpca19()).unwrap();
        let one = cop.run_hoisted_rotations(&ctx, 1).total_us;
        let eight = cop.run_hoisted_rotations(&ctx, 8).total_us;
        let per_rotation = cop.run_rotate(&ctx).total_us;
        // The marginal hoisted rotation must be strictly cheaper than a
        // full rotation (no re-decomposition, no re-transform of digits).
        let marginal = (eight - one) / 7.0;
        assert!(
            marginal < per_rotation,
            "marginal {marginal} vs full {per_rotation}"
        );
        // And eight hoisted rotations beat eight independent ones.
        assert!(eight < 8.0 * per_rotation);
        // A batch of one costs at most one per-rotation key switch plus
        // bookkeeping (same instruction classes).
        assert!(one < 1.5 * per_rotation);
    }

    #[test]
    fn hoisted_sum_slots_trades_transforms_for_key_dma() {
        // The grouped hoisted fold amortizes the decomposition transforms
        // (4 decompositions instead of 12) but streams the subset-product
        // keys (28 instead of 12): on the paper's coprocessor, transform
        // cycles shrink while DMA time grows — exactly what the cycle
        // model must record so `Backend::Auto` prices it correctly.
        let cop = Coprocessor::default();
        let ctx = FvContext::new(FvParams::hpca19()).unwrap();
        let rounds = (ctx.params().n / 2).trailing_zeros() as f64 + 1.0;
        let (sum_ntt_us, sum_basis_us) = cop.sum_slots_kernel_split_us(&ctx);
        let (rot_ntt_us, _) = cop.rotate_kernel_split_us(&ctx);
        assert!(
            sum_ntt_us < rounds * rot_ntt_us,
            "hoisting must amortize transform time: {sum_ntt_us} vs {}",
            rounds * rot_ntt_us
        );
        // Rotations never lift/scale: basis-conversion time must be zero.
        assert!(sum_ntt_us > 0.0);
        assert_eq!(sum_basis_us, 0.0);
        let sum = cop.run_sum_slots(&ctx);
        let rot = cop.run_rotate(&ctx);
        assert!(
            sum.rlk_dma_us > rounds * rot.rlk_dma_us,
            "subset-product keys stream more DMA"
        );
    }

    #[test]
    fn trad_hoisted_rotations_follow_the_same_shape() {
        let ctx = FvContext::new(FvParams::hpca19()).unwrap();
        let model = TradCostModel::default();
        let dma = DmaModel::default();
        let clocks = ClockConfig::non_hps();
        let one = trad_hoisted_rotations_us_for(&ctx, &model, &dma, &clocks, 1);
        let eight = trad_hoisted_rotations_us_for(&ctx, &model, &dma, &clocks, 8);
        let full = trad_rotate_us_for(&ctx, &model, &dma, &clocks);
        assert!((eight - one) / 7.0 < full);
        let sum = trad_sum_slots_us_for(&ctx, &model, &dma, &clocks);
        assert!(sum > full, "a slot sum is many rotations");
        let rounds = (ctx.params().n / 2).trailing_zeros() as f64 + 1.0;
        let (ntt_us, basis_us) = trad_sum_slots_kernel_split_us(&ctx, &model, &clocks);
        let (rot_ntt_us, _) = trad_rotate_kernel_split_us(&ctx, &model, &clocks);
        assert!(ntt_us > 0.0 && ntt_us < rounds * rot_ntt_us);
        assert_eq!(basis_us, 0.0);
        let (rn, rb) = trad_hoisted_rotations_kernel_split_us(&ctx, &model, &clocks, 3);
        assert!(rn > 0.0);
        assert_eq!(rb, 0.0);
    }

    #[test]
    fn trad_mult_matches_section_6c() {
        // Paper: 8.3 ms per Mult on the non-HPS coprocessor at 225 MHz.
        let us = trad_mult_us(
            &TradCostModel::default(),
            &DmaModel::default(),
            &ClockConfig::non_hps(),
        );
        let ms = us / 1000.0;
        assert!(
            (7.6..=9.0).contains(&ms),
            "traditional Mult modeled at {ms:.2} ms vs paper 8.3 ms"
        );
    }

    #[test]
    fn generalized_trad_mult_matches_legacy_at_paper_shape() {
        let ctx = FvContext::new(FvParams::hpca19()).unwrap();
        let model = TradCostModel::default();
        let dma = DmaModel::default();
        let clocks = ClockConfig::non_hps();
        let legacy = trad_mult_us(&model, &dma, &clocks);
        let general = trad_mult_us_for(&ctx, &model, &dma, &clocks);
        assert!(
            (legacy - general).abs() < 1e-6,
            "legacy {legacy} vs generalized {general}"
        );
    }

    #[test]
    fn trad_rotation_beats_hps_rotation() {
        // The key switch skips Lift/Scale entirely, so the traditional
        // architecture's faster clock and 3x smaller switching key win.
        let cop = Coprocessor::default();
        let ctx = FvContext::new(FvParams::hpca19()).unwrap();
        let hps = cop.run_rotate(&ctx).total_us;
        let trad = trad_rotate_us_for(
            &ctx,
            &TradCostModel::default(),
            &DmaModel::default(),
            &ClockConfig::non_hps(),
        );
        assert!(trad < hps, "traditional rotate {trad} vs HPS {hps}");
    }

    #[test]
    fn trad_mult_advantage_flips_with_ring_degree() {
        // Small rings: the long-integer Lift/Scale cores finish quickly and
        // the 225 MHz clock wins. The paper's n = 4096: HPS wins (§VI-C).
        let cop = Coprocessor::default();
        let model = TradCostModel::default();
        let dma = DmaModel::default();
        let clocks = ClockConfig::non_hps();
        let small = FvContext::new(FvParams::insecure_toy()).unwrap();
        assert!(trad_mult_us_for(&small, &model, &dma, &clocks) < cop.run_mult(&small).total_us);
        let paper = FvContext::new(FvParams::hpca19()).unwrap();
        assert!(trad_mult_us_for(&paper, &model, &dma, &clocks) > cop.run_mult(&paper).total_us);
    }

    #[test]
    fn trad_is_roughly_2x_slower_than_hps() {
        let cop = Coprocessor::default();
        let ctx = FvContext::new(FvParams::hpca19()).unwrap();
        let fast_ms = cop.run_mult(&ctx).total_us / 1000.0;
        let slow_ms = trad_mult_us(
            &TradCostModel::default(),
            &DmaModel::default(),
            &ClockConfig::non_hps(),
        ) / 1000.0;
        let ratio = slow_ms / fast_ms;
        // §VI-C: "the time for Mult is less than 2x slower".
        assert!((1.5..=2.1).contains(&ratio), "ratio {ratio:.2}");
    }
}
