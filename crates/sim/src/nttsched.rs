//! The dual-core memory-conflict-free NTT schedule (§V-A3, Fig. 3).
//!
//! A residue polynomial lives in two banks of paired-coefficient words
//! ([`crate::bram::PolyMem`]). Two butterfly cores each read one word per
//! cycle; a bank sustains one read and one write per cycle. The schedule
//! below keeps both cores busy every cycle of every stage with zero bank
//! conflicts:
//!
//! * **Word gap `G ≤ W/4`** (the paper's `m ≤ 1024`, index gap ≤ 512):
//!   butterfly word-pairs never straddle the bank boundary, so core 0 owns
//!   the lower bank and core 1 the upper bank exclusively.
//! * **Word gap `G = W/2`** (the paper's `m = 2048`, index gap 1024): every
//!   pair straddles the banks. Core 0 reads *lower first* (`0, 1024, 1,
//!   1025, …`) while core 1 reads *upper first* (`1536, 512, 1537, 513,
//!   …`) — the paper's order inversion — so the cores touch opposite banks
//!   every cycle.
//! * **Same-word stage** (the paper's `m = 4096`): the two butterfly
//!   operands share a word \[30\], so each core streams its own bank one
//!   word per cycle.
//!
//! Every stage takes exactly `n/4` cycles of dual-issue work, and
//! [`execute_forward`]/[`execute_inverse`] drive the *real arithmetic*
//! through this schedule — the test suite checks bit-equality with
//! [`hefv_math::ntt::NttTable`] and zero auditor violations.

use crate::bram::{bank_of, PolyMem, PortAuditor};
use hefv_math::ntt::NttTable;

/// One scheduled word access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Cycle within the stage.
    pub cycle: u64,
    /// Which butterfly core issues it (0 or 1).
    pub core: usize,
    /// Word address.
    pub addr: usize,
}

/// One scheduled butterfly word-pair operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairOp {
    /// Core executing the pair.
    pub core: usize,
    /// Cycle of the first word read (second word, if distinct, reads on
    /// `cycle + 1`).
    pub cycle: u64,
    /// First word address.
    pub w_lo: usize,
    /// Second word address; `None` for the same-word stage.
    pub w_hi: Option<usize>,
    /// Butterfly block index (selects the twiddle factor).
    pub block: usize,
}

/// The schedule generator for ring degree `n`.
#[derive(Debug, Clone)]
pub struct NttSchedule {
    n: usize,
}

impl NttSchedule {
    /// Creates a schedule for degree `n` (power of two, ≥ 8).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two at least 8.
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two() && n >= 8,
            "n must be a power of two ≥ 8"
        );
        NttSchedule { n }
    }

    /// Ring degree.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of butterfly stages (`log2 n`).
    pub fn stages(&self) -> usize {
        self.n.trailing_zeros() as usize
    }

    /// Cycles per stage with two butterfly cores (`n/4`).
    pub fn stage_cycles(&self) -> u64 {
        (self.n / 4) as u64
    }

    /// The word-pair operations of the stage with butterfly distance `t`
    /// (in coefficients). `t` ranges over `n/2, n/4, …, 1` for the forward
    /// transform; the inverse uses the same set in reverse.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not a power of two in `[1, n/2]`.
    pub fn stage_ops(&self, t: usize) -> Vec<PairOp> {
        assert!(t.is_power_of_two() && t >= 1 && t <= self.n / 2);
        let w = self.n / 2; // total words
        let half = w / 2; // words per bank
        let mut ops = Vec::with_capacity(w / 2);
        if t == 1 {
            // Same-word stage: one butterfly per word, cores own banks.
            for k in 0..half {
                ops.push(PairOp {
                    core: 0,
                    cycle: k as u64,
                    w_lo: k,
                    w_hi: None,
                    block: k,
                });
                ops.push(PairOp {
                    core: 1,
                    cycle: k as u64,
                    w_lo: half + k,
                    w_hi: None,
                    block: half + k,
                });
            }
            return ops;
        }
        let g = t / 2; // word gap
        if g < half {
            // Pairs confined to one bank; core 0 = lower, core 1 = upper.
            // Enumerate pairs of each bank in address order.
            let pairs_in_bank = half / 2;
            let mut emitted = 0usize;
            let mut base = 0usize;
            while emitted < pairs_in_bank {
                for off in 0..g {
                    let w_lo = base + off;
                    let cycle = (2 * emitted) as u64;
                    ops.push(PairOp {
                        core: 0,
                        cycle,
                        w_lo,
                        w_hi: Some(w_lo + g),
                        block: w_lo / g,
                    });
                    let u_lo = half + w_lo;
                    ops.push(PairOp {
                        core: 1,
                        cycle,
                        w_lo: u_lo,
                        w_hi: Some(u_lo + g),
                        block: u_lo / g,
                    });
                    emitted += 1;
                }
                base += 2 * g;
            }
        } else {
            // Cross-bank stage (G = half): core 0 takes the first half of
            // the pairs reading lower-bank-first; core 1 takes the second
            // half reading upper-bank-first (the paper's inverted order).
            for k in 0..half / 2 {
                ops.push(PairOp {
                    core: 0,
                    cycle: (2 * k) as u64,
                    w_lo: k,
                    w_hi: Some(k + half),
                    block: 0, // single block at this stage size
                });
                let w1 = half / 2 + k;
                ops.push(PairOp {
                    core: 1,
                    cycle: (2 * k) as u64,
                    // upper word first — the inverted request order
                    w_lo: w1 + half,
                    w_hi: Some(w1),
                    block: 0,
                });
            }
        }
        ops
    }

    /// Expands a stage's pair operations into the per-cycle read stream
    /// (the pattern Fig. 3 draws).
    pub fn read_accesses(&self, t: usize) -> Vec<Access> {
        let mut out = Vec::new();
        for op in self.stage_ops(t) {
            out.push(Access {
                cycle: op.cycle,
                core: op.core,
                addr: op.w_lo,
            });
            if let Some(hi) = op.w_hi {
                out.push(Access {
                    cycle: op.cycle + 1,
                    core: op.core,
                    addr: hi,
                });
            }
        }
        out.sort_by_key(|a| (a.cycle, a.core));
        out
    }

    /// Audits every stage's reads (and the writes, which replay the same
    /// pattern `pipeline_depth` cycles later) against the one-read +
    /// one-write per bank per cycle budget.
    ///
    /// Returns the auditor so callers can inspect totals.
    pub fn audit(&self, pipeline_depth: u64) -> PortAuditor {
        let mut auditor = PortAuditor::new();
        let words = self.n / 2;
        let mut t = self.n / 2;
        let mut stage_base = 0u64;
        loop {
            for a in self.read_accesses(t) {
                let b = bank_of(a.addr, words);
                auditor.read(stage_base + a.cycle, b);
                auditor.write(stage_base + a.cycle + pipeline_depth, b);
            }
            stage_base += self.stage_cycles() + pipeline_depth;
            if t == 1 {
                break;
            }
            t /= 2;
        }
        auditor
    }
}

fn butterfly_ct(table: &NttTable, pair: (u64, u64), twiddle_index: usize) -> (u64, u64) {
    let m = table.modulus();
    let v = m.mul(pair.1, table.twiddle(twiddle_index));
    (m.add(pair.0, v), m.sub(pair.0, v))
}

/// Executes the forward negacyclic NTT *through the schedule*, returning
/// the transformed memory and the datapath cycle count (stage cycles only;
/// the instruction-level cost model adds pipeline fill and dispatch).
///
/// # Panics
///
/// Panics if the memory size disagrees with the table.
pub fn execute_forward(sched: &NttSchedule, mem: &mut PolyMem, table: &NttTable) -> u64 {
    assert_eq!(mem.n(), table.n(), "size mismatch");
    let n = sched.n();
    let mut cycles = 0u64;
    let mut t = n / 2;
    loop {
        let m = n / (2 * t); // number of twiddle blocks this stage
        for op in sched.stage_ops(t) {
            match op.w_hi {
                Some(hi) => {
                    // Two butterflies across words (w_lo may be the upper
                    // word in the inverted-order cross-bank stage).
                    let (a, b) = if op.w_lo < hi {
                        (op.w_lo, hi)
                    } else {
                        (hi, op.w_lo)
                    };
                    let block = 2 * a / (2 * t);
                    let wa = mem.read_word(a);
                    let wb = mem.read_word(b);
                    let (x0, y0) = butterfly_ct(table, (wa.0, wb.0), m + block);
                    let (x1, y1) = butterfly_ct(table, (wa.1, wb.1), m + block);
                    mem.write_word(a, (x0, x1));
                    mem.write_word(b, (y0, y1));
                }
                None => {
                    // Same-word butterfly (t = 1).
                    let wa = mem.read_word(op.w_lo);
                    let (x, y) = butterfly_ct(table, wa, m + op.block);
                    mem.write_word(op.w_lo, (x, y));
                }
            }
        }
        cycles += sched.stage_cycles();
        if t == 1 {
            break;
        }
        t /= 2;
    }
    cycles
}

fn butterfly_gs(table: &NttTable, pair: (u64, u64), twiddle_index: usize) -> (u64, u64) {
    let m = table.modulus();
    let u = m.add(pair.0, pair.1);
    let v = m.sub(pair.0, pair.1);
    (u, m.mul(v, table.inv_twiddle(twiddle_index)))
}

/// Executes the inverse negacyclic NTT through the schedule (stages in
/// reverse order plus the `n^{-1}` scaling pass), returning datapath
/// cycles.
///
/// # Panics
///
/// Panics if the memory size disagrees with the table.
pub fn execute_inverse(sched: &NttSchedule, mem: &mut PolyMem, table: &NttTable) -> u64 {
    assert_eq!(mem.n(), table.n(), "size mismatch");
    let n = sched.n();
    let mut cycles = 0u64;
    let mut t = 1usize;
    while t <= n / 2 {
        let h = n / (2 * t);
        for op in sched.stage_ops(t) {
            match op.w_hi {
                Some(hi) => {
                    let (a, b) = if op.w_lo < hi {
                        (op.w_lo, hi)
                    } else {
                        (hi, op.w_lo)
                    };
                    let block = 2 * a / (2 * t);
                    let wa = mem.read_word(a);
                    let wb = mem.read_word(b);
                    let (x0, y0) = butterfly_gs(table, (wa.0, wb.0), h + block);
                    let (x1, y1) = butterfly_gs(table, (wa.1, wb.1), h + block);
                    mem.write_word(a, (x0, x1));
                    mem.write_word(b, (y0, y1));
                }
                None => {
                    let wa = mem.read_word(op.w_lo);
                    let (x, y) = butterfly_gs(table, wa, h + op.block);
                    mem.write_word(op.w_lo, (x, y));
                }
            }
        }
        cycles += sched.stage_cycles();
        t *= 2;
    }
    // Scaling pass: every word read, both coefficients × n^{-1}, written.
    let words = n / 2;
    let m = table.modulus();
    let n_inv = table.n_inv();
    for w in 0..words {
        let (a, b) = mem.read_word(w);
        mem.write_word(w, (m.mul(a, n_inv), m.mul(b, n_inv)));
    }
    cycles += (words / 2) as u64; // two cores, one word each per cycle
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use hefv_math::primes::ntt_prime;
    use hefv_math::zq::Modulus;

    fn table(n: usize) -> NttTable {
        let q = ntt_prime(30, n, 0).unwrap();
        NttTable::new(Modulus::new(q), n).unwrap()
    }

    #[test]
    fn stage_op_counts() {
        let s = NttSchedule::new(4096);
        assert_eq!(s.stages(), 12);
        assert_eq!(s.stage_cycles(), 1024);
        let mut t = 2048;
        loop {
            let ops = s.stage_ops(t);
            let butterflies: usize = ops
                .iter()
                .map(|o| if o.w_hi.is_some() { 2 } else { 1 })
                .sum();
            assert_eq!(butterflies, 2048, "t={t}: n/2 butterflies per stage");
            if t == 1 {
                break;
            }
            t /= 2;
        }
    }

    #[test]
    fn every_stage_is_conflict_free() {
        for n in [16usize, 64, 4096] {
            let s = NttSchedule::new(n);
            let auditor = s.audit(12);
            assert!(
                auditor.is_clean(),
                "n={n}: {:?}",
                &auditor.violations()[..auditor.violations().len().min(5)]
            );
            // log2(n) stages × n/2 word reads each
            assert_eq!(auditor.total_reads(), (s.stages() * n / 2) as u64, "n={n}");
        }
    }

    #[test]
    fn cross_bank_stage_matches_paper_pattern() {
        // Fig. 3, m = 2048 (word gap = half the memory): core 0 starts at
        // word 0 (lower), core 1 starts at word 1536 (upper).
        let s = NttSchedule::new(4096);
        let ops = s.stage_ops(2048);
        let first_core0 = ops.iter().find(|o| o.core == 0).unwrap();
        let first_core1 = ops.iter().find(|o| o.core == 1).unwrap();
        assert_eq!(first_core0.w_lo, 0);
        assert_eq!(first_core0.w_hi, Some(1024));
        assert_eq!(first_core1.w_lo, 1536, "inverted order: upper first");
        assert_eq!(first_core1.w_hi, Some(512));
    }

    #[test]
    fn bank_exclusive_stages_stay_in_bank() {
        use crate::bram::Bank;
        let s = NttSchedule::new(4096);
        for t in [2usize, 8, 512, 1024] {
            for a in s.read_accesses(t) {
                let bank = bank_of(a.addr, 2048);
                let expect = if a.core == 0 {
                    Bank::Lower
                } else {
                    Bank::Upper
                };
                assert_eq!(bank, expect, "t={t} core{} addr {}", a.core, a.addr);
            }
        }
    }

    #[test]
    fn forward_through_memory_matches_reference() {
        for n in [16usize, 256, 4096] {
            let tb = table(n);
            let q = tb.modulus().value();
            let coeffs: Vec<u64> = (0..n as u64).map(|i| (i * 2654435761 + 17) % q).collect();
            let mut reference = coeffs.clone();
            tb.forward(&mut reference);

            let s = NttSchedule::new(n);
            let mut mem = PolyMem::load(&coeffs);
            let cycles = execute_forward(&s, &mut mem, &tb);
            assert_eq!(mem.coeffs(), &reference[..], "n={n}");
            assert_eq!(cycles, (s.stages() * n / 4) as u64);
        }
    }

    #[test]
    fn inverse_through_memory_roundtrips() {
        let n = 256;
        let tb = table(n);
        let q = tb.modulus().value();
        let coeffs: Vec<u64> = (0..n as u64).map(|i| (i * 40503 + 9) % q).collect();
        let s = NttSchedule::new(n);
        let mut mem = PolyMem::load(&coeffs);
        execute_forward(&s, &mut mem, &tb);
        let cycles = execute_inverse(&s, &mut mem, &tb);
        assert_eq!(mem.coeffs(), &coeffs[..]);
        assert_eq!(cycles, (s.stages() * n / 4 + n / 4) as u64);
    }

    #[test]
    fn inverse_matches_reference_directly() {
        let n = 64;
        let tb = table(n);
        let q = tb.modulus().value();
        let coeffs: Vec<u64> = (0..n as u64).map(|i| (i * 7 + 3) % q).collect();
        let mut reference = coeffs.clone();
        tb.inverse(&mut reference);
        let s = NttSchedule::new(n);
        let mut mem = PolyMem::load(&coeffs);
        execute_inverse(&s, &mut mem, &tb);
        assert_eq!(mem.coeffs(), &reference[..]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        NttSchedule::new(100);
    }
}
