//! # hefv-sim
//!
//! Cycle-level architectural simulator of the HPCA 2019 FV coprocessor.
//! The paper's quantitative results are cycle counts, resource totals and
//! power figures for a Xilinx ZCU102 design; this crate models that design
//! bottom-up:
//!
//! * [`bram`] — the paired-coefficient dual-bank polynomial memory with a
//!   per-cycle port auditor;
//! * [`nttsched`] — the dual-core conflict-free NTT schedule (Fig. 3),
//!   which *executes real transforms* through the memory model;
//! * [`cost`] — the per-instruction cycle model (Table II), with
//!   first-principles datapath terms and documented calibration constants;
//! * [`coproc`] — the instruction-set coprocessor: `Mult`/`Add` microcode
//!   (Table II call counts), timing reports, and functional execution;
//! * [`dma`] — the DMA burst model (Table III);
//! * [`system`] — the Arm+FPGA platform (Table I, the 400 Mult/s and 80×
//!   `Add` headlines);
//! * [`resources`] — the analytic resource model (Tables IV and V);
//! * [`power`] — the power model (§VI-C);
//! * [`rpau`] — functional residue-lane execution with the RTL's
//!   sliding-window reduction datapath;
//! * [`liftsim`] — the Fig. 6/9 block-pipelined Lift/Scale units,
//!   bit-exact against the software library;
//! * [`functional`] — a whole `Mult` executed through the unit models;
//! * [`program`] — the instruction-set assembly layer (programs over a
//!   polynomial register file with Table II cycle accounting).
//!
//! # Example
//!
//! ```
//! use hefv_core::{context::FvContext, params::FvParams};
//! use hefv_sim::system::System;
//!
//! let ctx = FvContext::new(FvParams::hpca19()).unwrap();
//! let sys = System::default();
//! let tput = sys.mult_throughput_per_s(&ctx);
//! assert!(tput > 390.0, "the paper's 400 Mult/s: got {tput:.0}");
//! ```

pub mod bram;
pub mod clock;
pub mod coproc;
pub mod cost;
pub mod dma;
pub mod functional;
pub mod liftsim;
pub mod nttsched;
pub mod power;
pub mod program;
pub mod resources;
pub mod rpau;
pub mod system;
