//! The full Arm+FPGA platform model (Fig. 11): Arm application cores, two
//! coprocessors, the DMA path — and the Table I roll-up.

use crate::clock::ClockConfig;
use crate::coproc::{Coprocessor, OpReport};
use crate::dma::{DmaModel, POLY_BYTES};
use hefv_core::context::FvContext;
use serde::{Deserialize, Serialize};

/// Calibrated model of the baremetal Arm software path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArmSwModel {
    /// Arm cycles per modular coefficient addition, memory-bound on the
    /// baremetal DDR path (calibrated from Table I: 54,680,467 cycles for
    /// 2 polys × 6 residues × 4096 coefficients).
    pub add_cycles_per_coeff: f64,
}

impl Default for ArmSwModel {
    fn default() -> Self {
        ArmSwModel {
            add_cycles_per_coeff: 54_680_467.0 / (2.0 * 6.0 * 4096.0),
        }
    }
}

impl ArmSwModel {
    /// Arm cycles for a software ciphertext addition.
    pub fn add_arm_cycles(&self, k: usize, n: usize) -> u64 {
        (self.add_cycles_per_coeff * (2 * k * n) as f64).round() as u64
    }
}

/// The whole platform: `coprocessors` parallel coprocessor instances (the
/// paper places two), one Arm core driving each, one networking core.
#[derive(Debug, Clone)]
pub struct System {
    /// The coprocessor template (both instances are identical).
    pub coproc: Coprocessor,
    /// Number of coprocessor instances (2 in the paper).
    pub coprocessors: usize,
    /// DMA model.
    pub dma: DmaModel,
    /// Software model.
    pub sw: ArmSwModel,
}

impl Default for System {
    fn default() -> Self {
        System {
            coproc: Coprocessor::default(),
            coprocessors: 2,
            dma: DmaModel::default(),
            sw: ArmSwModel::default(),
        }
    }
}

/// One row of Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Operation label (the paper's wording).
    pub label: String,
    /// Modeled Arm cycles.
    pub cycles: u64,
    /// Modeled milliseconds.
    pub msec: f64,
    /// The paper's Arm cycles.
    pub paper_cycles: u64,
    /// The paper's milliseconds.
    pub paper_msec: f64,
}

impl System {
    /// Clock configuration shared by the platform.
    pub fn clocks(&self) -> &ClockConfig {
        &self.coproc.clocks
    }

    /// Time to send the two operand ciphertexts to the FPGA, µs
    /// (4 residue polynomials).
    pub fn send_operands_us(&self) -> f64 {
        self.dma.ciphertext_transfer_us(4, POLY_BYTES)
    }

    /// Time to receive the result ciphertext, µs (2 polynomials).
    pub fn receive_result_us(&self) -> f64 {
        self.dma.ciphertext_transfer_us(2, POLY_BYTES)
    }

    /// `Mult` report on one coprocessor.
    pub fn mult_report(&self, ctx: &FvContext) -> OpReport {
        self.coproc.run_mult(ctx)
    }

    /// Regenerates Table I.
    pub fn table1(&self, ctx: &FvContext) -> Vec<Table1Row> {
        let clocks = self.clocks();
        let mult = self.coproc.run_mult(ctx);
        let add = self.coproc.run_add();
        let sw_add = self.sw.add_arm_cycles(ctx.params().k(), ctx.params().n);
        let send = self.send_operands_us();
        let recv = self.receive_result_us();
        let row = |label: &str, cycles: u64, paper_cycles: u64, paper_msec: f64| Table1Row {
            label: label.into(),
            cycles,
            msec: clocks.arm_cycles_to_ms(cycles),
            paper_cycles,
            paper_msec,
        };
        vec![
            row("Mult in HW", mult.total_arm_cycles, 5_349_567, 4.458),
            row("Add in HW", add.total_arm_cycles, 31_339, 0.026),
            row("Add in SW", sw_add, 54_680_467, 45.567),
            row(
                "Send two ciphertexts to HW",
                clocks.us_to_arm_cycles(send),
                434_013,
                0.362,
            ),
            row(
                "Receive result ciphertext from HW",
                clocks.us_to_arm_cycles(recv),
                215_697,
                0.180,
            ),
        ]
    }

    /// End-to-end latency of one offloaded `Mult` including both
    /// transfers, ms.
    pub fn mult_latency_ms(&self, ctx: &FvContext) -> f64 {
        (self.coproc.run_mult(ctx).total_us + self.send_operands_us() + self.receive_result_us())
            / 1000.0
    }

    /// Sustained throughput in multiplications per second with all
    /// coprocessors busy (the paper's 400 Mult/s headline: two
    /// coprocessors, 5 ms per offloaded Mult each).
    pub fn mult_throughput_per_s(&self, ctx: &FvContext) -> f64 {
        self.coprocessors as f64 * 1000.0 / self.mult_latency_ms(ctx)
    }

    /// The software/hardware `Add` ratio the paper quotes (§VI-A: "80
    /// times more time than the same computation in HW, including the
    /// overhead of sending and receiving ciphertexts").
    pub fn add_sw_hw_ratio(&self, ctx: &FvContext) -> f64 {
        let hw_us =
            self.coproc.run_add().total_us + self.send_operands_us() + self.receive_result_us();
        let sw_us = self
            .clocks()
            .arm_cycles_to_ms(self.sw.add_arm_cycles(ctx.params().k(), ctx.params().n))
            * 1000.0;
        sw_us / hw_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hefv_core::params::FvParams;

    fn ctx() -> FvContext {
        FvContext::new(FvParams::hpca19()).unwrap()
    }

    #[test]
    fn table1_within_one_percent() {
        let sys = System::default();
        let rows = sys.table1(&ctx());
        for r in &rows {
            let ratio = r.cycles as f64 / r.paper_cycles as f64;
            assert!(
                (0.99..=1.01).contains(&ratio),
                "{}: modeled {} vs paper {} (ratio {ratio:.4})",
                r.label,
                r.cycles,
                r.paper_cycles
            );
        }
    }

    #[test]
    fn throughput_is_about_400_per_second() {
        let sys = System::default();
        let tput = sys.mult_throughput_per_s(&ctx());
        assert!(
            (392.0..=408.0).contains(&tput),
            "throughput {tput:.1} Mult/s vs paper 400"
        );
    }

    #[test]
    fn one_coprocessor_halves_throughput() {
        let sys = System {
            coprocessors: 1,
            ..Default::default()
        };
        let tput = sys.mult_throughput_per_s(&ctx());
        assert!((196.0..=204.0).contains(&tput), "{tput}");
    }

    #[test]
    fn sw_add_is_80x_slower_than_hw() {
        let sys = System::default();
        let ratio = sys.add_sw_hw_ratio(&ctx());
        assert!(
            (75.0..=85.0).contains(&ratio),
            "SW/HW Add ratio {ratio:.1} vs paper 80"
        );
    }

    #[test]
    fn sw_add_model_matches_table1() {
        let sw = ArmSwModel::default();
        let cycles = sw.add_arm_cycles(6, 4096);
        let ratio = cycles as f64 / 54_680_467.0;
        assert!((0.9999..=1.0001).contains(&ratio));
    }
}
