//! The coprocessor's programmability: an assembly layer over the
//! instruction set.
//!
//! The paper stresses that the accelerator is an *instruction-set*
//! coprocessor ("domain specific programmability in the FPGA... This
//! gives flexibility to the Arm processor to support various cloud
//! computing applications", §IV-A). This module makes that concrete: a
//! [`Program`] is a sequence of register-addressed instructions over a
//! polynomial register file; [`Machine`] executes it functionally (real
//! arithmetic through the RPAU lanes) while charging the Table II cycle
//! model; [`assemble_add`] emits the paper's `Add` routine and arbitrary
//! other routines can be written by hand ([`assemble_fma`] programs a
//! plaintext-constant fused multiply-add the way an application developer
//! would extend the coprocessor).

use crate::bram::PolyMem;
use crate::clock::ClockConfig;
use crate::cost::{CostModel, Instr};
use crate::rpau::RpauArray;
use hefv_core::context::FvContext;
use hefv_math::ntt::NttTable;
use serde::{Deserialize, Serialize};

/// A register name in the polynomial register file: one register holds
/// one residue polynomial row per prime lane it spans.
pub type Reg = usize;

/// Assembly instructions. Each operates on a *batch* of residue rows
/// (`rows` lanes starting at lane `lane0`), mirroring how the coprocessor
/// maps operations onto its seven RPAUs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Asm {
    /// Forward NTT of `reg` rows `[lane0, lane0+rows)`.
    Ntt { reg: Reg, lane0: usize, rows: usize },
    /// Inverse NTT.
    Intt { reg: Reg, lane0: usize, rows: usize },
    /// `dst = a ⊙ b` coefficient-wise.
    Cwm {
        dst: Reg,
        a: Reg,
        b: Reg,
        lane0: usize,
        rows: usize,
    },
    /// `dst += a ⊙ b` (MAC configuration of Fig. 7).
    CwmAcc {
        dst: Reg,
        a: Reg,
        b: Reg,
        lane0: usize,
        rows: usize,
    },
    /// `dst = a + b`.
    Cwa {
        dst: Reg,
        a: Reg,
        b: Reg,
        lane0: usize,
        rows: usize,
    },
    /// `dst = a − b`.
    Cws {
        dst: Reg,
        a: Reg,
        b: Reg,
        lane0: usize,
        rows: usize,
    },
    /// Memory rearrange (bit-reversal) of a register's rows.
    Rearrange { reg: Reg, lane0: usize, rows: usize },
    /// Copy rows between registers.
    Move {
        dst: Reg,
        src: Reg,
        lane0: usize,
        rows: usize,
    },
}

/// A program: named for the trace, plus its instruction list.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Program {
    /// Routine name.
    pub name: String,
    /// The instruction stream.
    pub code: Vec<Asm>,
}

/// Execution report: cycles by the Table II cost model and the
/// instruction mix.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Modeled FPGA cycles (instruction model, incl. per-call overheads).
    pub fpga_cycles: u64,
    /// Instruction count by class name.
    pub mix: std::collections::BTreeMap<String, u32>,
}

impl RunReport {
    /// Wall-clock at the coprocessor clock.
    pub fn us(&self, clocks: &ClockConfig) -> f64 {
        clocks.fpga_cycles_to_us(self.fpga_cycles)
    }
}

/// The programmable machine: a register file of residue-polynomial rows
/// over the full prime set of a context.
pub struct Machine<'a> {
    ctx: &'a FvContext,
    lanes: RpauArray,
    cost: CostModel,
    /// Register file: `file[reg][lane]`.
    file: Vec<Vec<PolyMem>>,
}

impl<'a> Machine<'a> {
    /// Builds a machine with `registers` polynomial registers.
    pub fn new(ctx: &'a FvContext, registers: usize) -> Self {
        let primes: Vec<u64> = ctx
            .params()
            .q_primes
            .iter()
            .chain(&ctx.params().p_primes)
            .copied()
            .collect();
        let n = ctx.params().n;
        let lanes = RpauArray::new(&primes, n);
        let zero = vec![0u64; n];
        let file = (0..registers)
            .map(|_| primes.iter().map(|_| PolyMem::load(&zero)).collect())
            .collect();
        Machine {
            ctx,
            lanes,
            cost: CostModel {
                n,
                ..CostModel::default()
            },
            file,
        }
    }

    /// Loads residue rows into a register starting at `lane0`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range register or lanes.
    pub fn load(&mut self, reg: Reg, lane0: usize, rows: &[Vec<u64>]) {
        for (i, row) in rows.iter().enumerate() {
            self.file[reg][lane0 + i] = PolyMem::load(row);
        }
    }

    /// Reads residue rows back out of a register.
    pub fn store(&self, reg: Reg, lane0: usize, rows: usize) -> Vec<Vec<u64>> {
        (0..rows)
            .map(|i| self.file[reg][lane0 + i].coeffs().to_vec())
            .collect()
    }

    fn table(&self, lane: usize) -> &NttTable {
        &self.ctx.ntt_full()[lane]
    }

    /// Executes a program, returning the cycle/mix report.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range registers or lanes (the hardware analogue is
    /// an illegal-instruction trap).
    pub fn run(&mut self, program: &Program) -> RunReport {
        let mut report = RunReport::default();
        let charge = |r: &mut RunReport, i: Instr, batches: u64, cost: &CostModel| {
            r.fpga_cycles += batches * cost.instr_cycles(i);
            *r.mix.entry(i.name().to_string()).or_insert(0) += batches as u32;
        };
        for op in &program.code {
            match *op {
                Asm::Ntt { reg, lane0, rows } => {
                    for l in lane0..lane0 + rows {
                        let table = self.table(l);
                        let mut mem = self.file[reg][l].clone();
                        self.lanes.lane(l).ntt(&mut mem, table);
                        self.file[reg][l] = mem;
                    }
                    charge(
                        &mut report,
                        Instr::Ntt,
                        self.lanes.batches(rows) as u64,
                        &self.cost,
                    );
                }
                Asm::Intt { reg, lane0, rows } => {
                    for l in lane0..lane0 + rows {
                        let table = self.table(l);
                        let mut mem = self.file[reg][l].clone();
                        self.lanes.lane(l).intt(&mut mem, table);
                        self.file[reg][l] = mem;
                    }
                    charge(
                        &mut report,
                        Instr::InverseNtt,
                        self.lanes.batches(rows) as u64,
                        &self.cost,
                    );
                }
                Asm::Cwm {
                    dst,
                    a,
                    b,
                    lane0,
                    rows,
                } => {
                    for l in lane0..lane0 + rows {
                        let (out, _) = self.lanes.lane(l).cwm(&self.file[a][l], &self.file[b][l]);
                        self.file[dst][l] = out;
                    }
                    charge(
                        &mut report,
                        Instr::CoeffMul,
                        self.lanes.batches(rows) as u64,
                        &self.cost,
                    );
                }
                Asm::CwmAcc {
                    dst,
                    a,
                    b,
                    lane0,
                    rows,
                } => {
                    for l in lane0..lane0 + rows {
                        let mut acc = self.file[dst][l].clone();
                        self.lanes
                            .lane(l)
                            .cwm_acc(&mut acc, &self.file[a][l], &self.file[b][l]);
                        self.file[dst][l] = acc;
                    }
                    charge(
                        &mut report,
                        Instr::CoeffMul,
                        self.lanes.batches(rows) as u64,
                        &self.cost,
                    );
                }
                Asm::Cwa {
                    dst,
                    a,
                    b,
                    lane0,
                    rows,
                } => {
                    for l in lane0..lane0 + rows {
                        let (out, _) = self.lanes.lane(l).cwa(&self.file[a][l], &self.file[b][l]);
                        self.file[dst][l] = out;
                    }
                    charge(
                        &mut report,
                        Instr::CoeffAdd,
                        self.lanes.batches(rows) as u64,
                        &self.cost,
                    );
                }
                Asm::Cws {
                    dst,
                    a,
                    b,
                    lane0,
                    rows,
                } => {
                    for l in lane0..lane0 + rows {
                        let (out, _) = self.lanes.lane(l).cws(&self.file[a][l], &self.file[b][l]);
                        self.file[dst][l] = out;
                    }
                    charge(
                        &mut report,
                        Instr::CoeffAdd,
                        self.lanes.batches(rows) as u64,
                        &self.cost,
                    );
                }
                Asm::Rearrange { reg, lane0, rows } => {
                    for l in lane0..lane0 + rows {
                        let mut mem = self.file[reg][l].clone();
                        self.lanes.lane(l).rearrange(&mut mem);
                        self.file[reg][l] = mem;
                    }
                    charge(
                        &mut report,
                        Instr::MemoryRearrange,
                        self.lanes.batches(rows) as u64,
                        &self.cost,
                    );
                }
                Asm::Move {
                    dst,
                    src,
                    lane0,
                    rows,
                } => {
                    for l in lane0..lane0 + rows {
                        self.file[dst][l] = self.file[src][l].clone();
                    }
                    // register moves ride the rearrange datapath
                    charge(
                        &mut report,
                        Instr::MemoryRearrange,
                        self.lanes.batches(rows) as u64,
                        &self.cost,
                    );
                }
            }
        }
        report
    }
}

/// Assembles the ciphertext `Add` routine: two batch additions over the
/// `q` rows (registers 0..4 = c0,0 c0,1 c1,0 c1,1; results in 4, 5).
pub fn assemble_add(k: usize) -> Program {
    Program {
        name: "fv_add".into(),
        code: vec![
            Asm::Cwa {
                dst: 4,
                a: 0,
                b: 2,
                lane0: 0,
                rows: k,
            },
            Asm::Cwa {
                dst: 5,
                a: 1,
                b: 3,
                lane0: 0,
                rows: k,
            },
        ],
    }
}

/// Assembles the NTT-domain part of a plaintext fused multiply-add
/// `r = a ⊙ m + b` over the `q` rows — the kind of custom routine the
/// paper's programmable coprocessor exists for (registers: 0 = a,
/// 1 = m (NTT domain), 2 = b, 3 = result).
pub fn assemble_fma(k: usize) -> Program {
    Program {
        name: "fused_multiply_add".into(),
        code: vec![
            Asm::Rearrange {
                reg: 0,
                lane0: 0,
                rows: k,
            },
            Asm::Rearrange {
                reg: 0,
                lane0: 0,
                rows: k,
            },
            Asm::Ntt {
                reg: 0,
                lane0: 0,
                rows: k,
            },
            Asm::Cwm {
                dst: 3,
                a: 0,
                b: 1,
                lane0: 0,
                rows: k,
            },
            Asm::Intt {
                reg: 3,
                lane0: 0,
                rows: k,
            },
            Asm::Rearrange {
                reg: 3,
                lane0: 0,
                rows: k,
            },
            Asm::Rearrange {
                reg: 3,
                lane0: 0,
                rows: k,
            },
            Asm::Cwa {
                dst: 3,
                a: 3,
                b: 2,
                lane0: 0,
                rows: k,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hefv_core::params::FvParams;
    use hefv_core::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (FvContext, SecretKey, PublicKey, StdRng) {
        let ctx = FvContext::new(FvParams::insecure_medium()).unwrap();
        let mut rng = StdRng::seed_from_u64(1001);
        let (sk, pk, _) = keygen(&ctx, &mut rng);
        (ctx, sk, pk, rng)
    }

    #[test]
    fn programmed_add_matches_library() {
        let (ctx, _sk, pk, mut rng) = setup();
        let k = ctx.params().k();
        let pa = Plaintext::new(vec![1, 0, 1], 2, ctx.params().n);
        let pb = Plaintext::new(vec![1, 1, 1], 2, ctx.params().n);
        let ca = encrypt(&ctx, &pk, &pa, &mut rng);
        let cb = encrypt(&ctx, &pk, &pb, &mut rng);

        let mut m = Machine::new(&ctx, 6);
        m.load(0, 0, &ca.c0().to_rows());
        m.load(1, 0, &ca.c1().to_rows());
        m.load(2, 0, &cb.c0().to_rows());
        m.load(3, 0, &cb.c1().to_rows());
        let report = m.run(&assemble_add(k));
        let out = Ciphertext::from_parts(
            RnsPoly::from_residues(m.store(4, 0, k), Domain::Coefficient),
            RnsPoly::from_residues(m.store(5, 0, k), Domain::Coefficient),
        );
        let expect = add(&ctx, &ca, &cb);
        assert_eq!(out, expect);
        assert_eq!(report.mix["Coeff. wise Addition"], 2);
        // Matches the Table I Add structure (2 CWA batches).
        assert!(report.fpga_cycles > 0);
    }

    #[test]
    fn programmed_fma_computes_a_times_m_plus_b() {
        let (ctx, sk, pk, mut rng) = setup();
        let k = ctx.params().k();
        let n = ctx.params().n;
        let pa = Plaintext::new(vec![1, 1], 2, n);
        let pb = Plaintext::new(vec![0, 1, 1], 2, n);
        let ca = encrypt(&ctx, &pk, &pa, &mut rng);
        let cb = encrypt(&ctx, &pk, &pb, &mut rng);
        let msg = Plaintext::new(vec![1, 0, 1], 2, n); // m = 1 + x²

        // Machine computes r0 = c_a0 ⊙ m + c_b0 and r1 = c_a1 ⊙ m + c_b1.
        let mut mach = Machine::new(&ctx, 8);
        let mut mpoly = hefv_core::encoder::plaintext_to_rns(&ctx, &msg);
        mpoly.ntt_forward(ctx.ntt_q());
        let mut run_half = |a_rows: &[Vec<u64>], b_rows: &[Vec<u64>]| -> Vec<Vec<u64>> {
            mach.load(0, 0, a_rows);
            mach.load(1, 0, &mpoly.to_rows());
            mach.load(2, 0, b_rows);
            mach.run(&assemble_fma(k));
            mach.store(3, 0, k)
        };
        let r0 = run_half(&ca.c0().to_rows(), &cb.c0().to_rows());
        let r1 = run_half(&ca.c1().to_rows(), &cb.c1().to_rows());
        let out = Ciphertext::from_parts(
            RnsPoly::from_residues(r0, Domain::Coefficient),
            RnsPoly::from_residues(r1, Domain::Coefficient),
        );
        // Library reference: mul_plain(a, m) + b.
        let expect = add(&ctx, &mul_plain(&ctx, &ca, &msg), &cb);
        assert_eq!(out, expect);
        assert_eq!(decrypt(&ctx, &sk, &out), decrypt(&ctx, &sk, &expect));
    }

    #[test]
    fn cycle_accounting_follows_table2_model() {
        let (ctx, _, _, _) = setup();
        let k = ctx.params().k();
        let mut m = Machine::new(&ctx, 6);
        let report = m.run(&assemble_add(k));
        let cost = CostModel {
            n: ctx.params().n,
            ..CostModel::default()
        };
        assert_eq!(report.fpga_cycles, 2 * cost.instr_cycles(Instr::CoeffAdd));
    }

    #[test]
    #[should_panic]
    fn illegal_register_traps() {
        let (ctx, _, _, _) = setup();
        let mut m = Machine::new(&ctx, 2);
        let p = Program {
            name: "bad".into(),
            code: vec![Asm::Cwa {
                dst: 9,
                a: 0,
                b: 1,
                lane0: 0,
                rows: 1,
            }],
        };
        m.run(&p);
    }
}
