//! DMA transfer model (§V-D, §VI-A, Table III).
//!
//! The paper keeps ciphertext coefficients contiguous in DDR so a whole
//! residue polynomial (98 304 bytes = 6 residues × 4096 coefficients × 4 B)
//! moves in a single burst. Table III compares one burst against 16 KiB and
//! 1 KiB chunking.
//!
//! The model has four calibrated components (fit to Table III within ~5%
//! and documented in EXPERIMENTS.md):
//!
//! * `call_overhead_us` — one-time software cost per transfer request
//!   (driver entry, cache-range maintenance setup);
//! * `descriptor_us` — per-chunk descriptor programming + completion
//!   handling on the Arm;
//! * `bandwidth_bytes_per_us` — streaming bandwidth of the 250 MHz DMA;
//! * `chunked_cache_us_per_byte` — extra per-byte cache-maintenance cost
//!   paid when the buffer is flushed chunk-by-chunk instead of as one
//!   range.
//!
//! Ciphertext-path transfers additionally pay `mutex_sync_us` per
//! polynomial for the Xilinx mutual-exclusion IP core that arbitrates the
//! two coprocessors' DMA requests (§V-D), calibrated from the Table I vs
//! Table III delta.

use crate::clock::ClockConfig;
use serde::{Deserialize, Serialize};

/// Bytes of one residue polynomial in the paper's set
/// (6 residues × 4096 coefficients × 4 bytes).
pub const POLY_BYTES: usize = 6 * 4096 * 4;

/// Calibrated DMA timing model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DmaModel {
    /// Fixed software cost per transfer call, µs.
    pub call_overhead_us: f64,
    /// Per-descriptor (per-chunk) cost, µs.
    pub descriptor_us: f64,
    /// Streaming bandwidth, bytes/µs.
    pub bandwidth_bytes_per_us: f64,
    /// Extra per-byte cache-maintenance cost for chunked transfers, µs/B.
    pub chunked_cache_us_per_byte: f64,
    /// Mutex-IP arbitration cost per ciphertext-path polynomial, µs.
    pub mutex_sync_us: f64,
}

impl Default for DmaModel {
    fn default() -> Self {
        DmaModel {
            call_overhead_us: 5.5,
            descriptor_us: 1.03,
            bandwidth_bytes_per_us: 98_304.0 / 69.4, // ≈ 1417 B/µs
            chunked_cache_us_per_byte: 33.4 / 98_304.0,
            mutex_sync_us: 14.5,
        }
    }
}

impl DmaModel {
    /// Time in µs to move `bytes` split into `chunks` equal descriptors.
    ///
    /// # Panics
    ///
    /// Panics if `chunks == 0`.
    pub fn transfer_us(&self, bytes: usize, chunks: usize) -> f64 {
        assert!(chunks > 0, "at least one chunk");
        let stream = bytes as f64 / self.bandwidth_bytes_per_us;
        let cache = if chunks > 1 {
            self.chunked_cache_us_per_byte * bytes as f64
        } else {
            0.0
        };
        self.call_overhead_us + self.descriptor_us * chunks as f64 + stream + cache
    }

    /// Arm cycles for the same transfer.
    pub fn transfer_arm_cycles(&self, clocks: &ClockConfig, bytes: usize, chunks: usize) -> u64 {
        clocks.us_to_arm_cycles(self.transfer_us(bytes, chunks))
    }

    /// Ciphertext-path transfer of `polys` residue polynomials of
    /// `poly_bytes` each: one burst per polynomial plus the mutex
    /// arbitration (Table I's "send"/"receive" rows).
    pub fn ciphertext_transfer_us(&self, polys: usize, poly_bytes: usize) -> f64 {
        polys as f64 * (self.transfer_us(poly_bytes, 1) + self.mutex_sync_us)
    }
}

/// One row of Table III.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Row {
    /// Human-readable transfer description.
    pub label: String,
    /// Modeled Arm cycles.
    pub cycles: u64,
    /// Modeled time in µs.
    pub us: f64,
    /// The paper's measured Arm cycles.
    pub paper_cycles: u64,
    /// The paper's measured µs.
    pub paper_us: f64,
}

/// Regenerates Table III: 98 304 bytes as one burst, 16 KiB chunks and
/// 1 KiB chunks.
pub fn table3(model: &DmaModel, clocks: &ClockConfig) -> Vec<Table3Row> {
    let bytes = 98_304;
    let cases = [
        ("Single transfer of 98,304-bytes", 1usize, 90_708u64, 76.0),
        ("Transfers with 16,384-byte chunks", 6, 130_686, 109.0),
        ("Transfers with 1,024-byte chunks", 96, 242_771, 202.0),
    ];
    cases
        .iter()
        .map(|&(label, chunks, paper_cycles, paper_us)| {
            let us = model.transfer_us(bytes, chunks);
            Table3Row {
                label: label.into(),
                cycles: model.transfer_arm_cycles(clocks, bytes, chunks),
                us,
                paper_cycles,
                paper_us,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_transfer_matches_paper() {
        let m = DmaModel::default();
        let us = m.transfer_us(98_304, 1);
        assert!((us - 76.0).abs() / 76.0 < 0.01, "got {us}");
    }

    #[test]
    fn table3_shape_holds() {
        // The reproduction target: chunking monotonically hurts, and the
        // 1 KiB case is ~2.7x worse than a single burst.
        let rows = table3(&DmaModel::default(), &ClockConfig::default());
        assert!(rows[0].us < rows[1].us);
        assert!(rows[1].us < rows[2].us);
        for r in &rows {
            let ratio = r.us / r.paper_us;
            assert!(
                (0.90..=1.10).contains(&ratio),
                "{}: modeled {:.1}µs vs paper {:.1}µs",
                r.label,
                r.us,
                r.paper_us
            );
        }
    }

    #[test]
    fn ciphertext_path_matches_table1() {
        let m = DmaModel::default();
        // Send two ciphertexts = 4 polynomials: paper 362 µs.
        let send = m.ciphertext_transfer_us(4, POLY_BYTES);
        assert!((send - 362.0).abs() / 362.0 < 0.01, "send {send}");
        // Receive one ciphertext = 2 polynomials: paper 180 µs.
        let recv = m.ciphertext_transfer_us(2, POLY_BYTES);
        assert!((recv - 180.0).abs() / 180.0 < 0.01, "recv {recv}");
    }

    #[test]
    #[should_panic(expected = "at least one chunk")]
    fn zero_chunks_rejected() {
        DmaModel::default().transfer_us(100, 0);
    }
}
