//! Instruction-level cycle model of the coprocessor.
//!
//! Each instruction's cost splits into:
//!
//! * a **datapath** term derived from first principles (schedule lengths,
//!   pipeline initiation intervals, core counts) — see the per-instruction
//!   methods; and
//! * a calibrated **overhead** term (pipeline fill, instruction decode,
//!   interconnect latency visible from the Arm's cycle counter), chosen so
//!   the modeled totals land on Table II. The raw datapath numbers are kept
//!   visible so EXPERIMENTS.md can report both.
//!
//! All values are FPGA cycles; convert with [`crate::clock::ClockConfig`].
//!
//! The model is independent of the host's kernel backend: the cycle
//! counts attribute time to the *coprocessor's* NTT/pointwise datapaths,
//! so whether `hefv_math` dispatches to scalar or AVX2 kernels on the
//! host only changes how fast the functional simulation runs, never the
//! modeled kernel splits reported per instruction.

use serde::{Deserialize, Serialize};

/// The coprocessor's instruction set (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Instr {
    /// Forward NTT of one polynomial batch (all mapped RPAUs in parallel).
    Ntt,
    /// Inverse NTT of one polynomial batch.
    InverseNtt,
    /// Coefficient-wise multiplication of one batch.
    CoeffMul,
    /// Coefficient-wise addition/subtraction of one batch.
    CoeffAdd,
    /// Memory rearrange (the bit-reversal repacking around transforms).
    MemoryRearrange,
    /// `Lift q→Q` of one polynomial (both lift cores).
    Lift,
    /// `Scale Q→q` of one polynomial (both scale cores, reusing lift).
    Scale,
}

impl Instr {
    /// All instructions in Table II order.
    pub const ALL: [Instr; 7] = [
        Instr::Ntt,
        Instr::InverseNtt,
        Instr::CoeffMul,
        Instr::CoeffAdd,
        Instr::MemoryRearrange,
        Instr::Lift,
        Instr::Scale,
    ];

    /// The paper's name for the instruction.
    pub fn name(&self) -> &'static str {
        match self {
            Instr::Ntt => "NTT",
            Instr::InverseNtt => "Inverse-NTT",
            Instr::CoeffMul => "Coeff. wise Multiplication",
            Instr::CoeffAdd => "Coeff. wise Addition",
            Instr::MemoryRearrange => "Memory Rearrange",
            Instr::Lift => "Lift q->Q (2 cores)",
            Instr::Scale => "Scale Q->q (2 cores)",
        }
    }
}

/// Cycle model for the HPS (fast) coprocessor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Ring degree.
    pub n: usize,
    /// Butterfly cores per RPAU (the paper instantiates 2 — §V-A2).
    pub butterfly_cores: usize,
    /// Parallel `Lift`/`Scale` cores (2 in the fast design).
    pub lift_cores: usize,
    /// Arithmetic pipeline depth (mult → sliding-window reduce → add/sub).
    pub pipeline_depth: u64,
    /// Block-pipeline initiation interval of the HPS lift/scale units:
    /// one coefficient result per 7 cycles (§V-B2: "a processing time of
    /// seven cycles at most, since the output is a set of seven residues").
    pub hps_block_ii: u64,
    /// Calibrated per-instruction overhead (decode + fill + Arm-visible
    /// dispatch), FPGA cycles, in [`Instr::ALL`] order.
    pub overheads: [u64; 7],
}

impl Default for CostModel {
    /// The paper's configuration, calibrated to Table II.
    fn default() -> Self {
        CostModel {
            n: 4096,
            butterfly_cores: 2,
            lift_cores: 2,
            pipeline_depth: 12,
            hps_block_ii: 7,
            // datapath + overhead = Table II cycles / 6 (Arm @1.2GHz,
            // FPGA @200MHz). See EXPERIMENTS.md for the derivation.
            overheads: [2_165, 3_551, 550, 655, 60, 2_152, 2_140],
        }
    }
}

impl CostModel {
    /// Number of butterfly stages.
    fn stages(&self) -> u64 {
        self.n.trailing_zeros() as u64
    }

    /// Cycles of one NTT stage: `n/2` paired words through
    /// `butterfly_cores` cores, one word per core per cycle.
    fn stage_cycles(&self) -> u64 {
        (self.n / 2) as u64 / self.butterfly_cores as u64
    }

    /// First-principles datapath cycles for an instruction.
    pub fn datapath_cycles(&self, i: Instr) -> u64 {
        let n = self.n as u64;
        // Coefficient-wise ops: each core's single multiplier/adder handles
        // one coefficient per cycle, so n coefficients stream through the
        // butterfly cores in n/cores cycles.
        let stream = n / self.butterfly_cores as u64;
        match i {
            // log2(n) stages, each n/4 dual-issue cycles plus a drain.
            Instr::Ntt => self.stages() * (self.stage_cycles() + self.pipeline_depth),
            // Same plus the n^{-1} scaling pass.
            Instr::InverseNtt => {
                self.stages() * (self.stage_cycles() + self.pipeline_depth) + self.stage_cycles()
            }
            // One multiplier result per core per cycle.
            Instr::CoeffMul => stream + self.pipeline_depth,
            Instr::CoeffAdd => stream + self.pipeline_depth,
            // Bit-reversal repack: one word moved per cycle per bank pair.
            Instr::MemoryRearrange => n + self.pipeline_depth,
            // Block pipeline: one coefficient per II per core, plus fill
            // of the five pipeline blocks.
            Instr::Lift => {
                let per_core = (self.n as u64).div_ceil(self.lift_cores as u64);
                per_core * self.hps_block_ii + 5 * self.hps_block_ii
            }
            // Scale reuses the lift datapath for its second step; the
            // block pipeline hides all but the extra fill (§VI-A: "the
            // overall computation time for Scale remains almost equal to
            // Lift").
            Instr::Scale => {
                let per_core = (self.n as u64).div_ceil(self.lift_cores as u64);
                per_core * self.hps_block_ii + 10 * self.hps_block_ii
            }
        }
    }

    /// Modeled instruction cycles (datapath + calibrated overhead) — the
    /// quantity that corresponds to Table II after Arm-clock conversion.
    pub fn instr_cycles(&self, i: Instr) -> u64 {
        let idx = Instr::ALL.iter().position(|&x| x == i).unwrap();
        self.datapath_cycles(i) + self.overheads[idx]
    }

    /// Cycles for the high-level `Add` operation: two `CoeffAdd`
    /// instructions, block-pipelined so the second's overhead partially
    /// overlaps the first (calibrated against Table I's 31,339 Arm
    /// cycles).
    pub fn add_op_cycles(&self) -> u64 {
        2 * self.datapath_cycles(Instr::CoeffAdd) + 1_103
    }
}

/// Cycle model for the traditional-CRT (non-HPS) coprocessor of §VI-C:
/// 225 MHz, four single-core `Lift`/`Scale` units, relinearization keys a
/// third of the size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TradCostModel {
    /// The shared polynomial-arithmetic model (same RPAUs as the fast
    /// design — §VI-C: "The polynomial arithmetic unit in the faster and
    /// slower architectures are similar").
    pub poly: CostModel,
    /// Per-coefficient initiation interval of the long-integer `Lift`
    /// (calibrated: 1.68 ms at 225 MHz for one core over 4096
    /// coefficients → 92 cycles).
    pub lift_ii: u64,
    /// Per-coefficient initiation interval of the long-integer `Scale`
    /// (4.3 ms at 225 MHz → 236 cycles; the reciprocal is twice as wide
    /// and the dividend twice as long, "almost four times larger" §V-C).
    pub scale_ii: u64,
    /// Parallel single-core lift/scale units (4 in §VI-C).
    pub cores: usize,
    /// Relinearization digits (2: "three times smaller relinearization
    /// key").
    pub relin_digits: usize,
}

impl Default for TradCostModel {
    fn default() -> Self {
        TradCostModel {
            poly: CostModel::default(),
            lift_ii: 92,
            scale_ii: 236,
            cores: 4,
            relin_digits: 2,
        }
    }
}

impl TradCostModel {
    /// Cycles for one single-core traditional `Lift` call.
    pub fn lift_cycles(&self) -> u64 {
        self.poly.n as u64 * self.lift_ii
    }

    /// Cycles for one single-core traditional `Scale` call.
    pub fn scale_cycles(&self) -> u64 {
        self.poly.n as u64 * self.scale_ii
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ClockConfig;

    /// Table II, as (instruction, calls per Mult, Arm cycles, µs).
    pub const TABLE2: [(Instr, u32, u64, f64); 7] = [
        (Instr::Ntt, 14, 87_582, 73.0),
        (Instr::InverseNtt, 8, 102_043, 85.0),
        (Instr::CoeffMul, 20, 15_662, 13.1),
        (Instr::CoeffAdd, 26, 16_292, 13.6),
        (Instr::MemoryRearrange, 22, 25_006, 20.8),
        (Instr::Lift, 4, 99_137, 82.6),
        (Instr::Scale, 3, 99_274, 82.7),
    ];

    #[test]
    fn calibrated_cycles_match_table2() {
        let m = CostModel::default();
        let clocks = ClockConfig::default();
        for (i, _, paper_arm, _) in TABLE2 {
            let arm = clocks.fpga_to_arm_cycles(m.instr_cycles(i));
            let ratio = arm as f64 / paper_arm as f64;
            assert!(
                (0.999..=1.001).contains(&ratio),
                "{}: modeled {arm} vs paper {paper_arm}",
                i.name()
            );
        }
    }

    #[test]
    fn datapath_dominates_overhead() {
        // The calibration constants must stay small relative to the
        // first-principles term — otherwise the model is curve-fitting.
        let m = CostModel::default();
        for i in Instr::ALL {
            let d = m.datapath_cycles(i);
            let total = m.instr_cycles(i);
            assert!(
                d as f64 / total as f64 > 0.75,
                "{}: datapath {d} of {total}",
                i.name()
            );
        }
    }

    #[test]
    fn ntt_datapath_formula() {
        let m = CostModel::default();
        // 12 stages × (1024 + 12) = 12,432
        assert_eq!(m.datapath_cycles(Instr::Ntt), 12 * (1024 + 12));
        assert_eq!(
            m.datapath_cycles(Instr::InverseNtt),
            12 * (1024 + 12) + 1024
        );
    }

    #[test]
    fn add_op_matches_table1() {
        let m = CostModel::default();
        let clocks = ClockConfig::default();
        let arm = clocks.fpga_to_arm_cycles(m.add_op_cycles());
        let ratio = arm as f64 / 31_339.0;
        assert!((0.999..=1.001).contains(&ratio), "Add in HW: {arm}");
    }

    #[test]
    fn trad_lift_scale_match_section_6c() {
        let m = TradCostModel::default();
        let clocks = ClockConfig::non_hps();
        // §VI-C: 1.68 ms and 4.3 ms at 225 MHz for one core.
        let lift_ms = clocks.fpga_cycles_to_us(m.lift_cycles()) / 1000.0;
        let scale_ms = clocks.fpga_cycles_to_us(m.scale_cycles()) / 1000.0;
        assert!((lift_ms - 1.68).abs() / 1.68 < 0.01, "lift {lift_ms}");
        assert!((scale_ms - 4.3).abs() / 4.3 < 0.01, "scale {scale_ms}");
    }

    #[test]
    fn hps_lift_is_an_order_faster_than_traditional() {
        // The headline of the HPS optimization: compare per-call times.
        let fast = CostModel::default();
        let slow = TradCostModel::default();
        let fast_us = ClockConfig::default().fpga_cycles_to_us(fast.instr_cycles(Instr::Lift));
        let slow_us = ClockConfig::non_hps().fpga_cycles_to_us(slow.lift_cycles());
        assert!(
            slow_us / fast_us > 15.0,
            "traditional {slow_us:.0}µs vs HPS {fast_us:.0}µs"
        );
    }
}
