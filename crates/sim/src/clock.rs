//! Clock domains of the paper's platform (§VI-A): the FPGA coprocessor at
//! 200 MHz, the Arm cores at 1.2 GHz, the DMA at 250 MHz.
//!
//! All of the paper's cycle counts (Tables I–III) are *Arm* cycles, read
//! from the Arm cycle-count register ("Cycle counts for various operations
//! are measured from the software side"); the simulator's native unit is
//! FPGA cycles, converted here.

use serde::{Deserialize, Serialize};

/// Clock frequencies of the platform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClockConfig {
    /// FPGA fabric clock in MHz (200 in the paper's fast design,
    /// 225 in the non-HPS design).
    pub fpga_mhz: f64,
    /// Arm application-core clock in MHz (1200).
    pub arm_mhz: f64,
    /// DMA clock in MHz (250).
    pub dma_mhz: f64,
}

impl Default for ClockConfig {
    fn default() -> Self {
        ClockConfig {
            fpga_mhz: 200.0,
            arm_mhz: 1200.0,
            dma_mhz: 250.0,
        }
    }
}

impl ClockConfig {
    /// The non-HPS coprocessor's clocks (§VI-C: 225 MHz).
    pub fn non_hps() -> Self {
        ClockConfig {
            fpga_mhz: 225.0,
            ..Default::default()
        }
    }

    /// Converts FPGA cycles to microseconds.
    pub fn fpga_cycles_to_us(&self, cycles: u64) -> f64 {
        cycles as f64 / self.fpga_mhz
    }

    /// Converts FPGA cycles to the Arm-cycle unit the paper reports.
    pub fn fpga_to_arm_cycles(&self, cycles: u64) -> u64 {
        (cycles as f64 * self.arm_mhz / self.fpga_mhz).round() as u64
    }

    /// Converts microseconds to Arm cycles.
    pub fn us_to_arm_cycles(&self, us: f64) -> u64 {
        (us * self.arm_mhz).round() as u64
    }

    /// Converts Arm cycles to milliseconds.
    pub fn arm_cycles_to_ms(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.arm_mhz * 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_unit_conversions() {
        let c = ClockConfig::default();
        // Table I: Mult = 5,349,567 Arm cycles = 4.458 ms.
        assert!((c.arm_cycles_to_ms(5_349_567) - 4.458).abs() < 0.001);
        // Table II: NTT = 87,582 Arm cycles = 73.0 µs = 14,597 FPGA cycles.
        assert_eq!(c.fpga_to_arm_cycles(14_597), 87_582);
        assert!((c.fpga_cycles_to_us(14_597) - 73.0).abs() < 0.05);
    }

    #[test]
    fn us_roundtrip() {
        let c = ClockConfig::default();
        assert_eq!(c.us_to_arm_cycles(76.0), 91_200);
    }

    #[test]
    fn non_hps_clock() {
        let c = ClockConfig::non_hps();
        assert_eq!(c.fpga_mhz, 225.0);
        assert_eq!(c.arm_mhz, 1200.0);
    }
}
