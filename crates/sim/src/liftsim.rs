//! Block-pipelined `Lift q→Q` and `Scale Q→q` units (Fig. 6 / Fig. 9),
//! executed block-by-block the way the RTL computes them.
//!
//! Each unit is a five-block pipeline with an initiation interval of seven
//! cycles (§V-B2: every block is sized so "the output is a set of seven
//! residues"). The functional model runs every block's arithmetic with the
//! hardware's datapaths — sliding-window reductions and the 89-bit
//! fixed-point reciprocal MACs — and the tests pin it bit-for-bit against
//! the software library's [`hefv_math::rns`] HPS implementation.

use hefv_math::fixed::SmallReciprocal;
use hefv_math::rns::{Extender, RnsContext, ScaleContext};
use hefv_math::zq::{Modulus, SlidingWindowTable};

/// The HPS `Lift` unit for one base-extension direction.
#[derive(Debug, Clone)]
pub struct HpsLiftUnit {
    /// Source moduli `q_i` with their reduction tables (Block 1).
    from: Vec<(Modulus, SlidingWindowTable)>,
    /// `q̃_i = (q/q_i)^{-1} mod q_i` ROM.
    tilde: Vec<u64>,
    /// Destination moduli with reduction tables (Blocks 2/4/5).
    to: Vec<(Modulus, SlidingWindowTable)>,
    /// Block-2 ROM: `(q/q_i) mod p_j`, `[i][j]`.
    cross: Vec<Vec<u64>>,
    /// Block-4 ROM: `q mod p_j`.
    q_mod_to: Vec<u64>,
    /// Block-3 ROM: fixed-point reciprocals `1/q_i`.
    recips: Vec<SmallReciprocal>,
    /// Block pipeline initiation interval.
    ii: u64,
}

impl HpsLiftUnit {
    /// Block-pipeline initiation interval (§V-B2).
    pub const BLOCK_II: u64 = 7;
    /// Number of pipeline blocks (Fig. 6).
    pub const BLOCKS: u64 = 5;

    /// Builds the unit from an [`Extender`]'s ROM contents.
    pub fn from_extender(ext: &Extender) -> Self {
        let mk = |m: &Modulus| (*m, SlidingWindowTable::new(m));
        HpsLiftUnit {
            from: ext.from_basis().moduli().iter().map(mk).collect(),
            tilde: (0..ext.from_basis().len())
                .map(|i| ext.from_basis().tilde(i))
                .collect(),
            to: ext.to_basis().moduli().iter().map(mk).collect(),
            cross: ext.cross_table().to_vec(),
            q_mod_to: ext.product_mod_to_table().to_vec(),
            recips: ext.reciprocal_roms().to_vec(),
            ii: Self::BLOCK_II,
        }
    }

    /// Lifts one coefficient through the five blocks.
    ///
    /// # Panics
    ///
    /// Panics if the residue count mismatches the unit's source basis.
    pub fn lift_coeff(&self, a: &[u64]) -> Vec<u64> {
        assert_eq!(a.len(), self.from.len(), "residue count mismatch");
        // Block 1: y_i = a_i · q̃_i mod q_i, one per cycle.
        let ys: Vec<u64> = self
            .from
            .iter()
            .zip(&self.tilde)
            .zip(a)
            .map(|(((m, table), &t), &ai)| {
                m.reduce_sliding_window(m.reduce(ai) as u128 * t as u128, table)
            })
            .collect();
        // Block 3: v' = round(Σ y_i / q_i) with the stored reciprocals.
        let terms: Vec<u128> = ys
            .iter()
            .zip(&self.recips)
            .map(|(&y, r)| r.mul(y))
            .collect();
        let v = SmallReciprocal::round_sum(&terms);
        // Blocks 2, 4, 5 per destination residue.
        (0..self.to.len())
            .map(|j| {
                let (m, table) = &self.to[j];
                // Block 2: seven parallel MACs, accumulate then reduce.
                let mut acc = 0u128;
                for (i, &y) in ys.iter().enumerate() {
                    acc += y as u128 * self.cross[i][j] as u128;
                }
                let sop = m.reduce_sliding_window(acc, table);
                // Block 4: v'_j = v' · (q mod p_j) mod p_j.
                let vj = m.reduce_sliding_window(v as u128 * self.q_mod_to[j] as u128, table);
                // Block 5: a_j = sop − v'_j mod p_j.
                m.sub(sop, vj)
            })
            .collect()
    }

    /// Lifts a residue-major polynomial; returns the extension rows and
    /// the single-core datapath cycles (pipeline fill + one coefficient
    /// per initiation interval).
    ///
    /// # Panics
    ///
    /// Panics if the rows are ragged or mismatch the source basis.
    pub fn lift_poly(&self, rows: &[Vec<u64>]) -> (Vec<Vec<u64>>, u64) {
        assert_eq!(rows.len(), self.from.len(), "residue count mismatch");
        let n = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == n), "ragged rows");
        let mut out = vec![vec![0u64; n]; self.to.len()];
        let mut buf = vec![0u64; self.from.len()];
        for c in 0..n {
            for i in 0..self.from.len() {
                buf[i] = rows[i][c];
            }
            let ext = self.lift_coeff(&buf);
            for j in 0..self.to.len() {
                out[j][c] = ext[j];
            }
        }
        let cycles = Self::BLOCKS * self.ii + n as u64 * self.ii;
        (out, cycles)
    }
}

/// The HPS `Scale` unit (Fig. 9): blocks 1–3 compute `⌈t·a/q⌋` in the RNS
/// of `p`; the embedded lift unit (Block "RNS", reused datapath) switches
/// the result into the RNS of `q`.
#[derive(Debug, Clone)]
pub struct HpsScaleUnit {
    /// q-basis moduli with reduction tables.
    from_q: Vec<(Modulus, SlidingWindowTable)>,
    /// p-basis moduli with reduction tables.
    from_p: Vec<(Modulus, SlidingWindowTable)>,
    /// `Q̃_i mod q_i` ROM.
    tilde_q: Vec<u64>,
    /// `Q̃_j mod p_j` ROM.
    tilde_p: Vec<u64>,
    /// `t·(p/p_j) mod p_m` ROM, `[j][m]`.
    c_jm: Vec<Vec<u64>>,
    /// `floor(t·p/q_i) mod p_m` ROM (integer parts `I_i`).
    int_im: Vec<Vec<u64>>,
    /// `frac(t·p/q_i)` in Q64 (real parts `R_i`).
    frac: Vec<u64>,
    /// The reused `Lift p→q` datapath.
    unlift: HpsLiftUnit,
}

impl HpsScaleUnit {
    /// Builds the unit from the library's ROM contents.
    pub fn new(ctx: &RnsContext, sc: &ScaleContext) -> Self {
        let mk = |m: &Modulus| (*m, SlidingWindowTable::new(m));
        HpsScaleUnit {
            from_q: ctx.base_q().moduli().iter().map(mk).collect(),
            from_p: ctx.base_p().moduli().iter().map(mk).collect(),
            tilde_q: sc.big_q_tilde_q_table().to_vec(),
            tilde_p: sc.big_q_tilde_p_table().to_vec(),
            c_jm: sc.c_jm_table().to_vec(),
            int_im: sc.int_table().to_vec(),
            frac: sc.frac_fixed_table().to_vec(),
            unlift: HpsLiftUnit::from_extender(ctx.unlift()),
        }
    }

    /// Scales one coefficient: input residues over `q` and `p`, output
    /// residues over `q`.
    ///
    /// # Panics
    ///
    /// Panics on residue-count mismatch.
    pub fn scale_coeff(&self, a_q: &[u64], a_p: &[u64]) -> Vec<u64> {
        let d_p = self.scale_coeff_to_p(a_q, a_p);
        self.unlift.lift_coeff(&d_p)
    }

    /// Blocks 1–3 only: `⌈t·a/q⌋ mod p_m`.
    ///
    /// # Panics
    ///
    /// Panics on residue-count mismatch.
    pub fn scale_coeff_to_p(&self, a_q: &[u64], a_p: &[u64]) -> Vec<u64> {
        assert_eq!(a_q.len(), self.from_q.len(), "q residue count");
        assert_eq!(a_p.len(), self.from_p.len(), "p residue count");
        // Premultiplications y_k = a_k · Q̃_k mod m_k.
        let yq: Vec<u64> = self
            .from_q
            .iter()
            .zip(&self.tilde_q)
            .zip(a_q)
            .map(|(((m, t), &td), &a)| m.reduce_sliding_window(m.reduce(a) as u128 * td as u128, t))
            .collect();
        let yp: Vec<u64> = self
            .from_p
            .iter()
            .zip(&self.tilde_p)
            .zip(a_p)
            .map(|(((m, t), &td), &a)| m.reduce_sliding_window(m.reduce(a) as u128 * td as u128, t))
            .collect();
        // Block 2 (real parts): G = ⌈Σ y_i · R_i⌋ in Q64 fixed point.
        let gsum: u128 = yq
            .iter()
            .zip(&self.frac)
            .map(|(&y, &f)| y as u128 * f as u128)
            .sum();
        let g = ((gsum + (1u128 << 63)) >> 64) as u64;
        // Blocks 1 + 3 per output residue: integer-part MACs.
        (0..self.from_p.len())
            .map(|m_idx| {
                let (m, table) = &self.from_p[m_idx];
                let mut acc = g as u128;
                for (j, &y) in yp.iter().enumerate() {
                    acc += y as u128 * self.c_jm[j][m_idx] as u128;
                }
                // 13 MAC terms of ≤60 bits exceed the 67-bit reduction
                // window, so the RTL reduces the accumulator in two
                // halves; reduce the q-part separately here.
                let first = m.reduce_sliding_window(acc, table);
                let mut acc2 = first as u128;
                for (i, &y) in yq.iter().enumerate() {
                    acc2 += y as u128 * self.int_im[i][m_idx] as u128;
                }
                m.reduce_sliding_window(acc2, table)
            })
            .collect()
    }

    /// Scales a residue-major polynomial over the full basis of `Q`
    /// (q rows first); returns q rows and single-core datapath cycles.
    ///
    /// # Panics
    ///
    /// Panics on layout mismatch.
    pub fn scale_poly(&self, rows: &[Vec<u64>]) -> (Vec<Vec<u64>>, u64) {
        let k = self.from_q.len();
        let l = self.from_p.len();
        assert_eq!(rows.len(), k + l, "row count mismatch");
        let n = rows[0].len();
        let mut out = vec![vec![0u64; n]; k];
        let mut bq = vec![0u64; k];
        let mut bp = vec![0u64; l];
        for c in 0..n {
            for i in 0..k {
                bq[i] = rows[i][c];
            }
            for j in 0..l {
                bp[j] = rows[k + j][c];
            }
            let d = self.scale_coeff(&bq, &bp);
            for i in 0..k {
                out[i][c] = d[i];
            }
        }
        // Twice the lift fill (the scale blocks plus the reused lift),
        // then one coefficient per initiation interval.
        let cycles =
            2 * HpsLiftUnit::BLOCKS * HpsLiftUnit::BLOCK_II + n as u64 * HpsLiftUnit::BLOCK_II;
        (out, cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hefv_math::primes::ntt_primes;
    use hefv_math::rns::HpsPrecision;

    fn ctx() -> RnsContext {
        let ps = ntt_primes(30, 4096, 13).unwrap();
        RnsContext::new(&ps[..6], &ps[6..]).unwrap()
    }

    #[test]
    fn lift_unit_matches_library_hps() {
        let ctx = ctx();
        let unit = HpsLiftUnit::from_extender(ctx.lift());
        let mut st = 0xABCDEFu64;
        for _ in 0..300 {
            let a: Vec<u64> = (0..6)
                .map(|i| {
                    st = st.wrapping_mul(6364136223846793005).wrapping_add(1);
                    st % ctx.base_q().modulus(i).value()
                })
                .collect();
            assert_eq!(
                unit.lift_coeff(&a),
                ctx.lift().extend_hps(&a, HpsPrecision::Fixed)
            );
        }
    }

    #[test]
    fn lift_unit_poly_cycles_are_ii_bound() {
        let ctx = ctx();
        let unit = HpsLiftUnit::from_extender(ctx.lift());
        let n = 64;
        let rows: Vec<Vec<u64>> = (0..6)
            .map(|i| {
                (0..n as u64)
                    .map(|c| (c * 7 + i as u64) % ctx.base_q().modulus(i).value())
                    .collect()
            })
            .collect();
        let (out, cycles) = unit.lift_poly(&rows);
        let src: Vec<u64> = rows.iter().flatten().copied().collect();
        let mut expect = vec![0u64; 7 * n];
        ctx.lift()
            .extend_poly_hps_into(&src, n, &mut expect, HpsPrecision::Fixed);
        let got: Vec<u64> = out.iter().flatten().copied().collect();
        assert_eq!(got, expect);
        assert_eq!(cycles, 5 * 7 + 64 * 7);
    }

    #[test]
    fn scale_unit_matches_library_hps() {
        let ctx = ctx();
        let sc = ScaleContext::new(&ctx, 2);
        let unit = HpsScaleUnit::new(&ctx, &sc);
        // Tensor-magnitude inputs.
        let q = ctx.base_q().product().clone();
        let bound = &(&q * &q) << 10;
        let mut st = 0x13572468u64;
        for trial in 0..100 {
            let mut v = hefv_math::bigint::UBig::zero();
            for _ in 0..7 {
                st = st.wrapping_mul(6364136223846793005).wrapping_add(1);
                v = &(&v << 64) + &hefv_math::bigint::UBig::from(st);
            }
            let v = v.div_rem(&bound).1;
            let rep = if trial % 2 == 0 { v } else { ctx.big_q() - &v };
            let res = ctx.base_full().encode(&rep);
            let got = unit.scale_coeff(&res[..6], &res[6..]);
            let expect = sc.scale_hps(&ctx, &res[..6], &res[6..], HpsPrecision::Fixed);
            assert_eq!(got, expect, "trial {trial}");
        }
    }

    #[test]
    fn scale_unit_poly_matches_and_counts() {
        let ctx = ctx();
        let sc = ScaleContext::new(&ctx, 2);
        let unit = HpsScaleUnit::new(&ctx, &sc);
        let n = 16;
        let q = ctx.base_q().product().clone();
        let vals: Vec<hefv_math::bigint::UBig> = (0..n as u64)
            .map(|c| (&(&q * &q) >> 2).mul_u64(c + 3))
            .collect();
        let rows: Vec<Vec<u64>> = (0..13)
            .map(|i| {
                vals.iter()
                    .map(|v| v.rem_u64(ctx.base_full().modulus(i).value()))
                    .collect()
            })
            .collect();
        let (out, cycles) = unit.scale_poly(&rows);
        let src: Vec<u64> = rows.iter().flatten().copied().collect();
        let mut expect = vec![0u64; 6 * n];
        sc.scale_poly_hps_into(&ctx, &src, n, &mut expect, HpsPrecision::Fixed);
        let got: Vec<u64> = out.iter().flatten().copied().collect();
        assert_eq!(got, expect);
        assert_eq!(cycles, 2 * 5 * 7 + 16 * 7);
    }

    #[test]
    fn two_units_halve_the_stream() {
        // The instruction model assumes two lift cores split the 4096
        // coefficients; check the unit-level cycles compose to the
        // instruction-level figure (14,336 + fill ≈ Table II's 16.5k
        // minus the dispatch overhead).
        let per_core_coeffs = 2048u64;
        let cycles =
            HpsLiftUnit::BLOCKS * HpsLiftUnit::BLOCK_II + per_core_coeffs * HpsLiftUnit::BLOCK_II;
        assert_eq!(cycles, 35 + 14_336);
    }
}
