//! BRAM36K memory model with per-cycle port accounting.
//!
//! §V-A2/3: a residue polynomial (4096 30-bit coefficients) is stored as
//! 2048 virtual 60-bit words (two paired coefficients per word) across two
//! banks of 1024 words; each bank is two aligned BRAM36Ks sharing address
//! buses. During NTT one port of a bank reads while the other writes, so a
//! bank sustains at most **one read and one write per cycle** — the
//! constraint the Fig. 3 schedule is built to satisfy.

use serde::{Deserialize, Serialize};

/// Identifies one of the two banks of a polynomial memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Bank {
    /// Word addresses 0..1024 (the paper's address range 0–1023).
    Lower,
    /// Word addresses 1024..2048.
    Upper,
}

/// Which bank a word address belongs to, given `words` total words.
///
/// # Panics
///
/// Panics if the address is out of range.
pub fn bank_of(addr: usize, words: usize) -> Bank {
    assert!(addr < words, "word address {addr} out of range {words}");
    if addr < words / 2 {
        Bank::Lower
    } else {
        Bank::Upper
    }
}

/// A dual-bank paired-coefficient polynomial memory: `n` coefficients as
/// `n/2` words of two coefficients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolyMem {
    /// Coefficient storage; word `w` holds coefficients `2w` and `2w+1`.
    data: Vec<u64>,
}

impl PolyMem {
    /// Loads a polynomial (coefficient order).
    ///
    /// # Panics
    ///
    /// Panics if the length is not an even power-of-two.
    pub fn load(coeffs: &[u64]) -> Self {
        assert!(coeffs.len().is_power_of_two() && coeffs.len() >= 4);
        PolyMem {
            data: coeffs.to_vec(),
        }
    }

    /// Number of coefficients.
    pub fn n(&self) -> usize {
        self.data.len()
    }

    /// Number of 60-bit words.
    pub fn words(&self) -> usize {
        self.data.len() / 2
    }

    /// Reads word `w` → the coefficient pair `(2w, 2w+1)`.
    pub fn read_word(&self, w: usize) -> (u64, u64) {
        (self.data[2 * w], self.data[2 * w + 1])
    }

    /// Writes word `w`.
    pub fn write_word(&mut self, w: usize, pair: (u64, u64)) {
        self.data[2 * w] = pair.0;
        self.data[2 * w + 1] = pair.1;
    }

    /// The stored coefficients.
    pub fn coeffs(&self) -> &[u64] {
        &self.data
    }
}

/// Per-cycle port-usage auditor: records every access and reports
/// violations of the one-read + one-write per bank per cycle budget.
#[derive(Debug, Default, Clone)]
pub struct PortAuditor {
    /// (cycle, bank) -> reads this cycle.
    reads: std::collections::HashMap<(u64, Bank), u32>,
    /// (cycle, bank) -> writes this cycle.
    writes: std::collections::HashMap<(u64, Bank), u32>,
    violations: Vec<String>,
}

impl PortAuditor {
    /// Fresh auditor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a read of `bank` at `cycle`.
    pub fn read(&mut self, cycle: u64, bank: Bank) {
        let c = self.reads.entry((cycle, bank)).or_insert(0);
        *c += 1;
        if *c > 1 {
            self.violations
                .push(format!("cycle {cycle}: {c} reads on {bank:?}"));
        }
    }

    /// Records a write of `bank` at `cycle`.
    pub fn write(&mut self, cycle: u64, bank: Bank) {
        let c = self.writes.entry((cycle, bank)).or_insert(0);
        *c += 1;
        if *c > 1 {
            self.violations
                .push(format!("cycle {cycle}: {c} writes on {bank:?}"));
        }
    }

    /// All recorded violations (empty for a conflict-free schedule).
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Whether the recorded trace is conflict-free.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Total reads recorded.
    pub fn total_reads(&self) -> u64 {
        self.reads.values().map(|&v| v as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_split() {
        assert_eq!(bank_of(0, 2048), Bank::Lower);
        assert_eq!(bank_of(1023, 2048), Bank::Lower);
        assert_eq!(bank_of(1024, 2048), Bank::Upper);
        assert_eq!(bank_of(2047, 2048), Bank::Upper);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bank_rejects_oob() {
        bank_of(2048, 2048);
    }

    #[test]
    fn polymem_word_pairing() {
        let coeffs: Vec<u64> = (0..16).collect();
        let mut m = PolyMem::load(&coeffs);
        assert_eq!(m.words(), 8);
        assert_eq!(m.read_word(3), (6, 7));
        m.write_word(3, (60, 70));
        assert_eq!(m.coeffs()[6], 60);
        assert_eq!(m.coeffs()[7], 70);
    }

    #[test]
    fn auditor_flags_double_read() {
        let mut a = PortAuditor::new();
        a.read(5, Bank::Lower);
        a.read(5, Bank::Upper); // fine: different bank
        assert!(a.is_clean());
        a.read(5, Bank::Lower); // second read, same bank, same cycle
        assert!(!a.is_clean());
        assert_eq!(a.violations().len(), 1);
        assert_eq!(a.total_reads(), 3);
    }

    #[test]
    fn auditor_tracks_writes_independently() {
        let mut a = PortAuditor::new();
        a.read(1, Bank::Lower);
        a.write(1, Bank::Lower); // read + write same bank is allowed
        assert!(a.is_clean());
        a.write(1, Bank::Lower);
        assert!(!a.is_clean());
    }
}
