//! Residue Polynomial Arithmetic Unit (§V-A): functional, word-level
//! execution of the polynomial instructions on the paired-coefficient
//! memory, using the RTL's *own* arithmetic datapath — the §V-A4
//! sliding-window modular reduction — rather than the software library's
//! Barrett path. Tests assert bit-equality between the two.
//!
//! One RPAU serves two RNS primes (§V-A1): the first RPAU handles `q_0`
//! and `q_6`, the second `q_1` and `q_7`, and so on; the seventh only
//! `q_12`. [`RpauArray`] captures that mapping and batches instructions
//! the way the coprocessor does (one batch for the `q` basis, two for the
//! full basis of `Q`).

use crate::bram::PolyMem;
use crate::nttsched::{execute_forward, execute_inverse, NttSchedule};
use hefv_math::ntt::{bit_reverse, NttTable};
use hefv_math::zq::{Modulus, SlidingWindowTable};

/// One residue lane of an RPAU: the butterfly cores, the reduction tables
/// and the NTT schedule for a single prime.
#[derive(Debug, Clone)]
pub struct ResidueLane {
    modulus: Modulus,
    reduction: SlidingWindowTable,
    sched: NttSchedule,
}

impl ResidueLane {
    /// Builds a lane for one 30-bit prime and ring degree `n`.
    pub fn new(q: u64, n: usize) -> Self {
        let modulus = Modulus::new(q);
        ResidueLane {
            reduction: SlidingWindowTable::new(&modulus),
            modulus,
            sched: NttSchedule::new(n),
        }
    }

    /// The lane's modulus.
    pub fn modulus(&self) -> &Modulus {
        &self.modulus
    }

    /// Forward NTT through the dual-core schedule; returns datapath cycles.
    ///
    /// # Panics
    ///
    /// Panics if the table's modulus differs from the lane's.
    pub fn ntt(&self, mem: &mut PolyMem, table: &NttTable) -> u64 {
        assert_eq!(table.modulus().value(), self.modulus.value());
        execute_forward(&self.sched, mem, table)
    }

    /// Inverse NTT; returns datapath cycles.
    ///
    /// # Panics
    ///
    /// Panics if the table's modulus differs from the lane's.
    pub fn intt(&self, mem: &mut PolyMem, table: &NttTable) -> u64 {
        assert_eq!(table.modulus().value(), self.modulus.value());
        execute_inverse(&self.sched, mem, table)
    }

    /// Coefficient-wise multiply (the `CWM` instruction): streams word
    /// pairs through the butterfly cores' multipliers and the
    /// sliding-window reduction. Returns datapath cycles (one coefficient
    /// per core per cycle).
    ///
    /// # Panics
    ///
    /// Panics on operand size mismatch.
    pub fn cwm(&self, a: &PolyMem, b: &PolyMem) -> (PolyMem, u64) {
        assert_eq!(a.n(), b.n(), "operand size mismatch");
        let mut out = a.clone();
        for w in 0..a.words() {
            let (a0, a1) = a.read_word(w);
            let (b0, b1) = b.read_word(w);
            let r0 = self
                .modulus
                .reduce_sliding_window(a0 as u128 * b0 as u128, &self.reduction);
            let r1 = self
                .modulus
                .reduce_sliding_window(a1 as u128 * b1 as u128, &self.reduction);
            out.write_word(w, (r0, r1));
        }
        let cycles = (a.n() / 2) as u64; // two cores, one coefficient each
        (out, cycles)
    }

    /// Coefficient-wise multiply-accumulate: `acc += a ⊙ b` using the MAC
    /// configuration of Fig. 7 (blue path). Same cycle cost as `cwm`.
    ///
    /// # Panics
    ///
    /// Panics on operand size mismatch.
    pub fn cwm_acc(&self, acc: &mut PolyMem, a: &PolyMem, b: &PolyMem) -> u64 {
        assert_eq!(a.n(), b.n(), "operand size mismatch");
        assert_eq!(acc.n(), a.n(), "accumulator size mismatch");
        for w in 0..a.words() {
            let (a0, a1) = a.read_word(w);
            let (b0, b1) = b.read_word(w);
            let (c0, c1) = acc.read_word(w);
            let r0 = self
                .modulus
                .reduce_sliding_window(a0 as u128 * b0 as u128 + c0 as u128, &self.reduction);
            let r1 = self
                .modulus
                .reduce_sliding_window(a1 as u128 * b1 as u128 + c1 as u128, &self.reduction);
            acc.write_word(w, (r0, r1));
        }
        (a.n() / 2) as u64
    }

    /// Coefficient-wise addition (`CWA`).
    ///
    /// # Panics
    ///
    /// Panics on operand size mismatch.
    pub fn cwa(&self, a: &PolyMem, b: &PolyMem) -> (PolyMem, u64) {
        assert_eq!(a.n(), b.n(), "operand size mismatch");
        let mut out = a.clone();
        for w in 0..a.words() {
            let (a0, a1) = a.read_word(w);
            let (b0, b1) = b.read_word(w);
            out.write_word(w, (self.modulus.add(a0, b0), self.modulus.add(a1, b1)));
        }
        (out, (a.n() / 2) as u64)
    }

    /// Coefficient-wise subtraction (`CWS`).
    ///
    /// # Panics
    ///
    /// Panics on operand size mismatch.
    pub fn cws(&self, a: &PolyMem, b: &PolyMem) -> (PolyMem, u64) {
        assert_eq!(a.n(), b.n(), "operand size mismatch");
        let mut out = a.clone();
        for w in 0..a.words() {
            let (a0, a1) = a.read_word(w);
            let (b0, b1) = b.read_word(w);
            out.write_word(w, (self.modulus.sub(a0, b0), self.modulus.sub(a1, b1)));
        }
        (out, (a.n() / 2) as u64)
    }

    /// The Memory Rearrange instruction: bit-reversal permutation of the
    /// coefficients, one word read + one word write per cycle (the
    /// permutation crosses word boundaries so reads and writes cannot be
    /// paired, hence `n` cycles — matching the Table II cost model).
    pub fn rearrange(&self, mem: &mut PolyMem) -> u64 {
        let n = mem.n();
        let log_n = n.trailing_zeros();
        let mut coeffs = mem.coeffs().to_vec();
        for i in 0..n {
            let j = bit_reverse(i, log_n);
            if i < j {
                coeffs.swap(i, j);
            }
        }
        *mem = PolyMem::load(&coeffs);
        n as u64
    }
}

/// The paper's seven-RPAU array: RPAU `i` owns primes `i` and `i + 7` of
/// the 13-prime basis of `Q` (the last RPAU owns only `q_12`).
#[derive(Debug, Clone)]
pub struct RpauArray {
    lanes: Vec<ResidueLane>,
    rpaus: usize,
}

impl RpauArray {
    /// Builds the array for the full prime list (q primes then p primes).
    pub fn new(primes: &[u64], n: usize) -> Self {
        let rpaus = primes.len().div_ceil(2);
        RpauArray {
            lanes: primes.iter().map(|&q| ResidueLane::new(q, n)).collect(),
            rpaus,
        }
    }

    /// Number of physical RPAUs.
    pub fn rpaus(&self) -> usize {
        self.rpaus
    }

    /// Number of residue lanes (primes).
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// The lane for prime index `i`.
    pub fn lane(&self, i: usize) -> &ResidueLane {
        &self.lanes[i]
    }

    /// Which physical RPAU serves prime `i` (the §V-A1 pairing).
    pub fn rpau_of(&self, i: usize) -> usize {
        i % self.rpaus
    }

    /// How many sequential batches a `k`-residue operation needs: residues
    /// mapped to the same RPAU serialize (`⌈k / rpaus⌉`).
    pub fn batches(&self, k: usize) -> usize {
        k.div_ceil(self.rpaus)
    }

    /// Runs coefficient-wise multiplication across `k` residues,
    /// batching on the physical RPAUs; returns outputs and total cycles
    /// (parallel within a batch, sequential across batches).
    ///
    /// # Panics
    ///
    /// Panics if `a`/`b` have fewer rows than `k`.
    pub fn cwm_batched(&self, a: &[PolyMem], b: &[PolyMem], k: usize) -> (Vec<PolyMem>, u64) {
        assert!(a.len() >= k && b.len() >= k);
        let mut outs = Vec::with_capacity(k);
        let mut per_batch_max = vec![0u64; self.batches(k)];
        for i in 0..k {
            let (o, c) = self.lanes[i].cwm(&a[i], &b[i]);
            outs.push(o);
            let batch = i / self.rpaus;
            per_batch_max[batch] = per_batch_max[batch].max(c);
        }
        (outs, per_batch_max.iter().sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hefv_math::primes::ntt_primes;

    fn lane(n: usize) -> (ResidueLane, NttTable) {
        let q = ntt_primes(30, n, 1).unwrap()[0];
        let m = Modulus::new(q);
        (ResidueLane::new(q, n), NttTable::new(m, n).unwrap())
    }

    fn poly(n: usize, q: u64, seed: u64) -> Vec<u64> {
        (0..n as u64).map(|i| (i * seed + 3) % q).collect()
    }

    #[test]
    fn lane_ntt_matches_reference() {
        let n = 256;
        let (lane, table) = lane(n);
        let q = lane.modulus().value();
        let a = poly(n, q, 48271);
        let mut reference = a.clone();
        table.forward(&mut reference);
        let mut mem = PolyMem::load(&a);
        let cycles = lane.ntt(&mut mem, &table);
        assert_eq!(mem.coeffs(), &reference[..]);
        assert_eq!(cycles, (n / 4 * 8) as u64);
    }

    #[test]
    fn lane_cwm_uses_rtl_reduction_and_matches_barrett() {
        let n = 64;
        let (lane, _) = lane(n);
        let q = lane.modulus().value();
        let a = PolyMem::load(&poly(n, q, 7919));
        let b = PolyMem::load(&poly(n, q, 104729));
        let (out, cycles) = lane.cwm(&a, &b);
        for w in 0..out.words() {
            let (x0, x1) = out.read_word(w);
            let (a0, a1) = a.read_word(w);
            let (b0, b1) = b.read_word(w);
            assert_eq!(x0, lane.modulus().mul(a0, b0));
            assert_eq!(x1, lane.modulus().mul(a1, b1));
        }
        assert_eq!(cycles, (n / 2) as u64);
    }

    #[test]
    fn lane_mac_accumulates() {
        let n = 32;
        let (lane, _) = lane(n);
        let q = lane.modulus().value();
        let a = PolyMem::load(&poly(n, q, 11));
        let b = PolyMem::load(&poly(n, q, 13));
        let mut acc = PolyMem::load(&poly(n, q, 17));
        let orig = acc.clone();
        lane.cwm_acc(&mut acc, &a, &b);
        for w in 0..acc.words() {
            let m = lane.modulus();
            let expect0 = m.add(
                orig.read_word(w).0,
                m.mul(a.read_word(w).0, b.read_word(w).0),
            );
            assert_eq!(acc.read_word(w).0, expect0);
        }
    }

    #[test]
    fn lane_add_sub_inverse() {
        let n = 32;
        let (lane, _) = lane(n);
        let q = lane.modulus().value();
        let a = PolyMem::load(&poly(n, q, 23));
        let b = PolyMem::load(&poly(n, q, 29));
        let (s, _) = lane.cwa(&a, &b);
        let (back, _) = lane.cws(&s, &b);
        assert_eq!(back, a);
    }

    #[test]
    fn rearrange_is_involution_and_costs_n() {
        let n = 128;
        let (lane, _) = lane(n);
        let q = lane.modulus().value();
        let mut mem = PolyMem::load(&poly(n, q, 31));
        let orig = mem.clone();
        let cycles = lane.rearrange(&mut mem);
        assert_ne!(mem, orig);
        lane.rearrange(&mut mem);
        assert_eq!(mem, orig);
        assert_eq!(cycles, n as u64);
    }

    #[test]
    fn rearrange_then_schedule_ntt_equals_alg1_pipeline() {
        // Full RPAU flow: the coefficients transformed via the schedule
        // equal the reference regardless of rearrange round-trips.
        let n = 64;
        let (lane, table) = lane(n);
        let q = lane.modulus().value();
        let a = poly(n, q, 41);
        let mut m1 = PolyMem::load(&a);
        lane.rearrange(&mut m1);
        lane.rearrange(&mut m1);
        lane.ntt(&mut m1, &table);
        let mut reference = a;
        table.forward(&mut reference);
        assert_eq!(m1.coeffs(), &reference[..]);
    }

    #[test]
    fn array_pairing_matches_paper() {
        // 13 primes on 7 RPAUs: q_0 and q_6 share RPAU 0... wait — the
        // paper pairs (q_0,q_6)…(q_5,q_11) and q_12 alone; with i % 7 the
        // pairs are (q_0,q_7)…(q_5,q_12), q_6 alone. Both are valid
        // 2-to-1 mappings with one singleton; assert the structural
        // properties rather than the label choice.
        let primes = ntt_primes(30, 64, 13).unwrap();
        let arr = RpauArray::new(&primes, 64);
        assert_eq!(arr.rpaus(), 7);
        assert_eq!(arr.lanes(), 13);
        let mut load = [0; 7];
        for i in 0..13 {
            load[arr.rpau_of(i)] += 1;
        }
        assert!(load.iter().all(|&l| l <= 2));
        assert_eq!(load.iter().filter(|&&l| l == 1).count(), 1);
        assert_eq!(arr.batches(6), 1, "q basis in one batch");
        assert_eq!(arr.batches(13), 2, "Q basis in two batches");
    }

    #[test]
    fn batched_cwm_cycles_scale_with_batches() {
        let n = 64;
        let primes = ntt_primes(30, n, 13).unwrap();
        let arr = RpauArray::new(&primes, n);
        let a: Vec<PolyMem> = primes
            .iter()
            .map(|&q| PolyMem::load(&poly(n, q, 7)))
            .collect();
        let (_, one_batch) = arr.cwm_batched(&a, &a, 6);
        let (_, two_batches) = arr.cwm_batched(&a, &a, 13);
        assert_eq!(one_batch, (n / 2) as u64);
        assert_eq!(two_batches, 2 * (n / 2) as u64);
    }
}
