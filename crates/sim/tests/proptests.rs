//! Property-based tests of the simulator: the NTT schedule stays
//! conflict-free and functionally correct for every power-of-two size, the
//! DMA model is monotone, and the cost model scales sanely.

use hefv_math::ntt::NttTable;
use hefv_math::primes::ntt_prime;
use hefv_math::zq::Modulus;
use hefv_sim::bram::PolyMem;
use hefv_sim::clock::ClockConfig;
use hefv_sim::cost::{CostModel, Instr};
use hefv_sim::dma::DmaModel;
use hefv_sim::nttsched::{execute_forward, execute_inverse, NttSchedule};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn schedule_conflict_free_for_all_sizes(log_n in 3u32..13, depth in 1u64..32) {
        let n = 1usize << log_n;
        let auditor = NttSchedule::new(n).audit(depth);
        prop_assert!(auditor.is_clean(), "n={n} depth={depth}");
        prop_assert_eq!(auditor.total_reads(), (log_n as u64) * (n as u64) / 2);
    }

    #[test]
    fn schedule_ntt_matches_reference(log_n in 3u32..9, seed in any::<u64>()) {
        let n = 1usize << log_n;
        let q = ntt_prime(30, n, 0).unwrap();
        let table = NttTable::new(Modulus::new(q), n).unwrap();
        let mut st = seed;
        let coeffs: Vec<u64> = (0..n).map(|_| {
            st = st.wrapping_mul(6364136223846793005).wrapping_add(1);
            st % q
        }).collect();
        let mut reference = coeffs.clone();
        table.forward(&mut reference);
        let sched = NttSchedule::new(n);
        let mut mem = PolyMem::load(&coeffs);
        execute_forward(&sched, &mut mem, &table);
        prop_assert_eq!(mem.coeffs(), &reference[..]);
        // and the inverse brings it back
        execute_inverse(&sched, &mut mem, &table);
        prop_assert_eq!(mem.coeffs(), &coeffs[..]);
    }

    #[test]
    fn dma_monotone_in_bytes_and_chunks(
        bytes in 1usize..1_000_000,
        chunks in 1usize..64,
    ) {
        let m = DmaModel::default();
        let t = m.transfer_us(bytes, chunks);
        prop_assert!(t > 0.0);
        prop_assert!(m.transfer_us(bytes + 4096, chunks) > t);
        prop_assert!(m.transfer_us(bytes, chunks + 1) > t);
    }

    #[test]
    fn cost_model_monotone_in_n(log_n in 10u32..16) {
        let small = CostModel { n: 1 << log_n, ..CostModel::default() };
        let big = CostModel { n: 1 << (log_n + 1), ..CostModel::default() };
        for i in Instr::ALL {
            prop_assert!(
                big.datapath_cycles(i) > small.datapath_cycles(i),
                "{}", i.name()
            );
        }
    }

    #[test]
    fn clock_conversions_consistent(cycles in 1u64..100_000_000) {
        let c = ClockConfig::default();
        let us = c.fpga_cycles_to_us(cycles);
        let arm = c.fpga_to_arm_cycles(cycles);
        // arm cycles = 6x fpga cycles at the paper's clocks
        prop_assert_eq!(arm, cycles * 6);
        prop_assert!((c.us_to_arm_cycles(us) as i64 - arm as i64).abs() <= 1);
    }

    #[test]
    fn more_lift_cores_never_slower(cores in 1usize..8) {
        let base = CostModel { lift_cores: cores, ..CostModel::default() };
        let more = CostModel { lift_cores: cores + 1, ..CostModel::default() };
        prop_assert!(more.datapath_cycles(Instr::Lift) <= base.datapath_cycles(Instr::Lift));
    }
}
