//! Property tests for the wire format and the Galois machinery.

use hefv_core::galois::{apply_automorphism, apply_galois, GaloisKey};
use hefv_core::prelude::*;
use hefv_core::wire::{decode_ciphertext, encode_ciphertext};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

struct Fix {
    ctx: FvContext,
    sk: SecretKey,
    pk: PublicKey,
}

fn fix() -> &'static Fix {
    static F: OnceLock<Fix> = OnceLock::new();
    F.get_or_init(|| {
        let ctx = FvContext::new(FvParams::insecure_toy()).unwrap();
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        let (sk, pk, _) = keygen(&ctx, &mut rng);
        Fix { ctx, sk, pk }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn wire_roundtrips_any_ciphertext(msg in prop::collection::vec(0u64..16, 1..32), seed in any::<u64>()) {
        let f = fix();
        let mut rng = StdRng::seed_from_u64(seed);
        let pt = Plaintext::new(msg, f.ctx.params().t, f.ctx.params().n);
        let ct = encrypt(&f.ctx, &f.pk, &pt, &mut rng);
        let bytes = encode_ciphertext(&ct);
        let back = decode_ciphertext(&f.ctx, &bytes).unwrap();
        prop_assert_eq!(&back, &ct);
        prop_assert_eq!(decrypt(&f.ctx, &f.sk, &back), pt);
    }

    #[test]
    fn wire_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..4096)) {
        let f = fix();
        // Any byte soup must be cleanly rejected or decoded — no panic.
        let _ = decode_ciphertext(&f.ctx, &bytes);
    }

    #[test]
    fn wire_rejects_any_truncation(msg in prop::collection::vec(0u64..16, 1..8), cut in 1usize..64, seed in any::<u64>()) {
        let f = fix();
        let mut rng = StdRng::seed_from_u64(seed);
        let pt = Plaintext::new(msg, f.ctx.params().t, f.ctx.params().n);
        let ct = encrypt(&f.ctx, &f.pk, &pt, &mut rng);
        let mut bytes = encode_ciphertext(&ct);
        let cut = cut.min(bytes.len() - 1);
        bytes.truncate(bytes.len() - cut);
        prop_assert!(decode_ciphertext(&f.ctx, &bytes).is_err());
    }

    #[test]
    fn automorphism_group_law_holds(ga in 0usize..32, gb in 0usize..32, seed in any::<u64>()) {
        let f = fix();
        let n = f.ctx.params().n;
        let ga = 2 * ga + 1; // odd exponents
        let gb = 2 * gb + 1;
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let coeffs: Vec<i64> = (0..n).map(|_| rng.gen_range(-8i64..8)).collect();
        let p = RnsPoly::from_signed(&coeffs, f.ctx.base_q());
        let lhs = apply_automorphism(&f.ctx, &apply_automorphism(&f.ctx, &p, gb), ga);
        let rhs = apply_automorphism(&f.ctx, &p, (ga * gb) % (2 * n));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn automorphism_preserves_addition(seed in any::<u64>()) {
        let f = fix();
        let n = f.ctx.params().n;
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let a: Vec<i64> = (0..n).map(|_| rng.gen_range(-8i64..8)).collect();
        let b: Vec<i64> = (0..n).map(|_| rng.gen_range(-8i64..8)).collect();
        let pa = RnsPoly::from_signed(&a, f.ctx.base_q());
        let pb = RnsPoly::from_signed(&b, f.ctx.base_q());
        let g = 5;
        let lhs = apply_automorphism(&f.ctx, &pa.add(&pb, f.ctx.base_q()), g);
        let rhs = apply_automorphism(&f.ctx, &pa, g)
            .add(&apply_automorphism(&f.ctx, &pb, g), f.ctx.base_q());
        prop_assert_eq!(lhs, rhs);
    }
}

#[test]
fn rotated_ciphertext_composes_with_homomorphic_add() {
    // σ_g(ct_a + ct_b) decrypts to σ_g(m_a + m_b): rotation and addition
    // commute through the encrypted domain.
    let ctx = FvContext::new(FvParams::insecure_medium()).unwrap();
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    let (sk, pk, _) = keygen(&ctx, &mut rng);
    let g = 3;
    let key = GaloisKey::generate(&ctx, &sk, g, &mut rng);
    let pa = Plaintext::new(vec![1, 0, 1], 2, ctx.params().n);
    let pb = Plaintext::new(vec![0, 1, 1], 2, ctx.params().n);
    let ca = encrypt(&ctx, &pk, &pa, &mut rng);
    let cb = encrypt(&ctx, &pk, &pb, &mut rng);
    let lhs = apply_galois(&ctx, &add(&ctx, &ca, &cb), &key);
    let rhs = add(
        &ctx,
        &apply_galois(&ctx, &ca, &key),
        &apply_galois(&ctx, &cb, &key),
    );
    assert_eq!(decrypt(&ctx, &sk, &lhs), decrypt(&ctx, &sk, &rhs));
}
