//! Property tests for the wire format and the Galois machinery.

use hefv_core::galois::{apply_automorphism, apply_galois, GaloisKey};
use hefv_core::prelude::*;
use hefv_core::wire::{decode_ciphertext, encode_ciphertext};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

struct Fix {
    ctx: FvContext,
    sk: SecretKey,
    pk: PublicKey,
}

fn fix() -> &'static Fix {
    static F: OnceLock<Fix> = OnceLock::new();
    F.get_or_init(|| {
        let ctx = FvContext::new(FvParams::insecure_toy()).unwrap();
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        let (sk, pk, _) = keygen(&ctx, &mut rng);
        Fix { ctx, sk, pk }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn wire_roundtrips_any_ciphertext(msg in prop::collection::vec(0u64..16, 1..32), seed in any::<u64>()) {
        let f = fix();
        let mut rng = StdRng::seed_from_u64(seed);
        let pt = Plaintext::new(msg, f.ctx.params().t, f.ctx.params().n);
        let ct = encrypt(&f.ctx, &f.pk, &pt, &mut rng);
        let bytes = encode_ciphertext(&ct);
        let back = decode_ciphertext(&f.ctx, &bytes).unwrap();
        prop_assert_eq!(&back, &ct);
        prop_assert_eq!(decrypt(&f.ctx, &f.sk, &back), pt);
    }

    #[test]
    fn wire_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..4096)) {
        let f = fix();
        // Any byte soup must be cleanly rejected or decoded — no panic.
        let _ = decode_ciphertext(&f.ctx, &bytes);
    }

    #[test]
    fn wire_rejects_any_truncation(msg in prop::collection::vec(0u64..16, 1..8), cut in 1usize..64, seed in any::<u64>()) {
        let f = fix();
        let mut rng = StdRng::seed_from_u64(seed);
        let pt = Plaintext::new(msg, f.ctx.params().t, f.ctx.params().n);
        let ct = encrypt(&f.ctx, &f.pk, &pt, &mut rng);
        let mut bytes = encode_ciphertext(&ct);
        let cut = cut.min(bytes.len() - 1);
        bytes.truncate(bytes.len() - cut);
        prop_assert!(decode_ciphertext(&f.ctx, &bytes).is_err());
    }

    #[test]
    fn automorphism_group_law_holds(ga in 0usize..32, gb in 0usize..32, seed in any::<u64>()) {
        let f = fix();
        let n = f.ctx.params().n;
        let ga = 2 * ga + 1; // odd exponents
        let gb = 2 * gb + 1;
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let coeffs: Vec<i64> = (0..n).map(|_| rng.gen_range(-8i64..8)).collect();
        let p = RnsPoly::from_signed(&coeffs, f.ctx.base_q());
        let lhs = apply_automorphism(&f.ctx, &apply_automorphism(&f.ctx, &p, gb), ga);
        let rhs = apply_automorphism(&f.ctx, &p, (ga * gb) % (2 * n));
        prop_assert_eq!(lhs, rhs);
    }

    /// The PR-5 acceptance pin: across random `(q, n, exponent)` — prime
    /// widths 30/31 bits (all `FvContext` supports: the `Lift`/`Scale`
    /// reciprocal ROMs are 30-bit-lane hardware), ring degrees 16..128,
    /// digit counts 1..7 — a hoisted rotation is **bit-identical** to
    /// `apply_galois`, and both match an independently evaluated
    /// decompose → NTT-permute → pointwise-SoP oracle. At 31-bit primes
    /// with k ≥ 4 the dot exceeds `u64`, so the draws cover both the
    /// narrow u64-accumulating SoP fast path and the wide u128 fallback.
    #[test]
    fn hoisted_rotation_bit_identical_to_apply_galois(
        bits in 30u32..32,
        log_n in 4u32..8,
        k in 1usize..7,
        g_raw in 0usize..256,
        seed in any::<u64>(),
    ) {
        use hefv_core::galois::{apply_automorphism_ntt, HoistedCiphertext};
        use hefv_core::rnspoly::Domain;
        use hefv_math::primes::ntt_primes;

        let n = 1usize << log_n;
        let g = (2 * g_raw + 1) % (2 * n);
        // k ciphertext primes plus one extension prime of the same width.
        let Ok(ps) = ntt_primes(bits, n, k + 1) else {
            // Some (bits, n) pools are too small; skip such draws.
            return Ok(());
        };
        let params = FvParams {
            name: "prop".into(),
            n,
            q_primes: ps[..k].to_vec(),
            p_primes: ps[k..].to_vec(),
            t: 2,
            sigma: 3.2,
        };
        let Ok(ctx) = FvContext::new(params) else { return Ok(()); };
        let mut rng = StdRng::seed_from_u64(seed);
        let (sk, pk, _) = keygen(&ctx, &mut rng);
        let key = GaloisKey::generate(&ctx, &sk, g, &mut rng);
        let pt = Plaintext::new(vec![1, 0, 1, 1], 2, n);
        let ct = encrypt(&ctx, &pk, &pt, &mut rng);

        // One hoist, rotated — must equal the one-shot path bit for bit.
        let hoisted = HoistedCiphertext::new(&ctx, &ct);
        let via_hoist = hoisted.rotate(&ctx, &key);
        let via_apply = apply_galois(&ctx, &ct, &key);
        prop_assert_eq!(&via_hoist, &via_apply);

        // Independent oracle through different code: materialize each
        // permuted digit with the NTT-domain automorphism and run the SoP
        // with the generic pointwise kernels.
        let basis = ctx.base_q();
        let kk = ctx.params().k();
        let mut acc0 = RnsPoly::zero_in(kk, n, Domain::Ntt);
        let mut acc1 = RnsPoly::zero_in(kk, n, Domain::Ntt);
        for i in 0..kk {
            let mut digit = RnsPoly::from_flat(
                ctx.spread_digit(ct.c1().row(i)),
                kk,
                Domain::Coefficient,
            );
            digit.ntt_forward(ctx.ntt_q());
            let permuted = apply_automorphism_ntt(&ctx, &digit, g);
            acc0.pointwise_mul_acc(&permuted, key.ksk0(i), basis);
            acc1.pointwise_mul_acc(&permuted, key.ksk1(i), basis);
        }
        acc0.ntt_inverse(ctx.ntt_q());
        acc1.ntt_inverse(ctx.ntt_q());
        let c0 = apply_automorphism(&ctx, ct.c0(), g).add(&acc0, basis);
        prop_assert_eq!(via_apply.c0(), &c0);
        prop_assert_eq!(via_apply.c1(), &acc1);
        // And the rotation decrypts to the automorphism of the plaintext.
        let _ = decrypt(&ctx, &sk, &via_hoist);
    }

    #[test]
    fn automorphism_preserves_addition(seed in any::<u64>()) {
        let f = fix();
        let n = f.ctx.params().n;
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let a: Vec<i64> = (0..n).map(|_| rng.gen_range(-8i64..8)).collect();
        let b: Vec<i64> = (0..n).map(|_| rng.gen_range(-8i64..8)).collect();
        let pa = RnsPoly::from_signed(&a, f.ctx.base_q());
        let pb = RnsPoly::from_signed(&b, f.ctx.base_q());
        let g = 5;
        let lhs = apply_automorphism(&f.ctx, &pa.add(&pb, f.ctx.base_q()), g);
        let rhs = apply_automorphism(&f.ctx, &pa, g)
            .add(&apply_automorphism(&f.ctx, &pb, g), f.ctx.base_q());
        prop_assert_eq!(lhs, rhs);
    }
}

#[test]
fn rotated_ciphertext_composes_with_homomorphic_add() {
    // σ_g(ct_a + ct_b) decrypts to σ_g(m_a + m_b): rotation and addition
    // commute through the encrypted domain.
    let ctx = FvContext::new(FvParams::insecure_medium()).unwrap();
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    let (sk, pk, _) = keygen(&ctx, &mut rng);
    let g = 3;
    let key = GaloisKey::generate(&ctx, &sk, g, &mut rng);
    let pa = Plaintext::new(vec![1, 0, 1], 2, ctx.params().n);
    let pb = Plaintext::new(vec![0, 1, 1], 2, ctx.params().n);
    let ca = encrypt(&ctx, &pk, &pa, &mut rng);
    let cb = encrypt(&ctx, &pk, &pb, &mut rng);
    let lhs = apply_galois(&ctx, &add(&ctx, &ca, &cb), &key);
    let rhs = add(
        &ctx,
        &apply_galois(&ctx, &ca, &key),
        &apply_galois(&ctx, &cb, &key),
    );
    assert_eq!(decrypt(&ctx, &sk, &lhs), decrypt(&ctx, &sk, &rhs));
}
