//! Property-based tests of the FV scheme: correctness of encryption and
//! homomorphic evaluation over random messages, and agreement between the
//! traditional-CRT and HPS backends.

use hefv_core::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

struct Fixture {
    ctx: FvContext,
    sk: SecretKey,
    pk: PublicKey,
    rlk: RelinKey,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let ctx = FvContext::new(FvParams::insecure_toy()).unwrap();
        let mut rng = StdRng::seed_from_u64(0xF1F1);
        let (sk, pk, rlk) = keygen(&ctx, &mut rng);
        Fixture { ctx, sk, pk, rlk }
    })
}

fn msg_strategy() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..16, 1..24)
}

fn poly_mul_mod_t(a: &[u64], b: &[u64], t: u64, n: usize) -> Vec<u64> {
    // negacyclic product in R_t
    let mut out = vec![0i128; n];
    for (i, &x) in a.iter().enumerate() {
        for (j, &y) in b.iter().enumerate() {
            let k = (i + j) % n;
            let sign = if i + j >= n { -1i128 } else { 1 };
            out[k] += sign * (x as i128) * (y as i128);
        }
    }
    out.iter()
        .map(|&v| v.rem_euclid(t as i128) as u64)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn encrypt_decrypt_roundtrip(msg in msg_strategy(), seed in any::<u64>()) {
        let f = fixture();
        let t = f.ctx.params().t;
        let n = f.ctx.params().n;
        let pt = Plaintext::new(msg, t, n);
        let mut rng = StdRng::seed_from_u64(seed);
        let ct = encrypt(&f.ctx, &f.pk, &pt, &mut rng);
        prop_assert_eq!(decrypt(&f.ctx, &f.sk, &ct), pt);
    }

    #[test]
    fn homomorphic_add_is_plain_add(a in msg_strategy(), b in msg_strategy(), seed in any::<u64>()) {
        let f = fixture();
        let t = f.ctx.params().t;
        let n = f.ctx.params().n;
        let mut rng = StdRng::seed_from_u64(seed);
        let ca = encrypt(&f.ctx, &f.pk, &Plaintext::new(a.clone(), t, n), &mut rng);
        let cb = encrypt(&f.ctx, &f.pk, &Plaintext::new(b.clone(), t, n), &mut rng);
        let got = decrypt(&f.ctx, &f.sk, &add(&f.ctx, &ca, &cb));
        let mut expect = vec![0u64; n];
        for (i, &x) in a.iter().enumerate() { expect[i] = (expect[i] + x) % t; }
        for (i, &x) in b.iter().enumerate() { expect[i] = (expect[i] + x) % t; }
        prop_assert_eq!(got.coeffs(), &expect[..]);
    }

    #[test]
    fn homomorphic_mul_is_ring_product(a in msg_strategy(), b in msg_strategy(), seed in any::<u64>()) {
        let f = fixture();
        let t = f.ctx.params().t;
        let n = f.ctx.params().n;
        let mut rng = StdRng::seed_from_u64(seed);
        let ca = encrypt(&f.ctx, &f.pk, &Plaintext::new(a.clone(), t, n), &mut rng);
        let cb = encrypt(&f.ctx, &f.pk, &Plaintext::new(b.clone(), t, n), &mut rng);
        let got = decrypt(&f.ctx, &f.sk, &mul(&f.ctx, &ca, &cb, &f.rlk, Backend::default()));
        prop_assert_eq!(got.coeffs(), &poly_mul_mod_t(&a, &b, t, n)[..]);
    }

    #[test]
    fn backends_agree_bitwise(a in msg_strategy(), seed in any::<u64>()) {
        let f = fixture();
        let t = f.ctx.params().t;
        let n = f.ctx.params().n;
        let mut rng = StdRng::seed_from_u64(seed);
        let ca = encrypt(&f.ctx, &f.pk, &Plaintext::new(a, t, n), &mut rng);
        let trad = mul(&f.ctx, &ca, &ca, &f.rlk, Backend::Traditional);
        let hps_f = mul(&f.ctx, &ca, &ca, &f.rlk, Backend::Hps(HpsPrecision::F64));
        let hps_x = mul(&f.ctx, &ca, &ca, &f.rlk, Backend::Hps(HpsPrecision::Fixed));
        prop_assert_eq!(&trad, &hps_f);
        prop_assert_eq!(&trad, &hps_x);
    }

    #[test]
    fn sub_of_self_is_zero(a in msg_strategy(), seed in any::<u64>()) {
        let f = fixture();
        let t = f.ctx.params().t;
        let n = f.ctx.params().n;
        let mut rng = StdRng::seed_from_u64(seed);
        let ca = encrypt(&f.ctx, &f.pk, &Plaintext::new(a, t, n), &mut rng);
        let got = decrypt(&f.ctx, &f.sk, &sub(&f.ctx, &ca, &ca));
        prop_assert!(got.coeffs().iter().all(|&c| c == 0));
    }

    #[test]
    fn mul_plain_matches_ring_product(a in msg_strategy(), b in msg_strategy(), seed in any::<u64>()) {
        let f = fixture();
        let t = f.ctx.params().t;
        let n = f.ctx.params().n;
        let mut rng = StdRng::seed_from_u64(seed);
        let ca = encrypt(&f.ctx, &f.pk, &Plaintext::new(a.clone(), t, n), &mut rng);
        let pb = Plaintext::new(b.clone(), t, n);
        let got = decrypt(&f.ctx, &f.sk, &mul_plain(&f.ctx, &ca, &pb));
        prop_assert_eq!(got.coeffs(), &poly_mul_mod_t(&a, &b, t, n)[..]);
    }

    #[test]
    fn integer_encoder_is_homomorphic_through_fv(x in -300i64..300, y in -300i64..300, seed in any::<u64>()) {
        let f = fixture();
        let enc = IntegerEncoder::new(f.ctx.params().t, f.ctx.params().n);
        let mut rng = StdRng::seed_from_u64(seed);
        let cx = encrypt(&f.ctx, &f.pk, &enc.encode(x), &mut rng);
        let cy = encrypt(&f.ctx, &f.pk, &enc.encode(y), &mut rng);
        let sum = decrypt(&f.ctx, &f.sk, &add(&f.ctx, &cx, &cy));
        prop_assert_eq!(enc.decode(&sum), x + y);
    }
}
