//! Failure injection: the noise threshold (§II-A "beyond which further
//! homomorphic evaluations would result in decryption failures") is a real
//! cliff, not an abstraction — drive ciphertexts over it and watch
//! decryption break, and check the measurement/model agree about where.

use hefv_core::noise::{measure, NoiseModel};
use hefv_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deliberately shallow parameter set: the toy ring with only two
/// 30-bit primes (60-bit q), where the 2^30-word relinearization noise
/// eats the budget within a few levels.
fn shallow_params() -> FvParams {
    let mut p = FvParams::insecure_toy();
    p.q_primes.truncate(2);
    p.t = 4;
    p
}

#[test]
fn multiplication_chain_hits_the_noise_cliff() {
    let ctx = FvContext::new(shallow_params()).unwrap();
    let mut rng = StdRng::seed_from_u64(13);
    let (sk, pk, rlk) = keygen(&ctx, &mut rng);
    let one = encrypt(
        &ctx,
        &pk,
        &Plaintext::new(vec![1], ctx.params().t, ctx.params().n),
        &mut rng,
    );

    let mut acc = one.clone();
    let mut failed_at = None;
    for level in 1..=12 {
        acc = mul(&ctx, &acc, &one, &rlk, Backend::default());
        let budget = measure(&ctx, &sk, &acc).budget_bits;
        let dec = decrypt(&ctx, &sk, &acc);
        let correct = dec.coeffs()[0] == 1 && dec.coeffs()[1..].iter().all(|&c| c == 0);
        if budget > 2.0 {
            assert!(
                correct,
                "level {level}: positive budget ({budget:.1}) must decrypt"
            );
        }
        // Once the noise wraps, the measured magnitude saturates at q/2
        // and the budget pins to ~0 — that is the cliff.
        if budget <= 0.5 {
            assert!(
                !correct,
                "level {level}: budget {budget:.1} — decryption should have failed"
            );
            failed_at = Some(level);
            break;
        }
    }
    let failed_at = failed_at.expect("the chain must exhaust a 60-bit modulus within 12 levels");
    assert!(
        failed_at >= 2,
        "at least one multiplication must succeed first (failed at {failed_at})"
    );
}

#[test]
fn model_predicts_the_cliff_conservatively() {
    // The worst-case model's supported depth must not exceed the measured
    // failure level (it is a lower bound on capability).
    let ctx = FvContext::new(shallow_params()).unwrap();
    let model = NoiseModel::new(&ctx);
    let mut rng = StdRng::seed_from_u64(14);
    let (sk, pk, rlk) = keygen(&ctx, &mut rng);
    let one = encrypt(
        &ctx,
        &pk,
        &Plaintext::new(vec![1], ctx.params().t, ctx.params().n),
        &mut rng,
    );
    let mut acc = one.clone();
    let mut measured_depth = 0;
    for _ in 1..=12 {
        acc = mul(&ctx, &acc, &one, &rlk, Backend::default());
        if decrypt(&ctx, &sk, &acc).coeffs()[0] == 1 && measure(&ctx, &sk, &acc).budget_bits > 0.0 {
            measured_depth += 1;
        } else {
            break;
        }
    }
    assert!(
        model.supported_depth() <= measured_depth,
        "model depth {} must lower-bound measured depth {measured_depth}",
        model.supported_depth()
    );
}

#[test]
fn oversized_plaintext_coefficients_wrap_not_corrupt() {
    // Values ≥ t must reduce mod t at encode time, never poison the
    // ciphertext.
    let ctx = FvContext::new(FvParams::insecure_toy()).unwrap();
    let mut rng = StdRng::seed_from_u64(15);
    let (sk, pk, _) = keygen(&ctx, &mut rng);
    let t = ctx.params().t;
    let pt = Plaintext::new(vec![t, t + 1, 3 * t + 2], t, ctx.params().n);
    let ct = encrypt(&ctx, &pk, &pt, &mut rng);
    assert_eq!(decrypt(&ctx, &sk, &ct).coeffs()[..3], [0, 1, 2]);
}

#[test]
fn mismatched_keys_decrypt_to_garbage() {
    // Decrypting under the wrong secret is (overwhelmingly) wrong — the
    // scheme's basic secrecy sanity check.
    let ctx = FvContext::new(FvParams::insecure_medium()).unwrap();
    let mut rng = StdRng::seed_from_u64(16);
    let (_, pk, _) = keygen(&ctx, &mut rng);
    let (other_sk, _, _) = keygen(&ctx, &mut rng);
    let pt = Plaintext::new(vec![1, 0, 1, 1, 0, 1], ctx.params().t, ctx.params().n);
    let ct = encrypt(&ctx, &pk, &pt, &mut rng);
    assert_ne!(decrypt(&ctx, &other_sk, &ct), pt);
}
