//! Asserts the arena-backed hot path's headline property: once the
//! per-worker [`Arena`] is warm, steady-state `Mult` and hoisted-rotation
//! evaluation perform **zero heap allocation** — every `k·n` buffer is
//! recycled, the math kernels run on stack scratch, and the automorphism
//! tables are cached.
//!
//! A counting `#[global_allocator]` wraps the system allocator; this file
//! deliberately holds a single `#[test]` so no concurrent test pollutes
//! the counters.

use hefv_core::galois::{GaloisKey, GaloisKeySet, HoistedCiphertext};
use hefv_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn snapshot() -> (u64, u64) {
    (
        ALLOCATIONS.load(Ordering::Relaxed),
        BYTES.load(Ordering::Relaxed),
    )
}

#[test]
fn warm_arena_mult_and_rotate_allocate_zero_bytes() {
    let ctx = FvContext::new(FvParams::insecure_toy()).unwrap();
    let mut rng = StdRng::seed_from_u64(0xA110C);
    let (sk, pk, rlk) = keygen(&ctx, &mut rng);
    let key = GaloisKey::generate(&ctx, &sk, 3, &mut rng);
    let key2 = GaloisKey::generate(&ctx, &sk, 5, &mut rng);
    let slot_keys = GaloisKeySet::for_slot_sum(&ctx, &sk, &mut rng);
    let n = ctx.params().n;
    let pa = Plaintext::new(vec![1, 0, 1], ctx.params().t, n);
    let pb = Plaintext::new(vec![1, 1], ctx.params().t, n);
    let ca = encrypt(&ctx, &pk, &pa, &mut rng);
    let cb = encrypt(&ctx, &pk, &pb, &mut rng);
    let backend = Backend::Hps(HpsPrecision::Fixed);

    let arena = Arena::new();
    let steady_iteration = |arena: &Arena| {
        // One relinearized multiplication...
        let prod = hefv_core::eval::mul_in(&ctx, &ca, &cb, &rlk, backend, arena);
        // ...one hoisted decomposition serving two rotations...
        let hoisted = HoistedCiphertext::new_in(&ctx, &prod, arena);
        let r1 = hoisted.rotate_in(&ctx, &key, arena);
        let r2 = hoisted.rotate_in(&ctx, &key2, arena);
        hoisted.recycle(arena);
        // ...and a full hoisted slot sum.
        let summed = hefv_core::galois::sum_slots_in(&ctx, &r1, &slot_keys, arena);
        // Recycle every output: the steady-state loop is closed.
        arena.recycle_ciphertext(prod);
        arena.recycle_ciphertext(r1);
        arena.recycle_ciphertext(r2);
        arena.recycle_ciphertext(summed);
    };

    // Warm-up: populate the arena pools, the automorphism-table cache and
    // any lazily sized internals.
    for _ in 0..3 {
        steady_iteration(&arena);
    }

    let (allocs_before, bytes_before) = snapshot();
    for _ in 0..5 {
        steady_iteration(&arena);
    }
    let (allocs_after, bytes_after) = snapshot();

    assert_eq!(
        allocs_after - allocs_before,
        0,
        "steady-state Mult/rotate hot path must not allocate \
         ({} allocations, {} bytes over 5 iterations)",
        allocs_after - allocs_before,
        bytes_after - bytes_before,
    );
    assert_eq!(bytes_after - bytes_before, 0, "zero bytes at steady state");

    // Sanity: the evaluation above actually computes — decrypt one result.
    let check = hefv_core::eval::mul_in(&ctx, &ca, &cb, &rlk, backend, &arena);
    let expect = decrypt(&ctx, &sk, &mul(&ctx, &ca, &cb, &rlk, backend));
    assert_eq!(decrypt(&ctx, &sk, &check), expect);
}
