//! The eval scratch arena: a pool of recycled flat limb buffers.
//!
//! Steady-state homomorphic evaluation touches the same buffer shapes over
//! and over — `k·n` ciphertext polynomials, `(k+l)·n` lifted operands,
//! `k·n` digit polynomials — and the paper's coprocessor never allocates at
//! all: every intermediate lives in pre-sized BRAM. [`Arena`] is the
//! software analogue: a thread-safe pool of `Vec<u64>` buffers that
//! `tensor`/`relinearize`/`apply_galois`/hoisting draw from and return to,
//! so after a warm-up evaluation the hot path performs **zero heap
//! allocation** (asserted by `tests/alloc_steady_state.rs` with a counting
//! global allocator).
//!
//! The pool is deliberately simple: a mutex-guarded stack of buffers,
//! **bounded** by [`ArenaLimits`] along two axes per pool — a buffer
//! *count* high-water mark and a pooled-*bytes* high-water mark — plus a
//! per-buffer size ceiling: [`Arena::put`] drops a buffer instead of
//! pooling it when either mark is reached or the single buffer is
//! oversized, so recycling more than you take (e.g. an engine worker
//! feeding every job's operand ciphertexts back) cannot grow memory
//! without bound, and one freak allocation cannot pin megabytes in the
//! pool forever. Dropped returns and current occupancy are counted and
//! exposed via [`Arena::stats`] (the engine surfaces them as gauges).
//! The lock is uncontended in the common per-job usage (one arena per
//! engine worker) and is taken a handful of times per evaluation — noise
//! next to a single row NTT. Pooled buffers keep whatever capacity they
//! grew to, so one arena serving mixed shapes converges to the largest
//! working set and stays there.

use crate::rnspoly::{Domain, RnsPoly};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// High-water marks for an [`Arena`]'s recycling pools. Each of the two
/// pools (64-bit and 32-bit buffers) is bounded independently; the whole
/// arena therefore retains at most `2 × max_total_bytes`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaLimits {
    /// Maximum buffers kept per pool (≥ 1 enforced at construction).
    pub max_buffers: usize,
    /// Maximum bytes of backing capacity kept per pool; a return that
    /// would push the pool past this mark is dropped.
    pub max_total_bytes: usize,
    /// Per-buffer ceiling: a returned buffer whose backing capacity
    /// exceeds this many bytes is dropped outright, so one oversized
    /// allocation cannot monopolize the pool.
    pub max_buffer_bytes: usize,
}

impl Default for ArenaLimits {
    fn default() -> Self {
        ArenaLimits {
            max_buffers: Arena::DEFAULT_CAPACITY,
            max_total_bytes: Arena::DEFAULT_MAX_TOTAL_BYTES,
            max_buffer_bytes: Arena::DEFAULT_MAX_BUFFER_BYTES,
        }
    }
}

/// Point-in-time occupancy of an arena, aggregated across both pools
/// (see [`Arena::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Buffers currently held in the pools.
    pub pooled_buffers: u64,
    /// Bytes of backing capacity currently held in the pools.
    pub pooled_bytes: u64,
    /// Cumulative returns dropped by any [`ArenaLimits`] bound.
    pub dropped: u64,
}

/// One bounded stack of recyclable buffers plus its byte accounting.
#[derive(Debug, Default)]
struct Pool<T> {
    bufs: Vec<Vec<T>>,
    bytes: usize,
}

/// A recycling pool of flat `u64` buffers (see the module docs).
///
/// `Arena` is `Send + Sync`; clones of buffers never escape — callers get
/// owned `Vec<u64>`/[`RnsPoly`] values and hand them back with
/// [`Arena::put`]/[`Arena::recycle`].
#[derive(Debug)]
pub struct Arena {
    pool: Mutex<Pool<u64>>,
    /// Separate pool for the 32-bit buffers of the narrow key-switch SoP
    /// fast path (transposed hoisted digits).
    pool32: Mutex<Pool<u32>>,
    limits: ArenaLimits,
    /// Returns dropped because a limit was reached (telemetry).
    dropped: AtomicU64,
}

impl Default for Arena {
    fn default() -> Self {
        Arena::new()
    }
}

impl Arena {
    /// Default bound on pooled buffers per pool. Generously above the
    /// deepest single-evaluation working set (a `Mult` holds ~12 live
    /// buffers; a hoisted slot sum fewer), so the hot path never misses,
    /// while the worst case stays around `32 × (k+l)·n` words.
    pub const DEFAULT_CAPACITY: usize = 32;

    /// Default per-pool pooled-bytes high-water mark (64 MiB) — roughly
    /// 4× the full-parameter `Mult` working set, so steady-state traffic
    /// never trips it.
    pub const DEFAULT_MAX_TOTAL_BYTES: usize = 64 << 20;

    /// Default single-buffer ceiling (8 MiB): an order of magnitude above
    /// the largest hot-path buffer at the paper's parameters
    /// (`(k+l)·n = 13 × 4096` words ≈ 416 KiB).
    pub const DEFAULT_MAX_BUFFER_BYTES: usize = 8 << 20;

    /// An empty arena (buffers are created on first use) with the default
    /// pool bounds.
    pub fn new() -> Self {
        Arena::with_limits(ArenaLimits::default())
    }

    /// An empty arena keeping at most `capacity` buffers per pool (≥ 1),
    /// with the default byte bounds.
    pub fn with_capacity(capacity: usize) -> Self {
        Arena::with_limits(ArenaLimits {
            max_buffers: capacity,
            ..ArenaLimits::default()
        })
    }

    /// An empty arena with explicit high-water marks (buffer count is
    /// clamped to ≥ 1).
    pub fn with_limits(limits: ArenaLimits) -> Self {
        Arena {
            pool: Mutex::new(Pool::default()),
            pool32: Mutex::new(Pool::default()),
            limits: ArenaLimits {
                max_buffers: limits.max_buffers.max(1),
                ..limits
            },
            dropped: AtomicU64::new(0),
        }
    }

    /// The configured high-water marks.
    pub fn limits(&self) -> ArenaLimits {
        self.limits
    }

    /// Pools `buf` if every limit allows it; counts a drop otherwise.
    /// Shared by both element widths — `byte_cap` is the buffer's backing
    /// capacity in bytes.
    fn put_bounded<T>(&self, pool: &Mutex<Pool<T>>, buf: Vec<T>, byte_cap: usize) {
        if byte_cap == 0 {
            return;
        }
        if byte_cap <= self.limits.max_buffer_bytes {
            let mut pool = pool.lock().unwrap();
            if pool.bufs.len() < self.limits.max_buffers
                && pool.bytes + byte_cap <= self.limits.max_total_bytes
            {
                pool.bytes += byte_cap;
                pool.bufs.push(buf);
                return;
            }
        }
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a buffer of exactly `len` elements with **unspecified
    /// contents** (callers that overwrite every element skip the zeroing
    /// pass). Reuses the pooled buffer with the largest capacity when one
    /// exists, growing it if needed.
    pub fn take(&self, len: usize) -> Vec<u64> {
        let mut buf = {
            let mut pool = self.pool.lock().unwrap();
            let buf = pool.bufs.pop().unwrap_or_default();
            pool.bytes -= buf.capacity() * size_of::<u64>();
            buf
        };
        // `resize` only writes when growing past the current length; a
        // recycled buffer of the right size costs nothing here.
        buf.resize(len, 0);
        buf
    }

    /// Takes a buffer of `len` zeros (for accumulators).
    pub fn take_zeroed(&self, len: usize) -> Vec<u64> {
        let mut buf = self.take(len);
        buf.fill(0);
        buf
    }

    /// Returns a buffer to the pool; dropped instead (and counted in
    /// [`Arena::stats`]) when any [`ArenaLimits`] bound — buffer count,
    /// pooled bytes, or per-buffer size — would be exceeded.
    pub fn put(&self, buf: Vec<u64>) {
        let byte_cap = buf.capacity() * size_of::<u64>();
        self.put_bounded(&self.pool, buf, byte_cap);
    }

    /// Takes a 32-bit buffer of exactly `len` elements with unspecified
    /// contents (the narrow-SoP digit scratch).
    pub fn take32(&self, len: usize) -> Vec<u32> {
        let mut buf = {
            let mut pool = self.pool32.lock().unwrap();
            let buf = pool.bufs.pop().unwrap_or_default();
            pool.bytes -= buf.capacity() * size_of::<u32>();
            buf
        };
        buf.resize(len, 0);
        buf
    }

    /// Returns a 32-bit buffer to the pool (same bounds as [`Arena::put`]).
    pub fn put32(&self, buf: Vec<u32>) {
        let byte_cap = buf.capacity() * size_of::<u32>();
        self.put_bounded(&self.pool32, buf, byte_cap);
    }

    /// Takes a `k × n` polynomial with unspecified coefficients in the
    /// given domain (for outputs that are fully overwritten).
    pub fn take_poly(&self, k: usize, n: usize, domain: Domain) -> RnsPoly {
        RnsPoly::from_flat(self.take(k * n), k, domain)
    }

    /// Takes a zeroed `k × n` polynomial (for accumulators).
    pub fn take_poly_zeroed(&self, k: usize, n: usize, domain: Domain) -> RnsPoly {
        RnsPoly::from_flat(self.take_zeroed(k * n), k, domain)
    }

    /// Recycles a polynomial's backing buffer.
    pub fn recycle(&self, poly: RnsPoly) {
        self.put(poly.into_flat());
    }

    /// Recycles both polynomials of a ciphertext.
    pub fn recycle_ciphertext(&self, ct: crate::encrypt::Ciphertext) {
        let (c0, c1) = ct.into_parts();
        self.recycle(c0);
        self.recycle(c1);
    }

    /// 64-bit buffers currently pooled (for tests and telemetry).
    pub fn pooled(&self) -> usize {
        self.pool.lock().unwrap().bufs.len()
    }

    /// Point-in-time occupancy and cumulative drop count, aggregated
    /// across both pools.
    pub fn stats(&self) -> ArenaStats {
        let (b64, by64) = {
            let p = self.pool.lock().unwrap();
            (p.bufs.len() as u64, p.bytes as u64)
        };
        let (b32, by32) = {
            let p = self.pool32.lock().unwrap();
            (p.bufs.len() as u64, p.bytes as u64)
        };
        ArenaStats {
            pooled_buffers: b64 + b32,
            pooled_bytes: by64 + by32,
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_recycles_capacity() {
        let arena = Arena::new();
        let mut buf = arena.take(64);
        buf.iter_mut().for_each(|x| *x = 7);
        let ptr = buf.as_ptr();
        arena.put(buf);
        assert_eq!(arena.pooled(), 1);
        let again = arena.take(64);
        assert_eq!(again.as_ptr(), ptr, "same allocation reused");
        assert_eq!(arena.pooled(), 0);
        // take() leaves stale contents; take_zeroed() clears them.
        arena.put(again);
        let z = arena.take_zeroed(64);
        assert!(z.iter().all(|&x| x == 0));
    }

    #[test]
    fn pool_is_bounded() {
        let arena = Arena::with_capacity(2);
        for _ in 0..5 {
            arena.put(vec![0u64; 8]);
        }
        assert_eq!(arena.pooled(), 2, "excess buffers are dropped, not kept");
        // The default bound also applies to a fresh arena.
        let arena = Arena::new();
        for _ in 0..Arena::DEFAULT_CAPACITY + 10 {
            arena.put(vec![0u64; 8]);
        }
        assert_eq!(arena.pooled(), Arena::DEFAULT_CAPACITY);
    }

    #[test]
    fn byte_high_water_mark_bounds_the_pool() {
        // Room for many buffers by count, but only ~2 × 64-word buffers
        // by bytes.
        let arena = Arena::with_limits(ArenaLimits {
            max_buffers: 100,
            max_total_bytes: 2 * 64 * 8,
            max_buffer_bytes: 64 * 8,
        });
        for _ in 0..5 {
            arena.put(vec![0u64; 64]);
        }
        let s = arena.stats();
        assert_eq!(s.pooled_buffers, 2, "byte mark caps the pool");
        assert_eq!(s.pooled_bytes, 2 * 64 * 8);
        assert_eq!(s.dropped, 3);
        // Taking a buffer releases its bytes so a later return fits again.
        let b = arena.take(64);
        assert_eq!(arena.stats().pooled_bytes, 64 * 8);
        arena.put(b);
        assert_eq!(arena.stats().pooled_bytes, 2 * 64 * 8);
    }

    #[test]
    fn oversized_returns_are_dropped() {
        let arena = Arena::with_limits(ArenaLimits {
            max_buffers: 8,
            max_total_bytes: 1 << 20,
            max_buffer_bytes: 32 * 8,
        });
        arena.put(vec![0u64; 32]); // exactly at the ceiling: kept
        arena.put(vec![0u64; 33]); // over: dropped
        arena.put32(vec![0u32; 64]); // 256 B: kept
        arena.put32(vec![0u32; 100]); // 400 B: dropped
        let s = arena.stats();
        assert_eq!(s.pooled_buffers, 2);
        assert_eq!(s.pooled_bytes, 32 * 8 + 64 * 4);
        assert_eq!(s.dropped, 2);
    }

    #[test]
    fn stats_track_both_pools() {
        let arena = Arena::new();
        assert_eq!(arena.stats(), ArenaStats::default());
        arena.put(vec![0u64; 16]);
        arena.put32(vec![0u32; 16]);
        let s = arena.stats();
        assert_eq!(s.pooled_buffers, 2);
        assert_eq!(s.pooled_bytes, 16 * 8 + 16 * 4);
        assert_eq!(s.dropped, 0);
        let _ = arena.take32(16);
        assert_eq!(arena.stats().pooled_bytes, 16 * 8);
    }

    #[test]
    fn poly_roundtrip_keeps_shape() {
        let arena = Arena::new();
        let p = arena.take_poly_zeroed(3, 8, Domain::Ntt);
        assert_eq!((p.k(), p.n(), p.domain()), (3, 8, Domain::Ntt));
        arena.recycle(p);
        let q = arena.take_poly(2, 12, Domain::Coefficient);
        assert_eq!(q.flat().len(), 24);
    }
}
