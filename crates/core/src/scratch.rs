//! The eval scratch arena: a pool of recycled flat limb buffers.
//!
//! Steady-state homomorphic evaluation touches the same buffer shapes over
//! and over — `k·n` ciphertext polynomials, `(k+l)·n` lifted operands,
//! `k·n` digit polynomials — and the paper's coprocessor never allocates at
//! all: every intermediate lives in pre-sized BRAM. [`Arena`] is the
//! software analogue: a thread-safe pool of `Vec<u64>` buffers that
//! `tensor`/`relinearize`/`apply_galois`/hoisting draw from and return to,
//! so after a warm-up evaluation the hot path performs **zero heap
//! allocation** (asserted by `tests/alloc_steady_state.rs` with a counting
//! global allocator).
//!
//! The pool is deliberately simple: a mutex-guarded stack of buffers,
//! **bounded** at [`Arena::DEFAULT_CAPACITY`] buffers per pool —
//! [`Arena::put`] drops a buffer instead of pooling it once the pool is
//! full, so recycling more than you take (e.g. an engine worker feeding
//! every job's operand ciphertexts back) cannot grow memory without
//! bound. The lock is uncontended in the common per-job usage (one arena
//! per engine worker) and is taken a handful of times per evaluation —
//! noise next to a single row NTT. Pooled buffers keep whatever capacity
//! they grew to, so one arena serving mixed shapes converges to the
//! largest working set and stays there.

use crate::rnspoly::{Domain, RnsPoly};
use std::sync::Mutex;

/// A recycling pool of flat `u64` buffers (see the module docs).
///
/// `Arena` is `Send + Sync`; clones of buffers never escape — callers get
/// owned `Vec<u64>`/[`RnsPoly`] values and hand them back with
/// [`Arena::put`]/[`Arena::recycle`].
#[derive(Debug)]
pub struct Arena {
    pool: Mutex<Vec<Vec<u64>>>,
    /// Separate pool for the 32-bit buffers of the narrow key-switch SoP
    /// fast path (transposed hoisted digits).
    pool32: Mutex<Vec<Vec<u32>>>,
    capacity: usize,
}

impl Default for Arena {
    fn default() -> Self {
        Arena::new()
    }
}

impl Arena {
    /// Default bound on pooled buffers per pool. Generously above the
    /// deepest single-evaluation working set (a `Mult` holds ~12 live
    /// buffers; a hoisted slot sum fewer), so the hot path never misses,
    /// while the worst case stays around `32 × (k+l)·n` words.
    pub const DEFAULT_CAPACITY: usize = 32;

    /// An empty arena (buffers are created on first use) with the default
    /// pool bound.
    pub fn new() -> Self {
        Arena::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// An empty arena keeping at most `capacity` buffers per pool (≥ 1).
    pub fn with_capacity(capacity: usize) -> Self {
        Arena {
            pool: Mutex::new(Vec::new()),
            pool32: Mutex::new(Vec::new()),
            capacity: capacity.max(1),
        }
    }

    /// Takes a buffer of exactly `len` elements with **unspecified
    /// contents** (callers that overwrite every element skip the zeroing
    /// pass). Reuses the pooled buffer with the largest capacity when one
    /// exists, growing it if needed.
    pub fn take(&self, len: usize) -> Vec<u64> {
        let mut buf = self.pool.lock().unwrap().pop().unwrap_or_default();
        // `resize` only writes when growing past the current length; a
        // recycled buffer of the right size costs nothing here.
        buf.resize(len, 0);
        buf
    }

    /// Takes a buffer of `len` zeros (for accumulators).
    pub fn take_zeroed(&self, len: usize) -> Vec<u64> {
        let mut buf = self.take(len);
        buf.fill(0);
        buf
    }

    /// Returns a buffer to the pool; dropped instead once the pool holds
    /// [`Arena::DEFAULT_CAPACITY`] (or the configured bound) buffers.
    pub fn put(&self, buf: Vec<u64>) {
        if buf.capacity() > 0 {
            let mut pool = self.pool.lock().unwrap();
            if pool.len() < self.capacity {
                pool.push(buf);
            }
        }
    }

    /// Takes a 32-bit buffer of exactly `len` elements with unspecified
    /// contents (the narrow-SoP digit scratch).
    pub fn take32(&self, len: usize) -> Vec<u32> {
        let mut buf = self.pool32.lock().unwrap().pop().unwrap_or_default();
        buf.resize(len, 0);
        buf
    }

    /// Returns a 32-bit buffer to the pool (same bound as [`Arena::put`]).
    pub fn put32(&self, buf: Vec<u32>) {
        if buf.capacity() > 0 {
            let mut pool = self.pool32.lock().unwrap();
            if pool.len() < self.capacity {
                pool.push(buf);
            }
        }
    }

    /// Takes a `k × n` polynomial with unspecified coefficients in the
    /// given domain (for outputs that are fully overwritten).
    pub fn take_poly(&self, k: usize, n: usize, domain: Domain) -> RnsPoly {
        RnsPoly::from_flat(self.take(k * n), k, domain)
    }

    /// Takes a zeroed `k × n` polynomial (for accumulators).
    pub fn take_poly_zeroed(&self, k: usize, n: usize, domain: Domain) -> RnsPoly {
        RnsPoly::from_flat(self.take_zeroed(k * n), k, domain)
    }

    /// Recycles a polynomial's backing buffer.
    pub fn recycle(&self, poly: RnsPoly) {
        self.put(poly.into_flat());
    }

    /// Recycles both polynomials of a ciphertext.
    pub fn recycle_ciphertext(&self, ct: crate::encrypt::Ciphertext) {
        let (c0, c1) = ct.into_parts();
        self.recycle(c0);
        self.recycle(c1);
    }

    /// Buffers currently pooled (for tests and telemetry).
    pub fn pooled(&self) -> usize {
        self.pool.lock().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_recycles_capacity() {
        let arena = Arena::new();
        let mut buf = arena.take(64);
        buf.iter_mut().for_each(|x| *x = 7);
        let ptr = buf.as_ptr();
        arena.put(buf);
        assert_eq!(arena.pooled(), 1);
        let again = arena.take(64);
        assert_eq!(again.as_ptr(), ptr, "same allocation reused");
        assert_eq!(arena.pooled(), 0);
        // take() leaves stale contents; take_zeroed() clears them.
        arena.put(again);
        let z = arena.take_zeroed(64);
        assert!(z.iter().all(|&x| x == 0));
    }

    #[test]
    fn pool_is_bounded() {
        let arena = Arena::with_capacity(2);
        for _ in 0..5 {
            arena.put(vec![0u64; 8]);
        }
        assert_eq!(arena.pooled(), 2, "excess buffers are dropped, not kept");
        // The default bound also applies to a fresh arena.
        let arena = Arena::new();
        for _ in 0..Arena::DEFAULT_CAPACITY + 10 {
            arena.put(vec![0u64; 8]);
        }
        assert_eq!(arena.pooled(), Arena::DEFAULT_CAPACITY);
    }

    #[test]
    fn poly_roundtrip_keeps_shape() {
        let arena = Arena::new();
        let p = arena.take_poly_zeroed(3, 8, Domain::Ntt);
        assert_eq!((p.k(), p.n(), p.domain()), (3, 8, Domain::Ntt));
        arena.recycle(p);
        let q = arena.take_poly(2, 12, Domain::Coefficient);
        assert_eq!(q.flat().len(), 24);
    }
}
