//! RNS polynomials: elements of `R_q` (or `R_Q`) held as parallel residue
//! polynomials.
//!
//! The residue-major layout (`residues[i][c]` = coefficient `c` modulo the
//! i-th prime) is exactly how the paper distributes work across RPAUs: each
//! RPAU owns one (or two) residue rows.

use hefv_math::ntt::NttTable;
use hefv_math::rns::RnsBasis;
use serde::{Deserialize, Serialize};

/// Which domain the coefficients are currently in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Domain {
    /// Ordinary (power-basis) coefficients.
    Coefficient,
    /// NTT (evaluation) domain, bit-reversed order.
    Ntt,
}

/// A polynomial in RNS representation over some basis.
///
/// Arithmetic methods assume both operands share the same basis and domain;
/// this is checked with assertions (domain confusion is the classic FV
/// implementation bug).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RnsPoly {
    residues: Vec<Vec<u64>>,
    domain: Domain,
}

impl RnsPoly {
    /// The zero polynomial over `k` residues of length `n`.
    pub fn zero(k: usize, n: usize) -> Self {
        RnsPoly {
            residues: vec![vec![0; n]; k],
            domain: Domain::Coefficient,
        }
    }

    /// Wraps residue rows produced elsewhere.
    ///
    /// # Panics
    ///
    /// Panics if rows are ragged or empty.
    pub fn from_residues(residues: Vec<Vec<u64>>, domain: Domain) -> Self {
        assert!(!residues.is_empty(), "need at least one residue row");
        let n = residues[0].len();
        assert!(residues.iter().all(|r| r.len() == n), "ragged rows");
        RnsPoly { residues, domain }
    }

    /// Builds from signed coefficients, reducing into each prime of `basis`.
    pub fn from_signed(coeffs: &[i64], basis: &RnsBasis) -> Self {
        let residues = basis
            .moduli()
            .iter()
            .map(|m| coeffs.iter().map(|&c| m.from_i64(c)).collect())
            .collect();
        RnsPoly {
            residues,
            domain: Domain::Coefficient,
        }
    }

    /// Number of residue rows.
    pub fn k(&self) -> usize {
        self.residues.len()
    }

    /// Ring degree.
    pub fn n(&self) -> usize {
        self.residues[0].len()
    }

    /// Current domain.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Residue rows.
    pub fn residues(&self) -> &[Vec<u64>] {
        &self.residues
    }

    /// Mutable residue rows (domain discipline is the caller's burden).
    pub fn residues_mut(&mut self) -> &mut [Vec<u64>] {
        &mut self.residues
    }

    /// Consumes into the raw rows.
    pub fn into_residues(self) -> Vec<Vec<u64>> {
        self.residues
    }

    fn check(&self, other: &Self) {
        assert_eq!(self.k(), other.k(), "residue count mismatch");
        assert_eq!(self.n(), other.n(), "degree mismatch");
        assert_eq!(self.domain, other.domain, "domain mismatch");
    }

    /// Coefficient-wise sum over `basis` (valid in either domain).
    ///
    /// # Panics
    ///
    /// Panics on shape or domain mismatch.
    pub fn add(&self, other: &Self, basis: &RnsBasis) -> Self {
        self.check(other);
        let residues = (0..self.k())
            .map(|i| {
                let m = basis.modulus(i);
                self.residues[i]
                    .iter()
                    .zip(&other.residues[i])
                    .map(|(&a, &b)| m.add(a, b))
                    .collect()
            })
            .collect();
        RnsPoly {
            residues,
            domain: self.domain,
        }
    }

    /// Coefficient-wise difference.
    ///
    /// # Panics
    ///
    /// Panics on shape or domain mismatch.
    pub fn sub(&self, other: &Self, basis: &RnsBasis) -> Self {
        self.check(other);
        let residues = (0..self.k())
            .map(|i| {
                let m = basis.modulus(i);
                self.residues[i]
                    .iter()
                    .zip(&other.residues[i])
                    .map(|(&a, &b)| m.sub(a, b))
                    .collect()
            })
            .collect();
        RnsPoly {
            residues,
            domain: self.domain,
        }
    }

    /// Negation.
    pub fn neg(&self, basis: &RnsBasis) -> Self {
        let residues = (0..self.k())
            .map(|i| {
                let m = basis.modulus(i);
                self.residues[i].iter().map(|&a| m.neg(a)).collect()
            })
            .collect();
        RnsPoly {
            residues,
            domain: self.domain,
        }
    }

    /// Pointwise (Hadamard) product — both operands must be NTT-domain.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or if either operand is coefficient-domain.
    pub fn pointwise_mul(&self, other: &Self, basis: &RnsBasis) -> Self {
        self.check(other);
        assert_eq!(
            self.domain,
            Domain::Ntt,
            "pointwise product needs NTT domain"
        );
        let residues = (0..self.k())
            .map(|i| {
                let m = basis.modulus(i);
                self.residues[i]
                    .iter()
                    .zip(&other.residues[i])
                    .map(|(&a, &b)| m.mul(a, b))
                    .collect()
            })
            .collect();
        RnsPoly {
            residues,
            domain: Domain::Ntt,
        }
    }

    /// Multiply-accumulate: `acc += a ⊙ b` in NTT domain.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or wrong domains.
    pub fn pointwise_mul_acc(&mut self, a: &Self, b: &Self, basis: &RnsBasis) {
        a.check(b);
        assert_eq!(self.k(), a.k());
        assert_eq!(self.domain, Domain::Ntt);
        assert_eq!(a.domain, Domain::Ntt);
        for i in 0..self.k() {
            let m = basis.modulus(i);
            for c in 0..self.n() {
                self.residues[i][c] =
                    m.mul_add(a.residues[i][c], b.residues[i][c], self.residues[i][c]);
            }
        }
    }

    /// Multiplies every coefficient by per-residue scalars (e.g. `Δ mod q_i`).
    ///
    /// # Panics
    ///
    /// Panics if `scalars.len() != k`.
    pub fn scalar_mul(&self, scalars: &[u64], basis: &RnsBasis) -> Self {
        assert_eq!(scalars.len(), self.k(), "scalar count mismatch");
        let residues = (0..self.k())
            .map(|i| {
                let m = basis.modulus(i);
                let s = m.reduce(scalars[i]);
                self.residues[i].iter().map(|&a| m.mul(a, s)).collect()
            })
            .collect();
        RnsPoly {
            residues,
            domain: self.domain,
        }
    }

    /// Forward NTT on every residue row.
    ///
    /// # Panics
    ///
    /// Panics if already in NTT domain or if table count mismatches.
    pub fn ntt_forward(&mut self, tables: &[NttTable]) {
        assert_eq!(self.domain, Domain::Coefficient, "already in NTT domain");
        assert_eq!(tables.len(), self.k(), "table count mismatch");
        for (row, t) in self.residues.iter_mut().zip(tables) {
            t.forward(row);
        }
        self.domain = Domain::Ntt;
    }

    /// Inverse NTT on every residue row.
    ///
    /// # Panics
    ///
    /// Panics if already in coefficient domain or if table count mismatches.
    pub fn ntt_inverse(&mut self, tables: &[NttTable]) {
        assert_eq!(self.domain, Domain::Ntt, "already in coefficient domain");
        assert_eq!(tables.len(), self.k(), "table count mismatch");
        for (row, t) in self.residues.iter_mut().zip(tables) {
            t.inverse(row);
        }
        self.domain = Domain::Coefficient;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hefv_math::ntt::NttTable;
    use hefv_math::primes::ntt_primes;
    use hefv_math::zq::Modulus;

    fn basis() -> RnsBasis {
        let ps = ntt_primes(30, 16, 3).unwrap();
        RnsBasis::new(&ps).unwrap()
    }

    fn tables(b: &RnsBasis, n: usize) -> Vec<NttTable> {
        b.moduli()
            .iter()
            .map(|m| NttTable::new(Modulus::new(m.value()), n).unwrap())
            .collect()
    }

    #[test]
    fn zero_shape() {
        let p = RnsPoly::zero(3, 16);
        assert_eq!(p.k(), 3);
        assert_eq!(p.n(), 16);
        assert_eq!(p.domain(), Domain::Coefficient);
    }

    #[test]
    fn signed_roundtrip_through_basis() {
        let b = basis();
        let coeffs = vec![-1i64, 0, 1, 5, -7, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2];
        let p = RnsPoly::from_signed(&coeffs, &b);
        for (i, m) in b.moduli().iter().enumerate() {
            for (c, &v) in coeffs.iter().enumerate() {
                assert_eq!(p.residues()[i][c], m.from_i64(v));
            }
        }
    }

    #[test]
    fn add_sub_inverse() {
        let b = basis();
        let a = RnsPoly::from_signed(&[1; 16], &b);
        let c = RnsPoly::from_signed(&[-3; 16], &b);
        let s = a.add(&c, &b);
        assert_eq!(s.sub(&c, &b), a);
        let z = a.add(&a.neg(&b), &b);
        assert_eq!(z, RnsPoly::zero(3, 16));
    }

    #[test]
    #[should_panic(expected = "domain mismatch")]
    fn add_rejects_domain_mix() {
        let b = basis();
        let t = tables(&b, 16);
        let a = RnsPoly::from_signed(&[1; 16], &b);
        let mut c = a.clone();
        c.ntt_forward(&t);
        let _ = a.add(&c, &b);
    }

    #[test]
    #[should_panic(expected = "needs NTT domain")]
    fn pointwise_rejects_coeff_domain() {
        let b = basis();
        let a = RnsPoly::from_signed(&[1; 16], &b);
        let _ = a.pointwise_mul(&a, &b);
    }

    #[test]
    fn ntt_mul_matches_schoolbook_sign() {
        // x^(n-1) * x = -1
        let b = basis();
        let t = tables(&b, 16);
        let mut xa = vec![0i64; 16];
        xa[15] = 1;
        let mut xb = vec![0i64; 16];
        xb[1] = 1;
        let mut a = RnsPoly::from_signed(&xa, &b);
        let mut bb = RnsPoly::from_signed(&xb, &b);
        a.ntt_forward(&t);
        bb.ntt_forward(&t);
        let mut prod = a.pointwise_mul(&bb, &b);
        prod.ntt_inverse(&t);
        let expect = RnsPoly::from_signed(
            &{
                let mut v = vec![0i64; 16];
                v[0] = -1;
                v
            },
            &b,
        );
        assert_eq!(prod, expect);
    }

    #[test]
    fn mul_acc_accumulates() {
        let b = basis();
        let t = tables(&b, 16);
        let mut a = RnsPoly::from_signed(&[2; 16], &b);
        let mut c = RnsPoly::from_signed(&[3; 16], &b);
        a.ntt_forward(&t);
        c.ntt_forward(&t);
        let mut acc = a.pointwise_mul(&c, &b);
        acc.pointwise_mul_acc(&a, &c, &b);
        let double = a.pointwise_mul(&c, &b).add(&a.pointwise_mul(&c, &b), &b);
        assert_eq!(acc, double);
    }

    #[test]
    fn scalar_mul_per_residue() {
        let b = basis();
        let a = RnsPoly::from_signed(&[1; 16], &b);
        let scalars: Vec<u64> = b.moduli().iter().map(|m| m.value() - 1).collect(); // -1
        let s = a.scalar_mul(&scalars, &b);
        assert_eq!(s, a.neg(&b));
    }
}
