//! RNS polynomials: elements of `R_q` (or `R_Q`) held as parallel residue
//! polynomials.
//!
//! Storage is one contiguous `k·n` buffer in limb-major order (residue row
//! `i` occupies `data[i·n .. (i+1)·n]`) — the software mirror of how the
//! paper distributes work across RPAUs: each RPAU owns one (or two) residue
//! rows, and rows stream through the datapath as dense vectors. A single
//! allocation per polynomial (instead of one per row) keeps the hot kernels
//! cache-friendly and lets callers hand whole row ranges to the flat-slice
//! `Lift`/`Scale` APIs without copying.

use crate::parallel::for_each_row_mut;
use hefv_math::ntt::NttTable;
use hefv_math::rns::RnsBasis;
use serde::{Deserialize, Serialize};

/// Which domain the coefficients are currently in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Domain {
    /// Ordinary (power-basis) coefficients.
    Coefficient,
    /// NTT (evaluation) domain, bit-reversed order.
    Ntt,
}

/// A polynomial in RNS representation over some basis.
///
/// Arithmetic methods assume both operands share the same basis and domain;
/// this is checked with assertions (domain confusion is the classic FV
/// implementation bug).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RnsPoly {
    /// Contiguous limb-major coefficients: row `i`, coefficient `c` at
    /// `data[i * n + c]`.
    data: Vec<u64>,
    k: usize,
    n: usize,
    domain: Domain,
}

impl RnsPoly {
    /// The zero polynomial over `k` residues of length `n`.
    pub fn zero(k: usize, n: usize) -> Self {
        Self::zero_in(k, n, Domain::Coefficient)
    }

    /// The zero polynomial tagged with an explicit domain (NTT-domain
    /// accumulators start here).
    pub fn zero_in(k: usize, n: usize, domain: Domain) -> Self {
        assert!(k > 0, "need at least one residue row");
        RnsPoly {
            data: vec![0; k * n],
            k,
            n,
            domain,
        }
    }

    /// Wraps a flat limb-major buffer produced elsewhere.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or does not divide `data.len()`.
    pub fn from_flat(data: Vec<u64>, k: usize, domain: Domain) -> Self {
        assert!(k > 0, "need at least one residue row");
        assert_eq!(data.len() % k, 0, "flat buffer not a multiple of k");
        let n = data.len() / k;
        RnsPoly { data, k, n, domain }
    }

    /// Wraps residue rows produced elsewhere (flattening them into the
    /// contiguous layout).
    ///
    /// # Panics
    ///
    /// Panics if rows are ragged or empty.
    pub fn from_residues(residues: Vec<Vec<u64>>, domain: Domain) -> Self {
        assert!(!residues.is_empty(), "need at least one residue row");
        let k = residues.len();
        let n = residues[0].len();
        let mut data = Vec::with_capacity(k * n);
        for row in residues {
            assert_eq!(row.len(), n, "ragged rows");
            data.extend_from_slice(&row);
        }
        RnsPoly {
            data,
            k,
            n,
            domain: Domain::Coefficient,
        }
        .with_domain(domain)
    }

    fn with_domain(mut self, domain: Domain) -> Self {
        self.domain = domain;
        self
    }

    /// Builds from signed coefficients, reducing into each prime of `basis`.
    pub fn from_signed(coeffs: &[i64], basis: &RnsBasis) -> Self {
        let k = basis.len();
        let n = coeffs.len();
        let mut data = Vec::with_capacity(k * n);
        for m in basis.moduli() {
            data.extend(coeffs.iter().map(|&c| m.from_i64(c)));
        }
        RnsPoly {
            data,
            k,
            n,
            domain: Domain::Coefficient,
        }
    }

    /// Number of residue rows.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Ring degree.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current domain.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// The whole limb-major buffer (`k·n` values, stride `n`).
    pub fn flat(&self) -> &[u64] {
        &self.data
    }

    /// Consumes the polynomial, yielding its backing buffer (the seam the
    /// [`crate::scratch::Arena`] recycles through).
    pub fn into_flat(self) -> Vec<u64> {
        self.data
    }

    /// Mutable view of the whole buffer (domain discipline is the
    /// caller's burden).
    pub fn flat_mut(&mut self) -> &mut [u64] {
        &mut self.data
    }

    /// Residue row `i` (coefficients mod the `i`-th prime).
    #[inline]
    pub fn row(&self, i: usize) -> &[u64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Mutable residue row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [u64] {
        &mut self.data[i * self.n..(i + 1) * self.n]
    }

    /// Flat mutable view of rows `i..j` (still limb-major, stride `n`) —
    /// the seam the flat-slice `Lift`/`Scale` kernels write through.
    ///
    /// # Panics
    ///
    /// Panics if `i > j` or `j > k`.
    pub fn rows_mut(&mut self, i: usize, j: usize) -> &mut [u64] {
        assert!(i <= j && j <= self.k, "row range out of bounds");
        &mut self.data[i * self.n..j * self.n]
    }

    /// Iterates residue rows as dense slices.
    pub fn rows(&self) -> std::slice::Chunks<'_, u64> {
        self.data.chunks(self.n)
    }

    /// Copies the rows out as owned vectors (bridge for the simulator's
    /// per-lane BRAM models; not used on the hot path).
    pub fn to_rows(&self) -> Vec<Vec<u64>> {
        self.rows().map(<[u64]>::to_vec).collect()
    }

    fn check(&self, other: &Self) {
        assert_eq!(self.k, other.k, "residue count mismatch");
        assert_eq!(self.n, other.n, "degree mismatch");
        assert_eq!(self.domain, other.domain, "domain mismatch");
    }

    /// Coefficient-wise sum over `basis` (valid in either domain).
    ///
    /// # Panics
    ///
    /// Panics on shape or domain mismatch.
    pub fn add(&self, other: &Self, basis: &RnsBasis) -> Self {
        self.check(other);
        let mut data = Vec::with_capacity(self.data.len());
        for i in 0..self.k {
            let m = basis.modulus(i);
            data.extend(
                self.row(i)
                    .iter()
                    .zip(other.row(i))
                    .map(|(&a, &b)| m.add(a, b)),
            );
        }
        RnsPoly {
            data,
            k: self.k,
            n: self.n,
            domain: self.domain,
        }
    }

    /// Coefficient-wise difference.
    ///
    /// # Panics
    ///
    /// Panics on shape or domain mismatch.
    pub fn sub(&self, other: &Self, basis: &RnsBasis) -> Self {
        self.check(other);
        let mut data = Vec::with_capacity(self.data.len());
        for i in 0..self.k {
            let m = basis.modulus(i);
            data.extend(
                self.row(i)
                    .iter()
                    .zip(other.row(i))
                    .map(|(&a, &b)| m.sub(a, b)),
            );
        }
        RnsPoly {
            data,
            k: self.k,
            n: self.n,
            domain: self.domain,
        }
    }

    /// Negation.
    pub fn neg(&self, basis: &RnsBasis) -> Self {
        let mut data = Vec::with_capacity(self.data.len());
        for i in 0..self.k {
            let m = basis.modulus(i);
            data.extend(self.row(i).iter().map(|&a| m.neg(a)));
        }
        RnsPoly {
            data,
            k: self.k,
            n: self.n,
            domain: self.domain,
        }
    }

    /// Pointwise (Hadamard) product — both operands must be NTT-domain.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or if either operand is coefficient-domain.
    pub fn pointwise_mul(&self, other: &Self, basis: &RnsBasis) -> Self {
        self.pointwise_mul_with_budget(other, basis, 1)
    }

    /// [`RnsPoly::pointwise_mul`] with residue rows fanned out over at
    /// most `budget` OS threads (the paper's RPAU-per-residue
    /// distribution).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or if either operand is coefficient-domain.
    pub fn pointwise_mul_with_budget(&self, other: &Self, basis: &RnsBasis, budget: usize) -> Self {
        self.check(other);
        assert_eq!(
            self.domain,
            Domain::Ntt,
            "pointwise product needs NTT domain"
        );
        let mut data = vec![0u64; self.data.len()];
        for_each_row_mut(&mut data, self.n, budget, |i, row| {
            basis.modulus(i).mul_slice(self.row(i), other.row(i), row);
        });
        RnsPoly {
            data,
            k: self.k,
            n: self.n,
            domain: Domain::Ntt,
        }
    }

    /// In-place pointwise product: `self ⊙= other` in NTT domain — the
    /// allocation-free sibling of [`RnsPoly::pointwise_mul`] for callers
    /// that already own their output buffer.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or wrong domains.
    pub fn pointwise_mul_assign(&mut self, other: &Self, basis: &RnsBasis) {
        self.check(other);
        assert_eq!(
            self.domain,
            Domain::Ntt,
            "pointwise product needs NTT domain"
        );
        let n = self.n;
        for i in 0..self.k {
            let dst = &mut self.data[i * n..(i + 1) * n];
            basis.modulus(i).mul_slice_assign(dst, other.row(i));
        }
    }

    /// Pointwise product written into a caller-provided output polynomial
    /// (shape-checked; `out`'s previous contents and domain are
    /// overwritten). The allocation-free form of [`RnsPoly::pointwise_mul`]
    /// for arena-recycled outputs.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or if either operand is coefficient-domain.
    pub fn pointwise_mul_into(&self, other: &Self, basis: &RnsBasis, out: &mut Self) {
        self.check(other);
        assert_eq!(
            self.domain,
            Domain::Ntt,
            "pointwise product needs NTT domain"
        );
        assert_eq!(out.k, self.k, "residue count mismatch");
        assert_eq!(out.n, self.n, "degree mismatch");
        out.domain = Domain::Ntt;
        let n = self.n;
        for i in 0..self.k {
            let dst = &mut out.data[i * n..(i + 1) * n];
            basis.modulus(i).mul_slice(self.row(i), other.row(i), dst);
        }
    }

    /// In-place coefficient-wise sum: `self += other` (valid in either
    /// domain) — the allocation-free sibling of [`RnsPoly::add`].
    ///
    /// # Panics
    ///
    /// Panics on shape or domain mismatch.
    pub fn add_assign(&mut self, other: &Self, basis: &RnsBasis) {
        self.check(other);
        let n = self.n;
        for i in 0..self.k {
            let m = *basis.modulus(i);
            let dst = &mut self.data[i * n..(i + 1) * n];
            for (d, &b) in dst.iter_mut().zip(other.row(i)) {
                *d = m.add(*d, b);
            }
        }
    }

    /// Copies another polynomial's coefficients and domain into this one's
    /// buffer (shapes must match) — a clone that reuses the allocation.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn copy_from(&mut self, other: &Self) {
        assert_eq!(self.k, other.k, "residue count mismatch");
        assert_eq!(self.n, other.n, "degree mismatch");
        self.data.copy_from_slice(&other.data);
        self.domain = other.domain;
    }

    /// Multiply-accumulate: `acc += a ⊙ b` in NTT domain.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or wrong domains.
    pub fn pointwise_mul_acc(&mut self, a: &Self, b: &Self, basis: &RnsBasis) {
        self.pointwise_mul_acc_with_budget(a, b, basis, 1);
    }

    /// [`RnsPoly::pointwise_mul_acc`] with residue rows fanned out over at
    /// most `budget` OS threads.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or wrong domains.
    pub fn pointwise_mul_acc_with_budget(
        &mut self,
        a: &Self,
        b: &Self,
        basis: &RnsBasis,
        budget: usize,
    ) {
        a.check(b);
        assert_eq!(self.k, a.k, "residue count mismatch");
        assert_eq!(self.n, a.n, "degree mismatch");
        assert_eq!(self.domain, Domain::Ntt);
        assert_eq!(a.domain, Domain::Ntt);
        let n = self.n;
        for_each_row_mut(&mut self.data, n, budget, |i, row| {
            basis.modulus(i).mul_acc_slice(a.row(i), b.row(i), row);
        });
    }

    /// Multiplies every coefficient by per-residue scalars (e.g. `Δ mod q_i`).
    ///
    /// # Panics
    ///
    /// Panics if `scalars.len() != k`.
    pub fn scalar_mul(&self, scalars: &[u64], basis: &RnsBasis) -> Self {
        assert_eq!(scalars.len(), self.k, "scalar count mismatch");
        let mut data = Vec::with_capacity(self.data.len());
        for (i, &scalar) in scalars.iter().enumerate() {
            let m = basis.modulus(i);
            let s = m.reduce(scalar);
            data.extend(self.row(i).iter().map(|&a| m.mul(a, s)));
        }
        RnsPoly {
            data,
            k: self.k,
            n: self.n,
            domain: self.domain,
        }
    }

    /// Forward NTT on every residue row.
    ///
    /// # Panics
    ///
    /// Panics if already in NTT domain or if table count mismatches.
    pub fn ntt_forward(&mut self, tables: &[NttTable]) {
        self.ntt_forward_with_budget(tables, 1);
    }

    /// Forward NTT with residue rows fanned out over at most `budget` OS
    /// threads — contiguous row *spans* per task (the paper's
    /// one-RPAU-per-prime distribution), handed to the dispatch seam's
    /// batch entry so same-size transforms across limbs share one kernel
    /// selection and keep SIMD lanes full.
    ///
    /// # Panics
    ///
    /// Panics if already in NTT domain or if table count mismatches.
    pub fn ntt_forward_with_budget(&mut self, tables: &[NttTable], budget: usize) {
        assert_eq!(self.domain, Domain::Coefficient, "already in NTT domain");
        assert_eq!(tables.len(), self.k, "table count mismatch");
        let n = self.n;
        let kernels = hefv_math::dispatch::kernels();
        crate::parallel::for_each_row_span_mut(&mut self.data, n, budget, |first, span| {
            kernels.ntt_forward_batch(&tables[first..first + span.len() / n], span);
        });
        self.domain = Domain::Ntt;
    }

    /// Inverse NTT on every residue row.
    ///
    /// # Panics
    ///
    /// Panics if already in coefficient domain or if table count mismatches.
    pub fn ntt_inverse(&mut self, tables: &[NttTable]) {
        self.ntt_inverse_with_budget(tables, 1);
    }

    /// Inverse NTT with residue rows fanned out over at most `budget` OS
    /// threads.
    ///
    /// # Panics
    ///
    /// Panics if already in coefficient domain or if table count mismatches.
    pub fn ntt_inverse_with_budget(&mut self, tables: &[NttTable], budget: usize) {
        assert_eq!(self.domain, Domain::Ntt, "already in coefficient domain");
        assert_eq!(tables.len(), self.k, "table count mismatch");
        let n = self.n;
        let kernels = hefv_math::dispatch::kernels();
        crate::parallel::for_each_row_span_mut(&mut self.data, n, budget, |first, span| {
            kernels.ntt_inverse_batch(&tables[first..first + span.len() / n], span);
        });
        self.domain = Domain::Coefficient;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hefv_math::ntt::NttTable;
    use hefv_math::primes::ntt_primes;
    use hefv_math::zq::Modulus;

    fn basis() -> RnsBasis {
        let ps = ntt_primes(30, 16, 3).unwrap();
        RnsBasis::new(&ps).unwrap()
    }

    fn tables(b: &RnsBasis, n: usize) -> Vec<NttTable> {
        b.moduli()
            .iter()
            .map(|m| NttTable::new(Modulus::new(m.value()), n).unwrap())
            .collect()
    }

    #[test]
    fn zero_shape() {
        let p = RnsPoly::zero(3, 16);
        assert_eq!(p.k(), 3);
        assert_eq!(p.n(), 16);
        assert_eq!(p.domain(), Domain::Coefficient);
        assert_eq!(p.flat().len(), 48);
    }

    #[test]
    fn flat_layout_is_limb_major() {
        let b = basis();
        let coeffs = vec![-1i64, 0, 1, 5, -7, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2];
        let p = RnsPoly::from_signed(&coeffs, &b);
        for (i, m) in b.moduli().iter().enumerate() {
            for (c, &v) in coeffs.iter().enumerate() {
                assert_eq!(p.row(i)[c], m.from_i64(v));
                assert_eq!(p.flat()[i * 16 + c], m.from_i64(v));
            }
        }
        assert_eq!(p.to_rows()[1], p.row(1));
        assert_eq!(RnsPoly::from_residues(p.to_rows(), Domain::Coefficient), p);
    }

    #[test]
    fn rows_mut_spans_a_contiguous_range() {
        let mut p = RnsPoly::zero(4, 8);
        p.rows_mut(1, 3).iter_mut().for_each(|x| *x = 7);
        assert!(p.row(0).iter().all(|&x| x == 0));
        assert!(p.row(1).iter().all(|&x| x == 7));
        assert!(p.row(2).iter().all(|&x| x == 7));
        assert!(p.row(3).iter().all(|&x| x == 0));
    }

    #[test]
    fn add_sub_inverse() {
        let b = basis();
        let a = RnsPoly::from_signed(&[1; 16], &b);
        let c = RnsPoly::from_signed(&[-3; 16], &b);
        let s = a.add(&c, &b);
        assert_eq!(s.sub(&c, &b), a);
        let z = a.add(&a.neg(&b), &b);
        assert_eq!(z, RnsPoly::zero(3, 16));
    }

    #[test]
    #[should_panic(expected = "domain mismatch")]
    fn add_rejects_domain_mix() {
        let b = basis();
        let t = tables(&b, 16);
        let a = RnsPoly::from_signed(&[1; 16], &b);
        let mut c = a.clone();
        c.ntt_forward(&t);
        let _ = a.add(&c, &b);
    }

    #[test]
    #[should_panic(expected = "needs NTT domain")]
    fn pointwise_rejects_coeff_domain() {
        let b = basis();
        let a = RnsPoly::from_signed(&[1; 16], &b);
        let _ = a.pointwise_mul(&a, &b);
    }

    #[test]
    fn ntt_mul_matches_schoolbook_sign() {
        // x^(n-1) * x = -1
        let b = basis();
        let t = tables(&b, 16);
        let mut xa = vec![0i64; 16];
        xa[15] = 1;
        let mut xb = vec![0i64; 16];
        xb[1] = 1;
        let mut a = RnsPoly::from_signed(&xa, &b);
        let mut bb = RnsPoly::from_signed(&xb, &b);
        a.ntt_forward(&t);
        bb.ntt_forward(&t);
        let mut prod = a.pointwise_mul(&bb, &b);
        prod.ntt_inverse(&t);
        let expect = RnsPoly::from_signed(
            &{
                let mut v = vec![0i64; 16];
                v[0] = -1;
                v
            },
            &b,
        );
        assert_eq!(prod, expect);
    }

    #[test]
    fn mul_acc_accumulates() {
        let b = basis();
        let t = tables(&b, 16);
        let mut a = RnsPoly::from_signed(&[2; 16], &b);
        let mut c = RnsPoly::from_signed(&[3; 16], &b);
        a.ntt_forward(&t);
        c.ntt_forward(&t);
        let mut acc = a.pointwise_mul(&c, &b);
        acc.pointwise_mul_acc(&a, &c, &b);
        let double = a.pointwise_mul(&c, &b).add(&a.pointwise_mul(&c, &b), &b);
        assert_eq!(acc, double);
    }

    #[test]
    fn pointwise_assign_matches_allocating_product() {
        let b = basis();
        let t = tables(&b, 16);
        let mut a = RnsPoly::from_signed(&[5, -2, 3, 1, 0, 7, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1], &b);
        let mut c = RnsPoly::from_signed(&[2; 16], &b);
        a.ntt_forward(&t);
        c.ntt_forward(&t);
        let expect = a.pointwise_mul(&c, &b);
        let mut got = a.clone();
        got.pointwise_mul_assign(&c, &b);
        assert_eq!(got, expect);
    }

    #[test]
    fn budgeted_kernels_match_serial() {
        let b = basis();
        let t = tables(&b, 16);
        let mut a = RnsPoly::from_signed(&[3, 1, 4, 1, 5, 9, 2, 6, 0, 0, 0, 0, 0, 0, 0, 0], &b);
        let mut c = RnsPoly::from_signed(&[2, 7, 1, 8, 2, 8, 1, 8, 0, 0, 0, 0, 0, 0, 0, 0], &b);
        let (a0, c0) = (a.clone(), c.clone());
        a.ntt_forward(&t);
        c.ntt_forward(&t);
        let serial = a.pointwise_mul(&c, &b);
        for budget in [2usize, 3, 8] {
            let (mut ap, mut cp) = (a0.clone(), c0.clone());
            ap.ntt_forward_with_budget(&t, budget);
            cp.ntt_forward_with_budget(&t, budget);
            assert_eq!(ap, a, "forward budget {budget}");
            let par = ap.pointwise_mul_with_budget(&cp, &b, budget);
            assert_eq!(par, serial, "pointwise budget {budget}");
            let mut acc_serial = serial.clone();
            acc_serial.pointwise_mul_acc(&a, &c, &b);
            let mut acc_par = serial.clone();
            acc_par.pointwise_mul_acc_with_budget(&ap, &cp, &b, budget);
            assert_eq!(acc_par, acc_serial, "mul_acc budget {budget}");
            let mut inv_serial = serial.clone();
            inv_serial.ntt_inverse(&t);
            let mut inv_par = par.clone();
            inv_par.ntt_inverse_with_budget(&t, budget);
            assert_eq!(inv_par, inv_serial, "inverse budget {budget}");
        }
    }

    #[test]
    fn scalar_mul_per_residue() {
        let b = basis();
        let a = RnsPoly::from_signed(&[1; 16], &b);
        let scalars: Vec<u64> = b.moduli().iter().map(|m| m.value() - 1).collect(); // -1
        let s = a.scalar_mul(&scalars, &b);
        assert_eq!(s, a.neg(&b));
    }
}
