//! CRC32 (IEEE 802.3, reflected) — the integrity checksum guarding the
//! net envelope trailer and the `HEVR` registry-snapshot format.
//!
//! Table-driven over the reflected polynomial `0xEDB88320`, computed at
//! compile time so there is no runtime init and no dependency. The
//! polynomial's minimum distance guarantees every single-bit flip (and
//! every burst up to 32 bits) changes the checksum, which is what makes
//! the corruption-injection tests deterministic rather than
//! probabilistic: an injected flip is *always* caught.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Byte-at-a-time lookup table, built in a `const` context.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 of `bytes` (init `!0`, final xor `!0` — the common "CRC-32"
/// every zlib/Ethernet implementation computes).
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_check_value() {
        // The standard CRC-32 check vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn every_single_bit_flip_is_caught() {
        let msg = b"the quick brown fox jumps over the lazy dog".to_vec();
        let clean = crc32(&msg);
        for byte in 0..msg.len() {
            for bit in 0..8 {
                let mut flipped = msg.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), clean, "flip at {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn appended_crc_verifies_as_residue() {
        // Checking `data || crc_le` by recomputing over the data part is
        // how both the envelope and HEVR verify; make sure the layout
        // assumptions hold.
        let data = b"payload".to_vec();
        let mut framed = data.clone();
        framed.extend_from_slice(&crc32(&data).to_le_bytes());
        let (body, tail) = framed.split_at(framed.len() - 4);
        assert_eq!(crc32(body), u32::from_le_bytes(tail.try_into().unwrap()));
    }
}
