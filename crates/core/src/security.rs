//! Heuristic security estimation for the ring-LWE parameters.
//!
//! The paper sizes its parameters "to achieve a multiplicative depth of
//! four and at least 80-bit security \[26\]" using Albrecht's LWE estimator.
//! That estimator is a large Sage project; here we implement the classic
//! *Lindner–Peikert distinguishing-attack* estimate, which is simpler and
//! strictly more conservative (it reports fewer bits for the same
//! parameters). It is meant for sanity checks and parameter sweeps, not
//! as a replacement for a full estimator.

use crate::params::FvParams;

/// Security report for one parameter set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SecurityEstimate {
    /// `log2` of the targeted root Hermite factor `δ`.
    pub log_delta: f64,
    /// Estimated attack cost in bits (Lindner–Peikert BKZ runtime model).
    pub bits: f64,
}

/// Estimates the classical security of a parameter set.
///
/// Model: a distinguishing attack succeeds at advantage ε when the
/// attacker reaches root Hermite factor `δ` with
/// `log2(δ) = log2²(q/σ) / (4·n·log2 q)`; BKZ cost
/// `log2(T) ≈ 1.8 / log2(δ) − 110` (Lindner–Peikert 2011).
pub fn estimate(params: &FvParams) -> SecurityEstimate {
    let n = params.n as f64;
    let log_q = params.log_q() as f64;
    let log_q_over_sigma = log_q - params.sigma.log2();
    let log_delta = log_q_over_sigma * log_q_over_sigma / (4.0 * n * log_q);
    let bits = 1.8 / log_delta - 110.0;
    SecurityEstimate { log_delta, bits }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_set_clears_a_conservative_floor() {
        // The paper claims ≥80-bit via the Albrecht estimator; the
        // Lindner–Peikert model is more conservative and lands in the
        // mid-60s for the same parameters — assert the conservative floor
        // and record the gap in the docs.
        let e = estimate(&FvParams::hpca19());
        assert!(e.bits >= 60.0, "got {:.1} bits", e.bits);
        assert!(e.log_delta > 0.0 && e.log_delta < 0.02);
    }

    #[test]
    fn security_grows_with_dimension() {
        let base = estimate(&FvParams::hpca19());
        let bigger = estimate(&FvParams::table5(1)); // n doubles, q doubles
                                                     // Table V doubles both n and log q; LP security stays roughly
                                                     // level (that's the point of the paper scaling both together).
        assert!((bigger.bits - base.bits).abs() < 15.0);
        // Doubling n alone must increase security.
        let mut wide = FvParams::hpca19();
        wide.n *= 2;
        assert!(estimate(&wide).bits > base.bits + 30.0);
    }

    #[test]
    fn toy_parameters_are_insecure_and_say_so() {
        let e = estimate(&FvParams::insecure_toy());
        assert!(
            e.bits < 0.0,
            "toy set must be obviously broken: {:.1}",
            e.bits
        );
    }
}
