//! Galois automorphisms and key switching.
//!
//! The map `σ_g : a(x) ↦ a(x^g)` (odd `g`, modulo `x^n + 1`) permutes the
//! SIMD slots of a batched plaintext. Applying it to a ciphertext yields an
//! encryption under the permuted secret `σ_g(s)`; a [`GaloisKey`] switches
//! it back to `s` using the same RNS-digit machinery as relinearization
//! (§II-B's `WordDecomp` + `SoP`).
//!
//! This is the standard extension the paper's Discussion invites ("the
//! design decisions can be tweaked"): rotations cost exactly one
//! relinearization-shaped SoP on the coprocessor, so the instruction
//! model prices them with the existing Table II entries.
//!
//! [`sum_slots`] folds a ciphertext over the whole Galois group with the
//! rotate-and-add doubling trick, leaving the sum of *all* slots in every
//! slot — used by the smart-meter aggregation example.

use crate::context::FvContext;
use crate::encrypt::Ciphertext;
use crate::keys::SecretKey;
use crate::rnspoly::{Domain, RnsPoly};
use crate::sampler;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Checks that `g` is a valid automorphism exponent (odd, in `[1, 2n)`).
pub fn is_valid_exponent(g: usize, n: usize) -> bool {
    g % 2 == 1 && g < 2 * n
}

/// Applies `σ_g` to a coefficient-domain RNS polynomial: coefficient `i`
/// moves to position `i·g mod 2n`, negated when the product wraps past
/// `n` (since `x^n = -1`).
///
/// # Panics
///
/// Panics if the polynomial is in NTT domain or `g` is invalid.
pub fn apply_automorphism(ctx: &FvContext, poly: &RnsPoly, g: usize) -> RnsPoly {
    assert_eq!(poly.domain(), Domain::Coefficient, "automorphism domain");
    let n = poly.n();
    assert!(is_valid_exponent(g, n), "invalid Galois exponent {g}");
    let basis = ctx.base_q();
    let mut out = RnsPoly::zero(poly.k(), n);
    for r in 0..poly.k() {
        let m = *basis.modulus(r);
        let src = poly.row(r);
        let dst = out.row_mut(r);
        for (i, &c) in src.iter().enumerate() {
            let pos = (i * g) % (2 * n);
            if pos < n {
                dst[pos] = c;
            } else {
                dst[pos - n] = m.neg(c);
            }
        }
    }
    out
}

/// A key-switching key for one Galois exponent: digit-wise encryptions of
/// `h_i · σ_g(s)` under `s`, in NTT domain.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaloisKey {
    /// The automorphism exponent.
    pub g: usize,
    ksk0: Vec<RnsPoly>,
    ksk1: Vec<RnsPoly>,
}

impl GaloisKey {
    /// Generates the switching key for exponent `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is not a valid odd exponent.
    pub fn generate<R: Rng + ?Sized>(
        ctx: &FvContext,
        sk: &SecretKey,
        g: usize,
        rng: &mut R,
    ) -> Self {
        let n = ctx.params().n;
        assert!(is_valid_exponent(g, n), "invalid Galois exponent {g}");
        let basis = ctx.base_q();
        let k = ctx.params().k();
        // σ_g(s) in NTT domain.
        let mut s_coeff = sk.s_ntt().clone();
        s_coeff.ntt_inverse(ctx.ntt_q());
        let mut s_g = apply_automorphism(ctx, &s_coeff, g);
        s_g.ntt_forward(ctx.ntt_q());

        let mut ksk0 = Vec::with_capacity(k);
        let mut ksk1 = Vec::with_capacity(k);
        for i in 0..k {
            let mut a = sampler::uniform_poly(rng, basis, n);
            a.ntt_forward(ctx.ntt_q());
            let mut e = sampler::gaussian_poly(rng, basis, n, ctx.params().sigma);
            e.ntt_forward(ctx.ntt_q());
            let mut key0 = a.pointwise_mul(sk.s_ntt(), basis).add(&e, basis).neg(basis);
            {
                // + h_i · σ_g(s): the idempotent touches only row i.
                let m = *basis.modulus(i);
                for (d, &sc) in key0.row_mut(i).iter_mut().zip(s_g.row(i)) {
                    *d = m.add(*d, sc);
                }
            }
            ksk0.push(key0);
            ksk1.push(a);
        }
        GaloisKey { g, ksk0, ksk1 }
    }

    /// Number of digits.
    pub fn digits(&self) -> usize {
        self.ksk0.len()
    }
}

/// Applies `σ_g` to a ciphertext and switches back to the original key:
/// `ct' = (σc0 + SoP(D(σc1), ksk0), SoP(D(σc1), ksk1))`.
///
/// # Panics
///
/// Panics if the key's digit count mismatches the context.
pub fn apply_galois(ctx: &FvContext, ct: &Ciphertext, key: &GaloisKey) -> Ciphertext {
    let basis = ctx.base_q();
    let k = ctx.params().k();
    assert_eq!(key.digits(), k, "digit count mismatch");
    let n = ctx.params().n;

    let c0g = apply_automorphism(ctx, ct.c0(), key.g);
    let c1g = apply_automorphism(ctx, ct.c1(), key.g);

    let mut acc0 = RnsPoly::zero_in(k, n, Domain::Ntt);
    let mut acc1 = RnsPoly::zero_in(k, n, Domain::Ntt);
    for i in 0..k {
        let spread = ctx.spread_digit(c1g.row(i));
        let mut digit = RnsPoly::from_flat(spread, k, Domain::Coefficient);
        digit.ntt_forward(ctx.ntt_q());
        acc0.pointwise_mul_acc(&digit, &key.ksk0[i], basis);
        acc1.pointwise_mul_acc(&digit, &key.ksk1[i], basis);
    }
    acc0.ntt_inverse(ctx.ntt_q());
    acc1.ntt_inverse(ctx.ntt_q());
    Ciphertext {
        c0: c0g.add(&acc0, basis),
        c1: acc1,
    }
}

/// The key set needed to fold a ciphertext over the whole Galois group:
/// exponents `3^(2^i) mod 2n` for `i = 0 .. log2(n/2)` plus `2n − 1`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaloisKeySet {
    keys: Vec<GaloisKey>,
}

impl GaloisKeySet {
    /// Generates the slot-sum key set (log2(n) keys).
    pub fn for_slot_sum<R: Rng + ?Sized>(ctx: &FvContext, sk: &SecretKey, rng: &mut R) -> Self {
        let n = ctx.params().n;
        let two_n = 2 * n;
        let mut keys = Vec::new();
        let mut g = 3usize;
        let steps = (n / 2).trailing_zeros();
        for _ in 0..steps {
            keys.push(GaloisKey::generate(ctx, sk, g % two_n, rng));
            g = (g * g) % two_n;
        }
        keys.push(GaloisKey::generate(ctx, sk, two_n - 1, rng));
        GaloisKeySet { keys }
    }

    /// The contained keys.
    pub fn keys(&self) -> &[GaloisKey] {
        &self.keys
    }
}

/// Sums all SIMD slots: afterwards every slot holds `Σ_j slot_j`.
///
/// Uses the rotate-and-add doubling trick: `log2(n)` Galois applications.
pub fn sum_slots(ctx: &FvContext, ct: &Ciphertext, keys: &GaloisKeySet) -> Ciphertext {
    let mut acc = ct.clone();
    for key in keys.keys() {
        let rotated = apply_galois(ctx, &acc, key);
        acc = crate::eval::add(ctx, &acc, &rotated);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{BatchEncoder, Plaintext};
    use crate::encrypt::{decrypt, encrypt};
    use crate::keys::keygen;
    use crate::params::FvParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn batching_ctx() -> (FvContext, BatchEncoder) {
        let mut p = FvParams::insecure_medium();
        p.t = 7681;
        let ctx = FvContext::new(p).unwrap();
        let enc = BatchEncoder::new(7681, 256).unwrap();
        (ctx, enc)
    }

    #[test]
    fn automorphism_is_ring_homomorphism_on_plaintexts() {
        // σ_g(x^i) has the right sign structure: x -> x^g.
        let ctx = FvContext::new(FvParams::insecure_toy()).unwrap();
        let n = ctx.params().n;
        let mut coeffs = vec![0i64; n];
        coeffs[1] = 1; // the polynomial x
        let p = RnsPoly::from_signed(&coeffs, ctx.base_q());
        let g = 3;
        let out = apply_automorphism(&ctx, &p, g);
        // x^3 has coefficient 1 at position 3
        assert_eq!(out.row(0)[3], 1);
        assert!(out.row(0).iter().filter(|&&c| c != 0).count() == 1);
    }

    #[test]
    fn automorphism_wraps_with_negation() {
        let ctx = FvContext::new(FvParams::insecure_toy()).unwrap();
        let n = ctx.params().n;
        let mut coeffs = vec![0i64; n];
        coeffs[1] = 1; // the polynomial x
        let p = RnsPoly::from_signed(&coeffs, ctx.base_q());
        // g = 2n−1: x^(2n−1) = x^(2n)·x^(−1) = x^(n−1)·x^n·x^(−n)… directly:
        // 2n−1 ≥ n, so the image lands at position n−1 with a sign flip
        // (x^(2n−1) = −x^(n−1) since x^n = −1).
        let out = apply_automorphism(&ctx, &p, 2 * n - 1);
        let m = ctx.base_q().modulus(0);
        assert_eq!(out.row(0)[n - 1], m.neg(1));
        // And x^(3n−3) = x^(n−3) with *no* flip (x^(2n) = 1): check via g=3
        // on x^(n−1).
        let mut c2 = vec![0i64; n];
        c2[n - 1] = 1;
        let p2 = RnsPoly::from_signed(&c2, ctx.base_q());
        let out2 = apply_automorphism(&ctx, &p2, 3);
        assert_eq!(out2.row(0)[n - 3], 1);
    }

    #[test]
    fn automorphism_group_law() {
        // σ_a ∘ σ_b = σ_{ab mod 2n}
        let ctx = FvContext::new(FvParams::insecure_toy()).unwrap();
        let n = ctx.params().n;
        let coeffs: Vec<i64> = (0..n as i64).map(|i| i * 3 - 7).collect();
        let p = RnsPoly::from_signed(&coeffs, ctx.base_q());
        let a = 3usize;
        let b = 5usize;
        let lhs = apply_automorphism(&ctx, &apply_automorphism(&ctx, &p, b), a);
        let rhs = apply_automorphism(&ctx, &p, (a * b) % (2 * n));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn galois_ciphertext_decrypts_to_permuted_plaintext() {
        let (ctx, _) = batching_ctx();
        let mut rng = StdRng::seed_from_u64(51);
        let (sk, pk, _) = keygen(&ctx, &mut rng);
        let n = ctx.params().n;
        let coeffs: Vec<u64> = (0..n as u64).map(|i| i % 7681).collect();
        let pt = Plaintext::new(coeffs, 7681, n);
        let ct = encrypt(&ctx, &pk, &pt, &mut rng);
        let g = 3;
        let key = GaloisKey::generate(&ctx, &sk, g, &mut rng);
        let rotated = apply_galois(&ctx, &ct, &key);
        let got = decrypt(&ctx, &sk, &rotated);
        // Expected: the plaintext polynomial under σ_g.
        let expect_rns =
            apply_automorphism(&ctx, &RnsPoly::from_signed(&pt.centered(), ctx.base_q()), g);
        // Compare modulo t by re-deriving plaintext coefficients.
        let m0 = ctx.base_q().modulus(0);
        for c in 0..n {
            let signed = m0.to_centered(expect_rns.row(0)[c]);
            let expect = signed.rem_euclid(7681) as u64;
            assert_eq!(got.coeffs()[c], expect, "coeff {c}");
        }
    }

    #[test]
    fn galois_permutes_slots_bijectively() {
        let (ctx, enc) = batching_ctx();
        let mut rng = StdRng::seed_from_u64(52);
        let (sk, pk, _) = keygen(&ctx, &mut rng);
        let vals: Vec<u64> = (0..256u64).map(|i| i + 1).collect();
        let ct = encrypt(&ctx, &pk, &enc.encode(&vals), &mut rng);
        let key = GaloisKey::generate(&ctx, &sk, 3, &mut rng);
        let rotated = apply_galois(&ctx, &ct, &key);
        let got = enc.decode(&decrypt(&ctx, &sk, &rotated));
        // Must be a permutation of the inputs (all values distinct).
        let mut sorted = got.clone();
        sorted.sort_unstable();
        let mut expect = vals.clone();
        expect.sort_unstable();
        assert_eq!(sorted, expect);
        assert_ne!(got, vals, "non-trivial permutation");
    }

    #[test]
    fn sum_slots_puts_total_everywhere() {
        let (ctx, enc) = batching_ctx();
        let mut rng = StdRng::seed_from_u64(53);
        let (sk, pk, _) = keygen(&ctx, &mut rng);
        let vals: Vec<u64> = (0..256u64).map(|i| i % 10).collect();
        let total: u64 = vals.iter().sum::<u64>() % 7681;
        let ct = encrypt(&ctx, &pk, &enc.encode(&vals), &mut rng);
        let keys = GaloisKeySet::for_slot_sum(&ctx, &sk, &mut rng);
        assert_eq!(keys.keys().len(), 8, "log2(128) + 1 keys for n=256");
        let summed = sum_slots(&ctx, &ct, &keys);
        let got = enc.decode(&decrypt(&ctx, &sk, &summed));
        assert!(
            got.iter().all(|&v| v == total),
            "all slots = {total}, got {:?}",
            &got[..4]
        );
    }

    #[test]
    #[should_panic(expected = "invalid Galois exponent")]
    fn even_exponent_rejected() {
        let ctx = FvContext::new(FvParams::insecure_toy()).unwrap();
        let p = RnsPoly::zero(ctx.params().k(), ctx.params().n);
        let _ = apply_automorphism(&ctx, &p, 4);
    }
}
