//! Galois automorphisms, key switching, and **hoisted** rotations.
//!
//! The map `σ_g : a(x) ↦ a(x^g)` (odd `g`, modulo `x^n + 1`) permutes the
//! SIMD slots of a batched plaintext. Applying it to a ciphertext yields an
//! encryption under the permuted secret `σ_g(s)`; a [`GaloisKey`] switches
//! it back to `s` using the same RNS-digit machinery as relinearization
//! (§II-B's `WordDecomp` + `SoP`).
//!
//! # The hoisted key-switch datapath
//!
//! A rotation has two very different halves. The expensive half — digit
//! decomposition of `c1` and the `k` forward NTTs of each spread digit
//! (`k²` row transforms in total) — does **not depend on the rotation
//! amount**. Only the cheap half does: an automorphism permutation and the
//! summation-of-products against that exponent's switching key. This module
//! therefore decomposes *first* and permutes *second* (Halevi–Shoup
//! hoisting, as in HElib):
//!
//! 1. [`HoistedCiphertext::new`] computes `D_i = NTT(spread(c1 mod q_i))`
//!    **once** — the σ-independent part.
//! 2. Each rotation applies `σ_g` to the NTT-domain digits as a pure index
//!    permutation ([`hefv_math::ntt::GaloisPermutation`]; the evaluation
//!    points absorb every sign flip) fused into the key inner product, then
//!    runs two inverse NTTs.
//!
//! Correctness rests on two invariants:
//!
//! * **Permutation invariant.** `NTT(σ_g(a))[t] = NTT(a)[π_g(t)]` with
//!   `π_g(t) = brev((g·(2·brev(t)+1) mod 2n − 1)/2)` — the same table for
//!   every prime, because each residue row uses the same index↦exponent
//!   map.
//! * **Digit-order invariant.** `Σ_i σ_g(D_i(c1))·h_i = σ_g(c1)` because
//!   the gadget constants `h_i` are scalars (σ-invariant) and `σ_g` is a
//!   ring homomorphism — so decompose-then-permute is a valid key-switch
//!   decomposition of `σ_g(c1)`, and one decomposition serves *every*
//!   rotation of the same ciphertext.
//!
//! [`apply_galois`] is exactly a hoist of one rotation, so a property-test
//! suite pins [`HoistedCiphertext::rotate`] **bit-identical** to it across
//! random `(q, n, g)`. The pre-hoisting permute-first implementation is
//! kept as [`apply_galois_reference`] / [`sum_slots_reference`] — the
//! oracle for semantic tests and the "per-rotation path" baseline the
//! rotation benchmarks measure against (`benches/rotate.rs`).
//!
//! [`sum_slots`] folds a ciphertext over the whole Galois group. The
//! classic rotate-and-add doubling trick rotates an *evolving* accumulator,
//! which hoisting cannot help — so the key set groups
//! [`HOIST_GROUP_ROUNDS`] doubling rounds and applies the identity
//! `Π_{r∈G}(1 + σ_r) = Σ_{S⊆G} σ_{Π S}`: one decomposition of the
//! accumulator serves the `2^|G|−1` rotations of a group, with all their
//! SoPs accumulated in the NTT domain and a single pair of inverse NTTs per
//! group. [`GaloisKeySet::for_slot_sum`] generates the subset-product keys
//! this needs.

use crate::context::FvContext;
use crate::encrypt::Ciphertext;
use crate::keys::SecretKey;
use crate::rnspoly::{Domain, RnsPoly};
use crate::sampler;
use crate::scratch::Arena;
use hefv_math::ntt::GaloisPermutation;
use hefv_math::rns::RnsBasis;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Checks that `g` is a valid automorphism exponent (odd, in `[1, 2n)`).
pub fn is_valid_exponent(g: usize, n: usize) -> bool {
    g % 2 == 1 && g < 2 * n
}

/// Applies `σ_g` to a coefficient-domain RNS polynomial: coefficient `i`
/// moves to position `i·g mod 2n`, negated when the product wraps past
/// `n` (since `x^n = -1`).
///
/// # Panics
///
/// Panics if the polynomial is in NTT domain or `g` is invalid.
pub fn apply_automorphism(ctx: &FvContext, poly: &RnsPoly, g: usize) -> RnsPoly {
    assert_eq!(poly.domain(), Domain::Coefficient, "automorphism domain");
    let n = poly.n();
    assert!(is_valid_exponent(g, n), "invalid Galois exponent {g}");
    let basis = ctx.base_q();
    let mut out = RnsPoly::zero(poly.k(), n);
    for r in 0..poly.k() {
        let m = *basis.modulus(r);
        let src = poly.row(r);
        let dst = out.row_mut(r);
        for (i, &c) in src.iter().enumerate() {
            let pos = (i * g) % (2 * n);
            if pos < n {
                dst[pos] = c;
            } else {
                dst[pos - n] = m.neg(c);
            }
        }
    }
    out
}

/// Applies `σ_g` to an **NTT-domain** polynomial: a pure index permutation
/// per residue row, no negations (see the module docs' permutation
/// invariant). Uses the context's cached
/// [`GaloisPermutation`] table.
///
/// # Panics
///
/// Panics if the polynomial is in coefficient domain or `g` is invalid.
pub fn apply_automorphism_ntt(ctx: &FvContext, poly: &RnsPoly, g: usize) -> RnsPoly {
    assert_eq!(poly.domain(), Domain::Ntt, "NTT-domain automorphism");
    assert!(
        is_valid_exponent(g, poly.n()),
        "invalid Galois exponent {g}"
    );
    let perm = ctx.automorphism_table(g);
    let mut out = RnsPoly::zero_in(poly.k(), poly.n(), Domain::Ntt);
    for r in 0..poly.k() {
        perm.apply(poly.row(r), out.row_mut(r));
    }
    out
}

/// Accumulates `σ_g(src)` onto `acc`, both coefficient-domain:
/// `acc[σ_g(i)] ± = src[i]`. Saves materializing the permuted polynomial on
/// the hoisted `c0` path; the target position advances incrementally (one
/// conditional subtraction per coefficient, no division).
fn add_automorphism_assign(ctx: &FvContext, acc: &mut RnsPoly, src: &RnsPoly, g: usize) {
    assert_eq!(src.domain(), Domain::Coefficient, "automorphism domain");
    assert_eq!(acc.domain(), Domain::Coefficient, "accumulator domain");
    let n = src.n();
    assert!(is_valid_exponent(g, n), "invalid Galois exponent {g}");
    let two_n = 2 * n;
    let basis = ctx.base_q();
    for r in 0..src.k() {
        let m = *basis.modulus(r);
        let dst = acc.row_mut(r);
        let mut pos = 0usize;
        for &c in src.row(r) {
            if pos < n {
                dst[pos] = m.add(dst[pos], c);
            } else {
                dst[pos - n] = m.sub(dst[pos - n], c);
            }
            pos += g;
            if pos >= two_n {
                pos -= two_n;
            }
        }
    }
}

/// A key-switching key for one Galois exponent: digit-wise encryptions of
/// `h_i · σ_g(s)` under `s`, in NTT domain.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaloisKey {
    /// The automorphism exponent.
    pub g: usize,
    ksk0: Vec<RnsPoly>,
    ksk1: Vec<RnsPoly>,
    /// 32-bit shadow copy of the key, **slot-major transposed**: entry
    /// `(j·n + t)·k + i` holds `ksk0[i]` row `j` slot `t`. Present when
    /// every prime is narrow enough for the u64-accumulating SoP fast path
    /// (see [`narrow_sop_ok`]). Built once at generation; the hot loop
    /// then reads one contiguous `k`-wide line per slot and streams half
    /// the key bytes.
    ksk0_narrow: Vec<u32>,
    ksk1_narrow: Vec<u32>,
}

impl GaloisKey {
    /// Generates the switching key for exponent `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is not a valid odd exponent.
    pub fn generate<R: Rng + ?Sized>(
        ctx: &FvContext,
        sk: &SecretKey,
        g: usize,
        rng: &mut R,
    ) -> Self {
        let n = ctx.params().n;
        assert!(is_valid_exponent(g, n), "invalid Galois exponent {g}");
        let basis = ctx.base_q();
        let k = ctx.params().k();
        // σ_g(s) in NTT domain.
        let mut s_coeff = sk.s_ntt().clone();
        s_coeff.ntt_inverse(ctx.ntt_q());
        let mut s_g = apply_automorphism(ctx, &s_coeff, g);
        s_g.ntt_forward(ctx.ntt_q());

        let mut ksk0 = Vec::with_capacity(k);
        let mut ksk1 = Vec::with_capacity(k);
        for i in 0..k {
            let mut a = sampler::uniform_poly(rng, basis, n);
            a.ntt_forward(ctx.ntt_q());
            let mut e = sampler::gaussian_poly(rng, basis, n, ctx.params().sigma);
            e.ntt_forward(ctx.ntt_q());
            let mut key0 = a.pointwise_mul(sk.s_ntt(), basis).add(&e, basis).neg(basis);
            {
                // + h_i · σ_g(s): the idempotent touches only row i.
                let m = *basis.modulus(i);
                for (d, &sc) in key0.row_mut(i).iter_mut().zip(s_g.row(i)) {
                    *d = m.add(*d, sc);
                }
            }
            ksk0.push(key0);
            ksk1.push(a);
        }
        Self::assemble(basis, g, ksk0, ksk1)
    }

    /// Reassembles a key from its digit polynomials (e.g. after a wire
    /// decode), rebuilding the narrow 32-bit shadows so the reassembled
    /// key takes the same SoP fast path as a freshly generated one.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::Wire`] when the exponent is invalid or the
    /// digit vectors disagree with the context's shape (digit count,
    /// residue count, ring degree, NTT domain).
    pub fn from_parts(
        ctx: &FvContext,
        g: usize,
        ksk0: Vec<RnsPoly>,
        ksk1: Vec<RnsPoly>,
    ) -> Result<Self, crate::Error> {
        let n = ctx.params().n;
        let k = ctx.params().k();
        if !is_valid_exponent(g, n) {
            return Err(crate::Error::Wire(format!("invalid Galois exponent {g}")));
        }
        if ksk0.len() != k || ksk1.len() != k {
            return Err(crate::Error::Wire(format!(
                "galois key has {}+{} digits, context wants {k}",
                ksk0.len(),
                ksk1.len()
            )));
        }
        for p in ksk0.iter().chain(&ksk1) {
            if p.k() != k || p.n() != n || p.domain() != Domain::Ntt {
                return Err(crate::Error::Wire(
                    "galois key digit has the wrong shape or domain".into(),
                ));
            }
        }
        Ok(Self::assemble(ctx.base_q(), g, ksk0, ksk1))
    }

    /// Builds the key struct, deriving the narrow shadows from the digits.
    fn assemble(basis: &RnsBasis, g: usize, ksk0: Vec<RnsPoly>, ksk1: Vec<RnsPoly>) -> Self {
        let k = ksk0.len();
        let (ksk0_narrow, ksk1_narrow) = if k > 0 && narrow_sop_ok(basis, k) {
            let n = ksk0[0].n();
            let transpose = |polys: &[RnsPoly]| {
                let mut out = vec![0u32; k * k * n];
                for (i, p) in polys.iter().enumerate() {
                    for j in 0..k {
                        for (t, &v) in p.row(j).iter().enumerate() {
                            out[(j * n + t) * k + i] = v as u32;
                        }
                    }
                }
                out
            };
            (transpose(&ksk0), transpose(&ksk1))
        } else {
            (Vec::new(), Vec::new())
        };
        GaloisKey {
            g,
            ksk0,
            ksk1,
            ksk0_narrow,
            ksk1_narrow,
        }
    }

    /// Number of digits.
    pub fn digits(&self) -> usize {
        self.ksk0.len()
    }

    /// `ksk0_i` in NTT domain.
    pub fn ksk0(&self, i: usize) -> &RnsPoly {
        &self.ksk0[i]
    }

    /// `ksk1_i` in NTT domain.
    pub fn ksk1(&self, i: usize) -> &RnsPoly {
        &self.ksk1[i]
    }

    /// All `ksk0` digits, in order (what the wire codec streams).
    pub fn ksk0_polys(&self) -> &[RnsPoly] {
        &self.ksk0
    }

    /// All `ksk1` digits, in order.
    pub fn ksk1_polys(&self) -> &[RnsPoly] {
        &self.ksk1
    }
}

/// Whether the u64-accumulating SoP fast path is sound for a basis: every
/// prime must fit `u32` and a whole `k`-digit dot (plus the fused `c0`
/// seed) must fit `u64` without reduction:
/// `(k·(q−1) + 1)·(q−1) < 2^64`. True for the paper's 30-bit primes with a
/// wide margin.
fn narrow_sop_ok(basis: &RnsBasis, k: usize) -> bool {
    basis.moduli().iter().all(|m| {
        let q = m.value() as u128;
        q < (1 << 32) && (k as u128 * (q - 1) + 1) * (q - 1) < (1 << 64)
    })
}

/// One ciphertext's σ-independent key-switch precomputation: the
/// NTT-domain digit decomposition of `c1`, computed once and shared by any
/// number of rotations (the Halevi–Shoup hoisting of the module docs).
///
/// On narrow (≤ 31-bit) primes the digits are stored as one slot-major
/// transposed 32-bit buffer — entry `(j·n + t)·k + i` is digit `i`, row
/// `j`, slot `t` — so a rotation's gather reads one contiguous `k`-wide
/// line per slot, matching the transposed key shadow. Wider primes fall
/// back to `k` digit polynomials packed into a flat `k² × n` `u64` buffer.
/// Either way the precomputation is a handful of arena-recyclable buffers
/// and construction allocates nothing when served from a warm [`Arena`].
#[derive(Debug)]
pub struct HoistedCiphertext {
    /// `c0`, coefficient domain.
    c0: RnsPoly,
    /// `c1`, coefficient domain (needed by the slot-sum group fold).
    c1: RnsPoly,
    /// Wide fallback: `NTT(spread(c1 mod q_i))`, rows `i·k..(i+1)·k`.
    digits: Option<RnsPoly>,
    /// Narrow fast path: the same digits, slot-major transposed `u32`.
    digits32: Option<Vec<u32>>,
    k: usize,
}

impl HoistedCiphertext {
    /// Hoists the decomposition of `ct` (allocating fresh buffers).
    pub fn new(ctx: &FvContext, ct: &Ciphertext) -> Self {
        Self::new_in(ctx, ct, &Arena::new())
    }

    /// Hoists the decomposition of `ct`, drawing every buffer from `arena`.
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext is not coefficient-domain or its shape
    /// mismatches the context.
    pub fn new_in(ctx: &FvContext, ct: &Ciphertext, arena: &Arena) -> Self {
        let k = ctx.params().k();
        let n = ctx.params().n;
        assert_eq!(ct.c1().k(), k, "ciphertext shape mismatch");
        assert_eq!(ct.c1().n(), n, "ciphertext shape mismatch");
        assert_eq!(ct.c1().domain(), Domain::Coefficient, "hoist domain");
        let mut c0 = arena.take_poly(k, n, Domain::Coefficient);
        c0.copy_from(ct.c0());
        let mut c1 = arena.take_poly(k, n, Domain::Coefficient);
        c1.copy_from(ct.c1());
        let (digits, digits32) = if narrow_sop_ok(ctx.base_q(), k) {
            let mut d32 = arena.take32(k * k * n);
            let mut scratch = arena.take_poly(k, n, Domain::Coefficient);
            decompose_narrow_into(ctx, &c1, &mut scratch, &mut d32);
            arena.recycle(scratch);
            (None, Some(d32))
        } else {
            let mut digits = arena.take_poly(k * k, n, Domain::Ntt);
            decompose_wide_into(ctx, &c1, &mut digits);
            (Some(digits), None)
        };
        HoistedCiphertext {
            c0,
            c1,
            digits,
            digits32,
            k,
        }
    }

    /// Recycles the hoisted buffers into an arena.
    pub fn recycle(self, arena: &Arena) {
        arena.recycle(self.c0);
        arena.recycle(self.c1);
        if let Some(d) = self.digits {
            arena.recycle(d);
        }
        if let Some(d32) = self.digits32 {
            arena.put32(d32);
        }
    }

    /// Dispatches one rotation's SoP accumulation onto the narrow or wide
    /// kernel, matching the digit storage built at hoist time.
    fn sop_acc(
        &self,
        basis: &RnsBasis,
        key: &GaloisKey,
        perm: &GaloisPermutation,
        c0_ntt: Option<&RnsPoly>,
        acc0: &mut RnsPoly,
        acc1: &mut RnsPoly,
    ) {
        match (&self.digits32, &self.digits) {
            (Some(d32), _) => {
                assert!(
                    !key.ksk0_narrow.is_empty(),
                    "narrow hoisted digits but key lacks the 32-bit shadow \
                     (key generated against a different basis?)"
                );
                sop_acc_narrow(basis, d32, key, perm, c0_ntt, acc0, acc1);
            }
            (None, Some(digits)) => {
                sop_acc_wide(basis, digits, key, perm, c0_ntt, acc0, acc1);
            }
            (None, None) => unreachable!("hoisted ciphertext always stores digits"),
        }
    }

    /// One hoisted rotation: permutation + key inner product + two inverse
    /// NTTs. Bit-identical to [`apply_galois`] on the source ciphertext.
    ///
    /// # Panics
    ///
    /// Panics if the key's digit count mismatches the context.
    pub fn rotate(&self, ctx: &FvContext, key: &GaloisKey) -> Ciphertext {
        self.rotate_in(ctx, key, &Arena::new())
    }

    /// [`HoistedCiphertext::rotate`] drawing its output buffers from
    /// `arena` (zero allocation once the arena is warm).
    ///
    /// # Panics
    ///
    /// Panics if the key's digit count mismatches the context.
    pub fn rotate_in(&self, ctx: &FvContext, key: &GaloisKey, arena: &Arena) -> Ciphertext {
        let (k, n) = (self.k, self.c0.n());
        assert_eq!(key.digits(), k, "digit count mismatch");
        let basis = ctx.base_q();
        let perm = ctx.automorphism_table(key.g);
        let mut acc0 = arena.take_poly_zeroed(k, n, Domain::Ntt);
        let mut acc1 = arena.take_poly_zeroed(k, n, Domain::Ntt);
        self.sop_acc(basis, key, &perm, None, &mut acc0, &mut acc1);
        acc0.ntt_inverse(ctx.ntt_q());
        acc1.ntt_inverse(ctx.ntt_q());
        // c0' = σ_g(c0) + SoP0, accumulated without materializing σ_g(c0).
        add_automorphism_assign(ctx, &mut acc0, &self.c0, key.g);
        Ciphertext { c0: acc0, c1: acc1 }
    }

    /// The slot-sum group fold: returns `ct + Σ_r σ_r(ct)` (key-switched)
    /// over the given rotation keys, with every rotation's SoP accumulated
    /// in the NTT domain — one decomposition, `|keys|` cheap rotations,
    /// one pair of inverse NTTs.
    ///
    /// # Panics
    ///
    /// Panics if any key's digit count mismatches the context.
    pub fn sum_self_plus_rotations_in<'k>(
        &self,
        ctx: &FvContext,
        keys: impl IntoIterator<Item = &'k GaloisKey>,
        arena: &Arena,
    ) -> Ciphertext {
        let (k, n) = (self.k, self.c0.n());
        let basis = ctx.base_q();
        let mut acc0 = arena.take_poly_zeroed(k, n, Domain::Ntt);
        let mut acc1 = arena.take_poly_zeroed(k, n, Domain::Ntt);
        // Σ_r σ_r(c0), accumulated in the coefficient domain. A `g = 1`
        // key (possible only with degenerate key sets) goes through the
        // same path: it is an identity key switch, which is still a valid
        // re-encryption.
        let mut c0_rot = arena.take_poly_zeroed(k, n, Domain::Coefficient);
        for key in keys {
            assert_eq!(key.digits(), k, "digit count mismatch");
            let perm = ctx.automorphism_table(key.g);
            self.sop_acc(basis, key, &perm, None, &mut acc0, &mut acc1);
            add_automorphism_assign(ctx, &mut c0_rot, &self.c0, key.g);
        }
        acc0.ntt_inverse(ctx.ntt_q());
        acc1.ntt_inverse(ctx.ntt_q());
        acc0.add_assign(&c0_rot, basis);
        acc0.add_assign(&self.c0, basis);
        acc1.add_assign(&self.c1, basis);
        arena.recycle(c0_rot);
        Ciphertext { c0: acc0, c1: acc1 }
    }
}

/// Slots the hoisted SoP processes per stack block (bounds the `u128`
/// partial-sum scratch at `2 × 8 KiB`).
const SOP_BLOCK: usize = 512;

/// Accumulates one rotation's key inner product into the NTT-domain
/// accumulators, with the automorphism permutation fused in as a gather:
///
/// `acc_b[j][t] += Σ_i digits[i·k+j][π(t)] · ksk_b[i][j][t]  (mod q_j)`
///
/// When `c0_ntt` is given (the slot-sum fold, which keeps `c0` NTT-domain
/// for its whole lifetime), the permuted `c0` value `c0[j][π(t)]` is
/// seeded into the same partial sum, so the rotation's entire `acc0`
/// contribution costs one extra gather — no separate automorphism pass.
///
/// The digit products accumulate in `u128` and reduce **once** per slot
/// (Barrett), instead of once per digit — safe because at most
/// `⌊2¹²⁸/(q−1)²⌋` terms are folded between reductions (for 30-bit primes
/// that is astronomically more than `k`; near the 62-bit modulus bound the
/// loop reduces intermittently).
fn sop_acc_wide(
    basis: &RnsBasis,
    digits: &RnsPoly,
    key: &GaloisKey,
    perm: &GaloisPermutation,
    c0_ntt: Option<&RnsPoly>,
    acc0: &mut RnsPoly,
    acc1: &mut RnsPoly,
) {
    let k = acc0.k();
    let n = acc0.n();
    let table = perm.table();
    let mut s0 = [0u128; SOP_BLOCK];
    let mut s1 = [0u128; SOP_BLOCK];
    for j in 0..k {
        let m = basis.modulus(j);
        let qm1 = (m.value() - 1) as u128;
        // How many q²-sized terms fit in u128 before a reduction is due.
        let max_terms = (u128::MAX / (qm1 * qm1).max(1)).min(usize::MAX as u128) as usize;
        let a0 = acc0.row_mut(j);
        let a1 = acc1.row_mut(j);
        let mut start = 0usize;
        while start < n {
            let w = SOP_BLOCK.min(n - start);
            let tbl = &table[start..start + w];
            match c0_ntt {
                Some(c0) => {
                    let row = c0.row(j);
                    for (s, &p) in s0[..w].iter_mut().zip(tbl) {
                        *s = row[p as usize] as u128;
                    }
                }
                None => s0[..w].fill(0),
            }
            s1[..w].fill(0);
            let mut folded = 0usize;
            for i in 0..k {
                let digit = digits.row(i * k + j);
                let k0 = &key.ksk0[i].row(j)[start..start + w];
                let k1 = &key.ksk1[i].row(j)[start..start + w];
                for (((s0t, s1t), &p), (&w0, &w1)) in s0[..w]
                    .iter_mut()
                    .zip(s1[..w].iter_mut())
                    .zip(tbl)
                    .zip(k0.iter().zip(k1))
                {
                    let d = digit[p as usize] as u128;
                    *s0t += d * w0 as u128;
                    *s1t += d * w1 as u128;
                }
                folded += 1;
                if folded >= max_terms && i + 1 < k {
                    // Large-modulus safety valve: compress the partials so
                    // the next max_terms products cannot overflow.
                    for (s0t, s1t) in s0[..w].iter_mut().zip(s1[..w].iter_mut()) {
                        *s0t = m.reduce_u128(*s0t) as u128;
                        *s1t = m.reduce_u128(*s1t) as u128;
                    }
                    folded = 1;
                }
            }
            for ((&s0t, &s1t), (a0t, a1t)) in s0[..w].iter().zip(s1[..w].iter()).zip(
                a0[start..start + w]
                    .iter_mut()
                    .zip(&mut a1[start..start + w]),
            ) {
                *a0t = m.add(*a0t, m.reduce_u128(s0t));
                *a1t = m.add(*a1t, m.reduce_u128(s1t));
            }
            start += w;
        }
    }
}

/// The u64-accumulating SoP fast path for narrow (≤ 31-bit) primes. Both
/// the hoisted digits and the key shadow are slot-major transposed, so
/// each slot's whole `k`-digit dot reads three contiguous `k`-wide lines
/// (digit line gathered at `π(t)`, two key lines at `t`), accumulates in
/// `u64` — sound by [`narrow_sop_ok`], including the fused `c0` seed — and
/// reduces once with the single-word Barrett
/// ([`hefv_math::zq::Modulus::reduce_u64`]).
///
/// The per-residue inner loop lives behind the
/// [`hefv_math::dispatch`] kernel seam (`sop_narrow_row`), so the dot
/// products run 4 digits per AVX2 lane where the hardware has them and
/// fall back to the identical scalar accumulation otherwise.
fn sop_acc_narrow(
    basis: &RnsBasis,
    digits32: &[u32],
    key: &GaloisKey,
    perm: &GaloisPermutation,
    c0_ntt: Option<&RnsPoly>,
    acc0: &mut RnsPoly,
    acc1: &mut RnsPoly,
) {
    let k = acc0.k();
    let n = acc0.n();
    debug_assert_eq!(digits32.len(), k * k * n);
    debug_assert_eq!(key.ksk0_narrow.len(), k * k * n);
    let table = perm.table();
    let kernels = hefv_math::dispatch::kernels();
    for j in 0..k {
        let m = basis.modulus(j);
        let c0_row = c0_ntt.map(|c0| c0.row(j));
        let lo = j * n * k;
        let hi = lo + n * k;
        kernels.sop_narrow_row(
            m,
            table,
            &digits32[lo..hi],
            &key.ksk0_narrow[lo..hi],
            &key.ksk1_narrow[lo..hi],
            c0_row,
            acc0.row_mut(j),
            acc1.row_mut(j),
        );
    }
}

/// Builds the wide (`u64`) hoisted digit buffer: digit `i` spread across
/// the `q` residues and forward-transformed, at rows `i·k .. (i+1)·k`.
fn decompose_wide_into(ctx: &FvContext, c1: &RnsPoly, digits: &mut RnsPoly) {
    let k = c1.k();
    let n = c1.n();
    let tables = ctx.ntt_q();
    for i in 0..k {
        let rows = digits.rows_mut(i * k, (i + 1) * k);
        ctx.spread_digit_into(c1.row(i), rows);
        for (j, row) in rows.chunks_mut(n).enumerate() {
            tables[j].forward(row);
        }
    }
}

/// Builds the narrow slot-major transposed digit buffer: each digit is
/// spread and transformed in the `k × n` u64 scratch, then scattered into
/// `d32[(j·n + t)·k + i]` (one sequential stride-`k` write pass per row).
fn decompose_narrow_into(ctx: &FvContext, c1: &RnsPoly, scratch: &mut RnsPoly, d32: &mut [u32]) {
    let k = c1.k();
    let n = c1.n();
    debug_assert_eq!(d32.len(), k * k * n);
    let tables = ctx.ntt_q();
    for i in 0..k {
        ctx.spread_digit_into(c1.row(i), scratch.flat_mut());
        for (j, row) in scratch.flat_mut().chunks_mut(n).enumerate() {
            tables[j].forward(row);
        }
        for j in 0..k {
            for (t, &v) in scratch.row(j).iter().enumerate() {
                d32[(j * n + t) * k + i] = v as u32;
            }
        }
    }
}

/// Applies `σ_g` to a ciphertext and switches back to the original key:
/// `ct' = (σc0 + SoP(σ(D(c1)), ksk0), SoP(σ(D(c1)), ksk1))`.
///
/// This *is* a hoist of exactly one rotation (decompose, then permute in
/// the NTT domain — see the module docs' digit-order invariant), so its
/// output is bit-identical to [`HoistedCiphertext::rotate`] on the same
/// ciphertext. Callers rotating one ciphertext several times should hoist
/// explicitly and amortize the decomposition.
///
/// # Panics
///
/// Panics if the key's digit count mismatches the context.
pub fn apply_galois(ctx: &FvContext, ct: &Ciphertext, key: &GaloisKey) -> Ciphertext {
    apply_galois_in(ctx, ct, key, &Arena::new())
}

/// [`apply_galois`] drawing every intermediate from `arena`.
///
/// # Panics
///
/// Panics if the key's digit count mismatches the context.
pub fn apply_galois_in(
    ctx: &FvContext,
    ct: &Ciphertext,
    key: &GaloisKey,
    arena: &Arena,
) -> Ciphertext {
    let hoisted = HoistedCiphertext::new_in(ctx, ct, arena);
    let out = hoisted.rotate_in(ctx, key, arena);
    hoisted.recycle(arena);
    out
}

/// All hoisted rotations of one ciphertext: a single decomposition serves
/// every key (returned in key order).
pub fn rotate_many(ctx: &FvContext, ct: &Ciphertext, keys: &[&GaloisKey]) -> Vec<Ciphertext> {
    rotate_many_in(ctx, ct, keys, &Arena::new())
}

/// [`rotate_many`] with every buffer — the hoisted digits and the output
/// ciphertexts — drawn from `arena`: with a warm arena (and outputs
/// recycled back once consumed) the whole batch allocates nothing.
pub fn rotate_many_in(
    ctx: &FvContext,
    ct: &Ciphertext,
    keys: &[&GaloisKey],
    arena: &Arena,
) -> Vec<Ciphertext> {
    let hoisted = HoistedCiphertext::new_in(ctx, ct, arena);
    let out = keys
        .iter()
        .map(|key| hoisted.rotate_in(ctx, key, arena))
        .collect();
    hoisted.recycle(arena);
    out
}

/// The **pre-hoisting** rotation path: permutes the ciphertext in the
/// coefficient domain first, then decomposes and transforms the permuted
/// `c1` — re-spreading the digits and re-running the `k²` forward NTTs on
/// every call. Kept in-tree as the semantic oracle and the "per-rotation"
/// baseline `benches/rotate.rs` measures hoisting against (the same role
/// `forward_strict` plays for the lazy NTT).
pub fn apply_galois_reference(ctx: &FvContext, ct: &Ciphertext, key: &GaloisKey) -> Ciphertext {
    let basis = ctx.base_q();
    let k = ctx.params().k();
    assert_eq!(key.digits(), k, "digit count mismatch");
    let n = ctx.params().n;

    let c0g = apply_automorphism(ctx, ct.c0(), key.g);
    let c1g = apply_automorphism(ctx, ct.c1(), key.g);

    let mut acc0 = RnsPoly::zero_in(k, n, Domain::Ntt);
    let mut acc1 = RnsPoly::zero_in(k, n, Domain::Ntt);
    for i in 0..k {
        let spread = ctx.spread_digit(c1g.row(i));
        let mut digit = RnsPoly::from_flat(spread, k, Domain::Coefficient);
        digit.ntt_forward(ctx.ntt_q());
        acc0.pointwise_mul_acc(&digit, &key.ksk0[i], basis);
        acc1.pointwise_mul_acc(&digit, &key.ksk1[i], basis);
    }
    acc0.ntt_inverse(ctx.ntt_q());
    acc1.ntt_inverse(ctx.ntt_q());
    Ciphertext {
        c0: c0g.add(&acc0, basis),
        c1: acc1,
    }
}

/// How many doubling rounds one hoist group covers in
/// [`GaloisKeySet::for_slot_sum`]: a group of `J` rounds folds with
/// `2^J − 1` hoisted rotations off one decomposition (subset-product
/// identity). `J = 3` balances the amortized `k²` forward NTTs against the
/// exponential growth in per-group SoPs and switching keys.
pub const HOIST_GROUP_ROUNDS: usize = 3;

/// The key set needed to fold a ciphertext over the whole Galois group:
/// the doubling-chain exponents `3^(2^i) mod 2n` plus the conjugation
/// `2n − 1`, **and** the subset-product keys that let [`sum_slots`] hoist
/// [`HOIST_GROUP_ROUNDS`] rounds at a time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaloisKeySet {
    keys: Vec<GaloisKey>,
    /// Key indices of the doubling-chain rounds, in application order
    /// (what [`sum_slots_reference`] walks).
    chain: Vec<usize>,
    /// Hoist groups: each entry lists the key indices of every non-empty
    /// subset product of up to [`HOIST_GROUP_ROUNDS`] consecutive rounds.
    groups: Vec<Vec<usize>>,
}

impl GaloisKeySet {
    /// Generates the slot-sum key set: one key per doubling round plus the
    /// subset-product keys of each hoist group (deduplicated by exponent).
    pub fn for_slot_sum<R: Rng + ?Sized>(ctx: &FvContext, sk: &SecretKey, rng: &mut R) -> Self {
        let n = ctx.params().n;
        let two_n = 2 * n;
        // The doubling-round exponents: 3^(2^i), then the conjugation.
        let mut rounds = Vec::new();
        let mut g = 3usize % two_n;
        for _ in 0..(n / 2).trailing_zeros() {
            rounds.push(g);
            g = (g * g) % two_n;
        }
        rounds.push(two_n - 1);

        let mut keys: Vec<GaloisKey> = Vec::new();
        let mut index_of = std::collections::HashMap::new();
        let mut key_for = |e: usize, rng: &mut R, keys: &mut Vec<GaloisKey>| -> usize {
            *index_of.entry(e).or_insert_with(|| {
                keys.push(GaloisKey::generate(ctx, sk, e, rng));
                keys.len() - 1
            })
        };
        let mut chain = Vec::with_capacity(rounds.len());
        let mut groups = Vec::new();
        for group_rounds in rounds.chunks(HOIST_GROUP_ROUNDS) {
            for &e in group_rounds {
                chain.push(key_for(e, rng, &mut keys));
            }
            // Every non-empty subset product of this group's rounds.
            let mut group = Vec::with_capacity((1 << group_rounds.len()) - 1);
            for mask in 1u32..(1 << group_rounds.len()) {
                let mut prod = 1usize;
                for (b, &e) in group_rounds.iter().enumerate() {
                    if mask & (1 << b) != 0 {
                        prod = (prod * e) % two_n;
                    }
                }
                group.push(key_for(prod, rng, &mut keys));
            }
            groups.push(group);
        }
        GaloisKeySet {
            keys,
            chain,
            groups,
        }
    }

    /// Reassembles a key set from its parts (e.g. after a wire decode).
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::Wire`] when a chain or group entry indexes
    /// past the key vector — the only structural invariant the fold
    /// algorithms rely on (exponent validity is checked per key by
    /// [`GaloisKey::from_parts`]).
    pub fn from_parts(
        keys: Vec<GaloisKey>,
        chain: Vec<usize>,
        groups: Vec<Vec<usize>>,
    ) -> Result<Self, crate::Error> {
        let bound = keys.len();
        if chain
            .iter()
            .chain(groups.iter().flatten())
            .any(|&i| i >= bound)
        {
            return Err(crate::Error::Wire(format!(
                "galois key set indexes past its {bound} keys"
            )));
        }
        Ok(GaloisKeySet {
            keys,
            chain,
            groups,
        })
    }

    /// The contained keys (chain and subset-product keys alike).
    pub fn keys(&self) -> &[GaloisKey] {
        &self.keys
    }

    /// Number of doubling rounds a slot sum performs (`log2(n)`).
    pub fn rounds(&self) -> usize {
        self.chain.len()
    }

    /// Key indices of the doubling-chain rounds, in order.
    pub fn chain(&self) -> &[usize] {
        &self.chain
    }

    /// The hoist groups (key indices of each group's subset products).
    pub fn groups(&self) -> &[Vec<usize>] {
        &self.groups
    }

    /// Looks up the key for an exponent, if present.
    pub fn key_for(&self, g: usize) -> Option<&GaloisKey> {
        self.keys.iter().find(|k| k.g == g)
    }
}

/// Sums all SIMD slots: afterwards every slot holds `Σ_j slot_j`.
///
/// Runs the hoisted group fold described in the module docs: per hoist
/// group, one digit decomposition of the accumulator serves every subset
/// rotation, and `acc ← Σ_{S⊆G} σ_{Π S}(acc)` advances
/// [`HOIST_GROUP_ROUNDS`] doubling rounds at once.
pub fn sum_slots(ctx: &FvContext, ct: &Ciphertext, keys: &GaloisKeySet) -> Ciphertext {
    sum_slots_in(ctx, ct, keys, &Arena::new())
}

/// [`sum_slots`] drawing every intermediate from `arena`.
///
/// The fold keeps `c0` in the **NTT domain for its entire lifetime**: a
/// rotation's `c0` contribution is then one fused gather inside the SoP
/// pass (no automorphism scatter, no per-group inverse transform for
/// `c0`), and only `c1` — which each group must re-decompose — round-trips
/// through the coefficient domain. One digit buffer is reused across all
/// groups.
pub fn sum_slots_in(
    ctx: &FvContext,
    ct: &Ciphertext,
    keys: &GaloisKeySet,
    arena: &Arena,
) -> Ciphertext {
    if keys.groups().is_empty() {
        return ct.clone();
    }
    let basis = ctx.base_q();
    let k = ctx.params().k();
    let n = ctx.params().n;
    assert_eq!(ct.c0().k(), k, "ciphertext shape mismatch");
    let tables = ctx.ntt_q();

    // The evolving accumulator: c0 held in NTT domain, c1 in coefficient
    // domain (the decomposition needs coefficients).
    let mut c0_ntt = arena.take_poly(k, n, Domain::Coefficient);
    c0_ntt.copy_from(ct.c0());
    c0_ntt.ntt_forward(tables);
    let mut c1 = arena.take_poly(k, n, Domain::Coefficient);
    c1.copy_from(ct.c1());

    // Narrow fast path only if the basis qualifies AND every key carries
    // its 32-bit shadow.
    let narrow =
        narrow_sop_ok(ctx.base_q(), k) && keys.keys.iter().all(|key| !key.ksk0_narrow.is_empty());
    let mut digits = (!narrow).then(|| arena.take_poly(k * k, n, Domain::Ntt));
    let mut digits32 = narrow.then(|| arena.take32(k * k * n));
    let mut scratch = narrow.then(|| arena.take_poly(k, n, Domain::Coefficient));
    let mut acc0 = arena.take_poly_zeroed(k, n, Domain::Ntt);
    for group in keys.groups() {
        // Decompose the current c1 (the group's hoisted precomputation).
        match (&mut digits32, &mut digits) {
            (Some(d32), _) => {
                decompose_narrow_into(ctx, &c1, scratch.as_mut().expect("narrow scratch"), d32);
            }
            (None, Some(d)) => decompose_wide_into(ctx, &c1, d),
            (None, None) => unreachable!(),
        }
        acc0.flat_mut().fill(0);
        let mut acc1 = arena.take_poly_zeroed(k, n, Domain::Ntt);
        for &ki in group {
            let key = &keys.keys[ki];
            let perm = ctx.automorphism_table(key.g);
            match (&digits32, &digits) {
                (Some(d32), _) => {
                    sop_acc_narrow(basis, d32, key, &perm, Some(&c0_ntt), &mut acc0, &mut acc1);
                }
                (None, Some(d)) => {
                    sop_acc_wide(basis, d, key, &perm, Some(&c0_ntt), &mut acc0, &mut acc1);
                }
                (None, None) => unreachable!(),
            }
        }
        // C0 ← C0 + Σ_r (π_r(C0) + SoP0_r): still NTT-domain, no inverse.
        c0_ntt.add_assign(&acc0, basis);
        // c1 ← c1 + InvNTT(Σ_r SoP1_r): the only transform this group pays
        // beyond the decomposition.
        acc1.ntt_inverse(tables);
        c1.add_assign(&acc1, basis);
        arena.recycle(acc1);
    }
    if let Some(d) = digits {
        arena.recycle(d);
    }
    if let Some(d32) = digits32 {
        arena.put32(d32);
    }
    if let Some(s) = scratch {
        arena.recycle(s);
    }
    arena.recycle(acc0);
    c0_ntt.ntt_inverse(tables);
    Ciphertext { c0: c0_ntt, c1 }
}

/// The **pre-hoisting** slot sum: `log2(n)` rotate-and-add doubling rounds,
/// each through [`apply_galois_reference`] — re-decomposing and
/// re-transforming on every rotation. The baseline `benches/rotate.rs`
/// measures [`sum_slots`] against.
pub fn sum_slots_reference(ctx: &FvContext, ct: &Ciphertext, keys: &GaloisKeySet) -> Ciphertext {
    let mut acc = ct.clone();
    for &idx in keys.chain() {
        let rotated = apply_galois_reference(ctx, &acc, &keys.keys[idx]);
        acc = crate::eval::add(ctx, &acc, &rotated);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{BatchEncoder, Plaintext};
    use crate::encrypt::{decrypt, encrypt};
    use crate::keys::keygen;
    use crate::params::FvParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn batching_ctx() -> (FvContext, BatchEncoder) {
        let mut p = FvParams::insecure_medium();
        p.t = 7681;
        let ctx = FvContext::new(p).unwrap();
        let enc = BatchEncoder::new(7681, 256).unwrap();
        (ctx, enc)
    }

    #[test]
    fn automorphism_is_ring_homomorphism_on_plaintexts() {
        // σ_g(x^i) has the right sign structure: x -> x^g.
        let ctx = FvContext::new(FvParams::insecure_toy()).unwrap();
        let n = ctx.params().n;
        let mut coeffs = vec![0i64; n];
        coeffs[1] = 1; // the polynomial x
        let p = RnsPoly::from_signed(&coeffs, ctx.base_q());
        let g = 3;
        let out = apply_automorphism(&ctx, &p, g);
        // x^3 has coefficient 1 at position 3
        assert_eq!(out.row(0)[3], 1);
        assert!(out.row(0).iter().filter(|&&c| c != 0).count() == 1);
    }

    #[test]
    fn automorphism_wraps_with_negation() {
        let ctx = FvContext::new(FvParams::insecure_toy()).unwrap();
        let n = ctx.params().n;
        let mut coeffs = vec![0i64; n];
        coeffs[1] = 1; // the polynomial x
        let p = RnsPoly::from_signed(&coeffs, ctx.base_q());
        // g = 2n−1: x^(2n−1) = x^(2n)·x^(−1) = x^(n−1)·x^n·x^(−n)… directly:
        // 2n−1 ≥ n, so the image lands at position n−1 with a sign flip
        // (x^(2n−1) = −x^(n−1) since x^n = −1).
        let out = apply_automorphism(&ctx, &p, 2 * n - 1);
        let m = ctx.base_q().modulus(0);
        assert_eq!(out.row(0)[n - 1], m.neg(1));
        // And x^(3n−3) = x^(n−3) with *no* flip (x^(2n) = 1): check via g=3
        // on x^(n−1).
        let mut c2 = vec![0i64; n];
        c2[n - 1] = 1;
        let p2 = RnsPoly::from_signed(&c2, ctx.base_q());
        let out2 = apply_automorphism(&ctx, &p2, 3);
        assert_eq!(out2.row(0)[n - 3], 1);
    }

    #[test]
    fn automorphism_group_law() {
        // σ_a ∘ σ_b = σ_{ab mod 2n}
        let ctx = FvContext::new(FvParams::insecure_toy()).unwrap();
        let n = ctx.params().n;
        let coeffs: Vec<i64> = (0..n as i64).map(|i| i * 3 - 7).collect();
        let p = RnsPoly::from_signed(&coeffs, ctx.base_q());
        let a = 3usize;
        let b = 5usize;
        let lhs = apply_automorphism(&ctx, &apply_automorphism(&ctx, &p, b), a);
        let rhs = apply_automorphism(&ctx, &p, (a * b) % (2 * n));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn ntt_domain_automorphism_matches_coefficient_domain() {
        let ctx = FvContext::new(FvParams::insecure_toy()).unwrap();
        let n = ctx.params().n;
        let coeffs: Vec<i64> = (0..n as i64).map(|i| i * 5 - 11).collect();
        let p = RnsPoly::from_signed(&coeffs, ctx.base_q());
        for g in [3usize, 5, 2 * n - 1] {
            let mut via_coeff = apply_automorphism(&ctx, &p, g);
            via_coeff.ntt_forward(ctx.ntt_q());
            let mut p_ntt = p.clone();
            p_ntt.ntt_forward(ctx.ntt_q());
            let via_perm = apply_automorphism_ntt(&ctx, &p_ntt, g);
            assert_eq!(via_perm, via_coeff, "g={g}");
        }
    }

    #[test]
    fn galois_ciphertext_decrypts_to_permuted_plaintext() {
        let (ctx, _) = batching_ctx();
        let mut rng = StdRng::seed_from_u64(51);
        let (sk, pk, _) = keygen(&ctx, &mut rng);
        let n = ctx.params().n;
        let coeffs: Vec<u64> = (0..n as u64).map(|i| i % 7681).collect();
        let pt = Plaintext::new(coeffs, 7681, n);
        let ct = encrypt(&ctx, &pk, &pt, &mut rng);
        let g = 3;
        let key = GaloisKey::generate(&ctx, &sk, g, &mut rng);
        let rotated = apply_galois(&ctx, &ct, &key);
        let got = decrypt(&ctx, &sk, &rotated);
        // Expected: the plaintext polynomial under σ_g.
        let expect_rns =
            apply_automorphism(&ctx, &RnsPoly::from_signed(&pt.centered(), ctx.base_q()), g);
        // Compare modulo t by re-deriving plaintext coefficients.
        let m0 = ctx.base_q().modulus(0);
        for c in 0..n {
            let signed = m0.to_centered(expect_rns.row(0)[c]);
            let expect = signed.rem_euclid(7681) as u64;
            assert_eq!(got.coeffs()[c], expect, "coeff {c}");
        }
    }

    #[test]
    fn reference_and_hoisted_rotation_decrypt_identically() {
        // The permute-first oracle and the hoisted decompose-first path use
        // different (equally valid) digit decompositions, so ciphertext
        // bits differ — but the decrypted plaintext must match exactly.
        let (ctx, enc) = batching_ctx();
        let mut rng = StdRng::seed_from_u64(57);
        let (sk, pk, _) = keygen(&ctx, &mut rng);
        let vals: Vec<u64> = (0..256u64).map(|i| i * 3 + 1).collect();
        let ct = encrypt(&ctx, &pk, &enc.encode(&vals), &mut rng);
        let key = GaloisKey::generate(&ctx, &sk, 3, &mut rng);
        let hoisted = apply_galois(&ctx, &ct, &key);
        let reference = apply_galois_reference(&ctx, &ct, &key);
        assert_ne!(hoisted, reference, "independent decompositions");
        assert_eq!(
            enc.decode(&decrypt(&ctx, &sk, &hoisted)),
            enc.decode(&decrypt(&ctx, &sk, &reference)),
        );
    }

    #[test]
    fn hoisted_rotation_is_bit_identical_to_apply_galois() {
        let (ctx, enc) = batching_ctx();
        let mut rng = StdRng::seed_from_u64(58);
        let (sk, pk, _) = keygen(&ctx, &mut rng);
        let vals: Vec<u64> = (0..256u64).map(|i| (i * 7 + 2) % 7681).collect();
        let ct = encrypt(&ctx, &pk, &enc.encode(&vals), &mut rng);
        let n = ctx.params().n;
        let keys: Vec<GaloisKey> = [3usize, 9, 2 * n - 1]
            .iter()
            .map(|&g| GaloisKey::generate(&ctx, &sk, g, &mut rng))
            .collect();
        // One decomposition, three rotations — each must equal the
        // one-shot path bit for bit.
        let hoisted = HoistedCiphertext::new(&ctx, &ct);
        for key in &keys {
            assert_eq!(
                hoisted.rotate(&ctx, key),
                apply_galois(&ctx, &ct, key),
                "g={}",
                key.g
            );
        }
        let many = rotate_many(&ctx, &ct, &keys.iter().collect::<Vec<_>>());
        for (out, key) in many.iter().zip(&keys) {
            assert_eq!(out, &apply_galois(&ctx, &ct, key), "g={}", key.g);
        }
    }

    #[test]
    fn galois_permutes_slots_bijectively() {
        let (ctx, enc) = batching_ctx();
        let mut rng = StdRng::seed_from_u64(52);
        let (sk, pk, _) = keygen(&ctx, &mut rng);
        let vals: Vec<u64> = (0..256u64).map(|i| i + 1).collect();
        let ct = encrypt(&ctx, &pk, &enc.encode(&vals), &mut rng);
        let key = GaloisKey::generate(&ctx, &sk, 3, &mut rng);
        let rotated = apply_galois(&ctx, &ct, &key);
        let got = enc.decode(&decrypt(&ctx, &sk, &rotated));
        // Must be a permutation of the inputs (all values distinct).
        let mut sorted = got.clone();
        sorted.sort_unstable();
        let mut expect = vals.clone();
        expect.sort_unstable();
        assert_eq!(sorted, expect);
        assert_ne!(got, vals, "non-trivial permutation");
    }

    #[test]
    fn sum_slots_puts_total_everywhere() {
        let (ctx, enc) = batching_ctx();
        let mut rng = StdRng::seed_from_u64(53);
        let (sk, pk, _) = keygen(&ctx, &mut rng);
        let vals: Vec<u64> = (0..256u64).map(|i| i % 10).collect();
        let total: u64 = vals.iter().sum::<u64>() % 7681;
        let ct = encrypt(&ctx, &pk, &enc.encode(&vals), &mut rng);
        let keys = GaloisKeySet::for_slot_sum(&ctx, &sk, &mut rng);
        assert_eq!(keys.rounds(), 8, "log2(128) + 1 rounds for n=256");
        // 8 rounds in groups of 3: (7 + 7 + 3) subset-product keys.
        assert_eq!(keys.groups().len(), 3);
        assert_eq!(keys.keys().len(), 17);
        let summed = sum_slots(&ctx, &ct, &keys);
        let got = enc.decode(&decrypt(&ctx, &sk, &summed));
        assert!(
            got.iter().all(|&v| v == total),
            "all slots = {total}, got {:?}",
            &got[..4]
        );
        // The per-rotation reference computes the same sum.
        let reference = sum_slots_reference(&ctx, &ct, &keys);
        let got_ref = enc.decode(&decrypt(&ctx, &sk, &reference));
        assert_eq!(got, got_ref);
    }

    #[test]
    fn hoisted_group_fold_matches_sequential_rounds() {
        // One hoist group must advance the accumulator exactly like its
        // rounds applied one at a time (same decomposition order, so the
        // comparison is on decrypted values).
        let (ctx, enc) = batching_ctx();
        let mut rng = StdRng::seed_from_u64(54);
        let (sk, pk, _) = keygen(&ctx, &mut rng);
        let vals: Vec<u64> = (0..256u64).map(|i| (i * 11 + 5) % 97).collect();
        let ct = encrypt(&ctx, &pk, &enc.encode(&vals), &mut rng);
        let keys = GaloisKeySet::for_slot_sum(&ctx, &sk, &mut rng);
        // Sequential doubling over the first group's rounds.
        let first_rounds: Vec<usize> = keys.chain()[..HOIST_GROUP_ROUNDS].to_vec();
        let mut seq = ct.clone();
        for idx in first_rounds {
            let rot = apply_galois(&ctx, &seq, &keys.keys()[idx]);
            seq = crate::eval::add(&ctx, &seq, &rot);
        }
        // The hoisted group fold.
        let arena = Arena::new();
        let hoisted = HoistedCiphertext::new_in(&ctx, &ct, &arena);
        let folded = hoisted.sum_self_plus_rotations_in(
            &ctx,
            keys.groups()[0].iter().map(|&i| &keys.keys()[i]),
            &arena,
        );
        assert_eq!(
            enc.decode(&decrypt(&ctx, &sk, &folded)),
            enc.decode(&decrypt(&ctx, &sk, &seq)),
        );
    }

    #[test]
    #[should_panic(expected = "invalid Galois exponent")]
    fn even_exponent_rejected() {
        let ctx = FvContext::new(FvParams::insecure_toy()).unwrap();
        let p = RnsPoly::zero(ctx.params().k(), ctx.params().n);
        let _ = apply_automorphism(&ctx, &p, 4);
    }
}
