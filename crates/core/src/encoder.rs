//! Plaintexts and encoders.
//!
//! * [`Plaintext`] — an element of `R_t`.
//! * [`IntegerEncoder`] — the signed binary (base-2) encoder the FV paper
//!   uses for integer workloads: an integer becomes a low-degree polynomial
//!   with coefficients in `{-1, 0, 1}`; decoding evaluates at `x = 2`.
//! * [`BatchEncoder`] — SIMD slot packing when `t` is prime and
//!   `t ≡ 1 (mod 2n)` (e.g. `t = 65537`), used by the application layer for
//!   vectorized workloads such as the smart-meter aggregation.

use crate::context::FvContext;
use crate::error::Error;
use hefv_math::ntt::NttTable;
use hefv_math::zq::Modulus;
use serde::{Deserialize, Serialize};

/// A plaintext polynomial: coefficients in `[0, t)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Plaintext {
    coeffs: Vec<u64>,
    t: u64,
}

impl Plaintext {
    /// Builds from raw coefficients, reducing mod `t`.
    pub fn new(coeffs: Vec<u64>, t: u64, n: usize) -> Self {
        let mut coeffs: Vec<u64> = coeffs.into_iter().map(|c| c % t).collect();
        coeffs.resize(n, 0);
        Plaintext { coeffs, t }
    }

    /// Builds from signed coefficients.
    pub fn from_signed(coeffs: &[i64], t: u64, n: usize) -> Self {
        let mut out: Vec<u64> = coeffs
            .iter()
            .map(|&c| c.rem_euclid(t as i64) as u64)
            .collect();
        out.resize(n, 0);
        Plaintext { coeffs: out, t }
    }

    /// The zero plaintext.
    pub fn zero(t: u64, n: usize) -> Self {
        Plaintext {
            coeffs: vec![0; n],
            t,
        }
    }

    /// Coefficients in `[0, t)`.
    pub fn coeffs(&self) -> &[u64] {
        &self.coeffs
    }

    /// The plaintext modulus.
    pub fn t(&self) -> u64 {
        self.t
    }

    /// Centered coefficient view (values in `(-t/2, t/2]`).
    pub fn centered(&self) -> Vec<i64> {
        self.coeffs
            .iter()
            .map(|&c| {
                if c > self.t / 2 {
                    c as i64 - self.t as i64
                } else {
                    c as i64
                }
            })
            .collect()
    }
}

/// Signed binary integer encoder.
///
/// # Example
///
/// ```
/// use hefv_core::encoder::IntegerEncoder;
/// let enc = IntegerEncoder::new(1 << 16, 64);
/// let pt = enc.encode(-37);
/// assert_eq!(enc.decode(&pt), -37);
/// ```
#[derive(Debug, Clone)]
pub struct IntegerEncoder {
    t: u64,
    n: usize,
}

impl IntegerEncoder {
    /// Creates an encoder for plaintext modulus `t` and ring degree `n`.
    pub fn new(t: u64, n: usize) -> Self {
        IntegerEncoder { t, n }
    }

    /// Encodes a signed integer as a signed-binary polynomial.
    ///
    /// # Panics
    ///
    /// Panics if `|value|` needs more than `n/2` bits (the top half of the
    /// ring is reserved so products do not wrap around `x^n + 1`).
    pub fn encode(&self, value: i64) -> Plaintext {
        let neg = value < 0;
        let mut mag = value.unsigned_abs();
        let mut coeffs = vec![0i64; self.n];
        let mut i = 0;
        while mag > 0 {
            assert!(i < self.n / 2, "integer too wide for degree {}", self.n);
            if mag & 1 == 1 {
                coeffs[i] = if neg { -1 } else { 1 };
            }
            mag >>= 1;
            i += 1;
        }
        Plaintext::from_signed(&coeffs, self.t, self.n)
    }

    /// Decodes by evaluating the centered polynomial at `x = 2`.
    ///
    /// Correct as long as the accumulated coefficient growth stayed below
    /// `t/2` (the usual integer-encoder contract).
    pub fn decode(&self, pt: &Plaintext) -> i64 {
        let mut acc: i64 = 0;
        for &c in pt.centered().iter().rev() {
            acc = acc * 2 + c;
        }
        acc
    }
}

/// SIMD batch encoder: packs `n` values of `Z_t` into the CRT slots of
/// `R_t` via an NTT over `Z_t` (requires `t` prime, `t ≡ 1 mod 2n`).
///
/// # Example
///
/// ```
/// use hefv_core::encoder::BatchEncoder;
/// let enc = BatchEncoder::new(65537, 4096).unwrap();
/// let vals: Vec<u64> = (0..4096).collect();
/// let pt = enc.encode(&vals);
/// assert_eq!(enc.decode(&pt), vals);
/// ```
#[derive(Debug, Clone)]
pub struct BatchEncoder {
    t: u64,
    n: usize,
    table: NttTable,
}

impl BatchEncoder {
    /// Builds the slot transform.
    ///
    /// # Errors
    ///
    /// Returns an error if `t` is not a prime `≡ 1 (mod 2n)`.
    pub fn new(t: u64, n: usize) -> Result<Self, Error> {
        if !hefv_math::primes::is_prime(t) {
            return Err(Error::Encoding(format!("t={t} is not prime")));
        }
        let table = NttTable::new(Modulus::new(t), n).map_err(Error::Encoding)?;
        Ok(BatchEncoder { t, n, table })
    }

    /// Number of slots (`n`).
    pub fn slots(&self) -> usize {
        self.n
    }

    /// Packs `values` (at most `n` of them) into slots.
    ///
    /// # Panics
    ///
    /// Panics if more than `n` values are given.
    pub fn encode(&self, values: &[u64]) -> Plaintext {
        assert!(values.len() <= self.n, "too many slot values");
        let mut slots: Vec<u64> = values.iter().map(|&v| v % self.t).collect();
        slots.resize(self.n, 0);
        // Slot values are the NTT-domain points; the plaintext polynomial
        // is their inverse transform.
        self.table.inverse(&mut slots);
        Plaintext::new(slots, self.t, self.n)
    }

    /// Unpacks a plaintext into its `n` slot values.
    pub fn decode(&self, pt: &Plaintext) -> Vec<u64> {
        let mut slots = pt.coeffs().to_vec();
        self.table.forward(&mut slots);
        slots
    }
}

/// Reduces a plaintext into RNS rows over the `q` basis (used by
/// encryption: the `Encoder` block of the paper's Fig. 1).
pub fn plaintext_to_rns(ctx: &FvContext, pt: &Plaintext) -> crate::rnspoly::RnsPoly {
    let centered = pt.centered();
    crate::rnspoly::RnsPoly::from_signed(&centered, ctx.base_q())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plaintext_reduction_and_centering() {
        let pt = Plaintext::new(vec![0, 1, 15, 16, 17], 16, 8);
        assert_eq!(pt.coeffs(), &[0, 1, 15, 0, 1, 0, 0, 0]);
        assert_eq!(pt.centered()[2], -1);
    }

    #[test]
    fn integer_encoder_roundtrip() {
        let enc = IntegerEncoder::new(1 << 16, 64);
        for v in [-1000i64, -37, -1, 0, 1, 2, 255, 31337] {
            assert_eq!(enc.decode(&enc.encode(v)), v, "v={v}");
        }
    }

    #[test]
    #[should_panic(expected = "too wide")]
    fn integer_encoder_rejects_wide() {
        let enc = IntegerEncoder::new(1 << 16, 8);
        enc.encode(1 << 10);
    }

    #[test]
    fn batch_encoder_roundtrip() {
        let enc = BatchEncoder::new(65537, 64).unwrap();
        let vals: Vec<u64> = (0..64u64).map(|i| i * i + 1).collect();
        assert_eq!(enc.decode(&enc.encode(&vals)), vals);
    }

    #[test]
    fn batch_encoder_slotwise_products() {
        // Slot structure: polynomial product = slot-wise product.
        let n = 64;
        let t = 65537;
        let enc = BatchEncoder::new(t, n).unwrap();
        let a: Vec<u64> = (0..n as u64).map(|i| i + 1).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| 2 * i + 3).collect();
        let pa = enc.encode(&a);
        let pb = enc.encode(&b);
        // multiply in R_t with schoolbook negacyclic reduction
        let m = Modulus::new(t);
        let prod = hefv_math::ntt::negacyclic_mul_schoolbook(pa.coeffs(), pb.coeffs(), &m);
        let got = enc.decode(&Plaintext::new(prod, t, n));
        let expect: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x * y % t).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn batch_encoder_rejects_composite_t() {
        assert!(BatchEncoder::new(65536, 64).is_err());
    }
}
