//! Key material: secret key, public key, relinearization key.
//!
//! The relinearization key follows the RNS gadget the paper's *faster*
//! architecture uses: `WordDecomp` with word size `w = 2^30` aligned to the
//! RNS limbs, so each relinearization key is "a vector of six polynomials"
//! (§VI-C). Digit `i` of a polynomial `a ∈ R_q` is simply its residue row
//! `a mod q_i`, and the gadget constants are the CRT idempotents
//! `h_i = q̃_i·(q/q_i) mod q` (so `Σ_i a_i·h_i ≡ a (mod q)`).

use crate::context::FvContext;
use crate::rnspoly::RnsPoly;
use crate::sampler;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The secret key `s` (ternary), stored in NTT domain over the `q` basis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SecretKey {
    /// `s` in NTT domain.
    pub(crate) s_ntt: RnsPoly,
}

impl SecretKey {
    /// Samples a fresh ternary secret.
    pub fn generate<R: Rng + ?Sized>(ctx: &FvContext, rng: &mut R) -> Self {
        let mut s = sampler::ternary_poly(rng, ctx.base_q(), ctx.params().n);
        s.ntt_forward(ctx.ntt_q());
        SecretKey { s_ntt: s }
    }

    /// The secret in NTT domain (needed by decryption and noise analysis).
    pub fn s_ntt(&self) -> &RnsPoly {
        &self.s_ntt
    }
}

/// The public key `(p0, p1) = (-(a·s + e), a)`, stored in NTT domain.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PublicKey {
    pub(crate) p0_ntt: RnsPoly,
    pub(crate) p1_ntt: RnsPoly,
}

impl PublicKey {
    /// Derives a public key from the secret.
    pub fn generate<R: Rng + ?Sized>(ctx: &FvContext, sk: &SecretKey, rng: &mut R) -> Self {
        let basis = ctx.base_q();
        let n = ctx.params().n;
        let mut a = sampler::uniform_poly(rng, basis, n);
        a.ntt_forward(ctx.ntt_q());
        let mut e = sampler::gaussian_poly(rng, basis, n, ctx.params().sigma);
        e.ntt_forward(ctx.ntt_q());
        // p0 = -(a*s + e)
        let p0 = a.pointwise_mul(&sk.s_ntt, basis).add(&e, basis).neg(basis);
        PublicKey {
            p0_ntt: p0,
            p1_ntt: a,
        }
    }

    /// `p0` in NTT domain.
    pub fn p0_ntt(&self) -> &RnsPoly {
        &self.p0_ntt
    }

    /// `p1` in NTT domain.
    pub fn p1_ntt(&self) -> &RnsPoly {
        &self.p1_ntt
    }
}

/// Relinearization key: for each RNS digit `i`, a pair
/// `(rlk0_i, rlk1_i) = (-(a_i·s + e_i) + h_i·s², a_i)` in NTT domain.
///
/// Because `h_i` is the CRT idempotent (`h_i ≡ δ_{ij} mod q_j`), the
/// `h_i·s²` term touches only residue row `i`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RelinKey {
    pub(crate) rlk0: Vec<RnsPoly>,
    pub(crate) rlk1: Vec<RnsPoly>,
}

impl RelinKey {
    /// Generates the relinearization key for `s`.
    pub fn generate<R: Rng + ?Sized>(ctx: &FvContext, sk: &SecretKey, rng: &mut R) -> Self {
        let basis = ctx.base_q();
        let n = ctx.params().n;
        let k = ctx.params().k();
        let s2 = sk.s_ntt.pointwise_mul(&sk.s_ntt, basis);
        let mut rlk0 = Vec::with_capacity(k);
        let mut rlk1 = Vec::with_capacity(k);
        for i in 0..k {
            let mut a = sampler::uniform_poly(rng, basis, n);
            a.ntt_forward(ctx.ntt_q());
            let mut e = sampler::gaussian_poly(rng, basis, n, ctx.params().sigma);
            e.ntt_forward(ctx.ntt_q());
            let mut key0 = a.pointwise_mul(&sk.s_ntt, basis).add(&e, basis).neg(basis);
            // add h_i * s^2: only residue row i is nonzero (h_i ≡ δ_ij).
            {
                let m = *basis.modulus(i);
                for (d, &s2c) in key0.row_mut(i).iter_mut().zip(s2.row(i)) {
                    *d = m.add(*d, s2c);
                }
            }
            rlk0.push(key0);
            rlk1.push(a);
        }
        RelinKey { rlk0, rlk1 }
    }

    /// Number of digits (equals the number of `q` primes).
    pub fn digits(&self) -> usize {
        self.rlk0.len()
    }

    /// `rlk0_i` in NTT domain.
    pub fn rlk0(&self, i: usize) -> &RnsPoly {
        &self.rlk0[i]
    }

    /// `rlk1_i` in NTT domain.
    pub fn rlk1(&self, i: usize) -> &RnsPoly {
        &self.rlk1[i]
    }

    /// Total size in bytes when each coefficient is stored as 4 bytes —
    /// the quantity the coprocessor must DMA during relinearization
    /// (§VI-A: "Only during the relinearization steps, data transfer is
    /// needed to load the large relinearization keys").
    pub fn transfer_bytes(&self) -> usize {
        let per_poly = |p: &RnsPoly| p.k() * p.n() * 4;
        self.rlk0.iter().map(&per_poly).sum::<usize>()
            + self.rlk1.iter().map(per_poly).sum::<usize>()
    }
}

/// Generates a full key set `(sk, pk, rlk)`.
pub fn keygen<R: Rng + ?Sized>(ctx: &FvContext, rng: &mut R) -> (SecretKey, PublicKey, RelinKey) {
    let sk = SecretKey::generate(ctx, rng);
    let pk = PublicKey::generate(ctx, &sk, rng);
    let rlk = RelinKey::generate(ctx, &sk, rng);
    (sk, pk, rlk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::FvParams;
    use crate::rnspoly::Domain;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx() -> FvContext {
        FvContext::new(FvParams::insecure_toy()).unwrap()
    }

    #[test]
    fn keygen_shapes() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(1);
        let (sk, pk, rlk) = keygen(&ctx, &mut rng);
        assert_eq!(sk.s_ntt().k(), ctx.params().k());
        assert_eq!(pk.p0_ntt().domain(), Domain::Ntt);
        assert_eq!(rlk.digits(), ctx.params().k());
    }

    #[test]
    fn public_key_relation_holds() {
        // p0 + p1*s = -e must be a small polynomial.
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(2);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let pk = PublicKey::generate(&ctx, &sk, &mut rng);
        let basis = ctx.base_q();
        let mut v = pk
            .p0_ntt()
            .add(&pk.p1_ntt().pointwise_mul(sk.s_ntt(), basis), basis);
        v.ntt_inverse(ctx.ntt_q());
        // every coefficient must be small (|e| <= 12σ) once centered
        for c in 0..ctx.params().n {
            let residues: Vec<u64> = (0..basis.len()).map(|i| v.row(i)[c]).collect();
            let centered = basis.decode_centered(&residues);
            let mag = centered.magnitude().to_u64().expect("small");
            assert!(mag <= (12.0 * ctx.params().sigma) as u64 + 1, "coeff {c}");
        }
    }

    #[test]
    fn relin_key_encodes_idempotent_s2() {
        // rlk0_i + rlk1_i*s = h_i*s^2 - e_i; verify row i carries s² and
        // other rows carry only noise.
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(3);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let rlk = RelinKey::generate(&ctx, &sk, &mut rng);
        let basis = ctx.base_q();
        let s2 = sk.s_ntt().pointwise_mul(sk.s_ntt(), basis);
        for i in 0..rlk.digits() {
            let mut v = rlk
                .rlk0(i)
                .add(&rlk.rlk1(i).pointwise_mul(sk.s_ntt(), basis), basis)
                .sub(
                    &{
                        // h_i * s²: zero except row i
                        let mut h = RnsPoly::zero_in(basis.len(), ctx.params().n, Domain::Ntt);
                        h.row_mut(i).copy_from_slice(s2.row(i));
                        h
                    },
                    basis,
                );
            v.ntt_inverse(ctx.ntt_q());
            for c in 0..ctx.params().n {
                let residues: Vec<u64> = (0..basis.len()).map(|r| v.row(r)[c]).collect();
                let centered = basis.decode_centered(&residues);
                let mag = centered.magnitude().to_u64().expect("noise is small");
                assert!(mag <= (12.0 * ctx.params().sigma) as u64 + 1);
            }
        }
    }

    #[test]
    fn rlk_transfer_bytes_match_paper_shape() {
        // For the paper's set: 6 digits × 2 polys × 6 residues × n × 4B.
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(4);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let rlk = RelinKey::generate(&ctx, &sk, &mut rng);
        let k = ctx.params().k();
        let n = ctx.params().n;
        assert_eq!(rlk.transfer_bytes(), k * 2 * k * n * 4);
    }
}
