//! Multi-threaded homomorphic multiplication.
//!
//! The paper's §VI-E compares against Badawi et al.'s multi-threaded CPU
//! implementation (26 threads ⇒ 2.5× over single-threaded). This module
//! provides the same axis for our software backend: the four lifts, the
//! per-residue transforms, the three tensor/scale pipelines and the relin
//! digits are all independent — exactly the parallelism the paper's RPAUs
//! exploit in hardware.
//!
//! Fan-out is *budgeted*: every entry point has a `_with_budget` variant
//! taking the maximum number of OS threads the call may occupy, and the
//! convenience wrappers derive their budget from
//! `std::thread::available_parallelism()`. A multi-job caller (the
//! `hefv-engine` worker pool) passes an explicit per-job budget so that
//! concurrent jobs do not oversubscribe the machine.

use crate::context::FvContext;
use crate::encrypt::Ciphertext;
use crate::eval::{self, Backend, TensorResult};
use crate::keys::RelinKey;
use crate::rnspoly::{Domain, RnsPoly};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The machine's thread capacity (`available_parallelism`, ≥ 1).
pub fn machine_budget() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f(0..count)` on at most `budget` OS threads and collects the
/// results in index order. With `budget <= 1` (or a single task) everything
/// runs inline on the caller's thread — no spawn cost.
pub fn fan_out_indexed<T, F>(count: usize, budget: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if count == 0 {
        return Vec::new();
    }
    let workers = budget.max(1).min(count);
    if workers == 1 {
        return (0..count).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..count).map(|_| None).collect());
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let out = f(i);
                results.lock().unwrap()[i] = Some(out);
            });
        }
    });
    results
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|o| o.expect("every index produced"))
        .collect()
}

/// Applies `f(row_index, row)` to every stride-`n` row of a flat
/// limb-major buffer, fanning the rows out over at most `budget` OS
/// threads via [`fan_out_indexed`]. This is the software form of the
/// paper's RPAU-per-residue distribution: each task owns one dense residue
/// row. With `budget <= 1` everything runs inline on the caller's thread.
///
/// # Panics
///
/// Panics if `n` does not divide `data.len()` (ragged rows).
pub fn for_each_row_mut<F>(data: &mut [u64], n: usize, budget: usize, f: F)
where
    F: Fn(usize, &mut [u64]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(
        n > 0 && data.len().is_multiple_of(n),
        "flat buffer not row-aligned"
    );
    let count = data.len() / n;
    if budget.max(1).min(count) == 1 {
        for (i, row) in data.chunks_mut(n).enumerate() {
            f(i, row);
        }
        return;
    }
    // Hand each scoped worker disjoint rows through per-row mutexes: the
    // locks are uncontended (every index is claimed exactly once by
    // fan_out_indexed) and cost nothing next to an NTT over the row.
    let rows: Vec<Mutex<&mut [u64]>> = data.chunks_mut(n).map(Mutex::new).collect();
    fan_out_indexed(count, budget, |i| {
        let mut row = rows[i].lock().unwrap();
        f(i, &mut row);
    });
}

/// Applies `f(first_row, span)` to contiguous multi-row **spans** of a
/// flat limb-major buffer, splitting the rows into at most `budget`
/// near-even contiguous chunks (each a whole number of rows). Unlike
/// [`for_each_row_mut`] the callback sees many rows at once, which lets
/// batched kernels — the dispatch seam's `ntt_forward_batch` /
/// `ntt_inverse_batch` — keep SIMD lanes full across limbs instead of
/// paying per-row dispatch. With `budget <= 1` the whole buffer is one
/// span handled inline on the caller's thread.
///
/// # Panics
///
/// Panics if `n` does not divide `data.len()` (ragged rows).
pub fn for_each_row_span_mut<F>(data: &mut [u64], n: usize, budget: usize, f: F)
where
    F: Fn(usize, &mut [u64]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(
        n > 0 && data.len().is_multiple_of(n),
        "flat buffer not row-aligned"
    );
    let count = data.len() / n;
    let workers = budget.max(1).min(count);
    if workers == 1 {
        f(0, data);
        return;
    }
    let base = count / workers;
    let rem = count % workers;
    let f = &f;
    std::thread::scope(|s| {
        let mut rest = data;
        let mut first = 0usize;
        for w in 0..workers {
            let rows = base + usize::from(w < rem);
            let (span, tail) = rest.split_at_mut(rows * n);
            rest = tail;
            let start = first;
            first += rows;
            s.spawn(move || f(start, span));
        }
    });
}

/// Steps 1–3 of `Mult` fanned out over at most `budget` threads.
pub fn tensor_threaded_with_budget(
    ctx: &FvContext,
    a: &Ciphertext,
    b: &Ciphertext,
    backend: Backend,
    budget: usize,
) -> TensorResult {
    let full = ctx.rns().base_full();

    // Phase 1: lift + forward-transform all four operand polynomials.
    // Threads left over after the four-way fan-out go to limb-level
    // parallelism inside each lift/transform (residue rows are
    // independent, exactly like the paper's RPAUs).
    let inner1 = (budget / 4).max(1);
    let inputs = [a.c0(), a.c1(), b.c0(), b.c1()];
    let mut lifted = fan_out_indexed(4, budget, |i| {
        let mut l = eval::lift_q_to_full_with_budget(ctx, inputs[i], backend, inner1);
        l.ntt_forward_with_budget(ctx.ntt_full(), inner1);
        l
    });
    let l11 = lifted.pop().unwrap();
    let l10 = lifted.pop().unwrap();
    let l01 = lifted.pop().unwrap();
    let l00 = lifted.pop().unwrap();

    // Phase 2: the three tensor outputs, each with its inverse transform
    // and scale; surplus threads again fan across residue rows.
    let inner2 = (budget / 3).max(1);
    let mut outs = fan_out_indexed(3, budget, |i| {
        let mut t = match i {
            0 => l00.pointwise_mul_with_budget(&l10, full, inner2),
            1 => {
                let mut t = l00.pointwise_mul_with_budget(&l11, full, inner2);
                t.pointwise_mul_acc_with_budget(&l01, &l10, full, inner2);
                t
            }
            _ => l01.pointwise_mul_with_budget(&l11, full, inner2),
        };
        t.ntt_inverse_with_budget(ctx.ntt_full(), inner2);
        eval::scale_full_to_q_with_budget(ctx, &t, backend, inner2)
    });
    let d2 = outs.pop().unwrap();
    let d1 = outs.pop().unwrap();
    let d0 = outs.pop().unwrap();
    TensorResult { d0, d1, d2 }
}

/// Steps 1–3 of `Mult` with the machine-wide thread budget.
pub fn tensor_threaded(
    ctx: &FvContext,
    a: &Ciphertext,
    b: &Ciphertext,
    backend: Backend,
) -> TensorResult {
    tensor_threaded_with_budget(ctx, a, b, backend, machine_budget())
}

/// Full multi-threaded `Mult` under an explicit thread budget.
pub fn mul_threaded_with_budget(
    ctx: &FvContext,
    a: &Ciphertext,
    b: &Ciphertext,
    rlk: &RelinKey,
    backend: Backend,
    budget: usize,
) -> Ciphertext {
    let t = tensor_threaded_with_budget(ctx, a, b, backend, budget);
    relinearize_threaded_with_budget(ctx, &t, rlk, budget)
}

/// Full multi-threaded `Mult` with the machine-wide thread budget.
pub fn mul_threaded(
    ctx: &FvContext,
    a: &Ciphertext,
    b: &Ciphertext,
    rlk: &RelinKey,
    backend: Backend,
) -> Ciphertext {
    mul_threaded_with_budget(ctx, a, b, rlk, backend, machine_budget())
}

/// Relinearization with per-digit parallelism under an explicit budget:
/// each digit's spread + NTT + two pointwise products is one task; the
/// partial products are reduced pairwise at the end.
pub fn relinearize_threaded_with_budget(
    ctx: &FvContext,
    t: &TensorResult,
    rlk: &RelinKey,
    budget: usize,
) -> Ciphertext {
    let basis = ctx.base_q();
    let k = ctx.params().k();
    assert_eq!(rlk.digits(), k, "relin key digit count mismatch");

    let inner = (budget / k).max(1);
    let partials = fan_out_indexed(k, budget, |i| {
        let spread = ctx.spread_digit(t.d2.row(i));
        let mut digit = RnsPoly::from_flat(spread, k, Domain::Coefficient);
        digit.ntt_forward_with_budget(ctx.ntt_q(), inner);
        (
            digit.pointwise_mul_with_budget(rlk.rlk0(i), basis, inner),
            digit.pointwise_mul_with_budget(rlk.rlk1(i), basis, inner),
        )
    });

    let mut iter = partials.into_iter();
    let (mut acc0, mut acc1) = iter.next().expect("at least one digit");
    for (p0, p1) in iter {
        acc0 = acc0.add(&p0, basis);
        acc1 = acc1.add(&p1, basis);
    }
    acc0.ntt_inverse(ctx.ntt_q());
    acc1.ntt_inverse(ctx.ntt_q());
    Ciphertext {
        c0: t.d0.add(&acc0, basis),
        c1: t.d1.add(&acc1, basis),
    }
}

/// Relinearization with the machine-wide thread budget.
pub fn relinearize_threaded(ctx: &FvContext, t: &TensorResult, rlk: &RelinKey) -> Ciphertext {
    relinearize_threaded_with_budget(ctx, t, rlk, machine_budget())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::Plaintext;
    use crate::encrypt::{decrypt, encrypt};
    use crate::eval;
    use crate::keys::keygen;
    use crate::params::FvParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fan_out_preserves_index_order() {
        for budget in [1, 2, 3, 16] {
            let out = fan_out_indexed(7, budget, |i| i * i);
            assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36], "budget {budget}");
        }
        assert!(fan_out_indexed(0, 4, |i| i).is_empty());
    }

    #[test]
    fn threaded_mul_is_bit_identical_to_sequential() {
        let ctx = FvContext::new(FvParams::insecure_medium()).unwrap();
        let mut rng = StdRng::seed_from_u64(81);
        let (sk, pk, rlk) = keygen(&ctx, &mut rng);
        let pa = Plaintext::new(vec![1, 0, 1], 2, ctx.params().n);
        let pb = Plaintext::new(vec![1, 1], 2, ctx.params().n);
        let ca = encrypt(&ctx, &pk, &pa, &mut rng);
        let cb = encrypt(&ctx, &pk, &pb, &mut rng);
        for backend in [Backend::default(), Backend::Traditional] {
            let seq = eval::mul(&ctx, &ca, &cb, &rlk, backend);
            let par = mul_threaded(&ctx, &ca, &cb, &rlk, backend);
            assert_eq!(seq, par, "{backend:?}");
            let _ = decrypt(&ctx, &sk, &par);
        }
    }

    #[test]
    fn every_budget_gives_the_same_ciphertext() {
        let ctx = FvContext::new(FvParams::insecure_toy()).unwrap();
        let mut rng = StdRng::seed_from_u64(83);
        let (_, pk, rlk) = keygen(&ctx, &mut rng);
        let pa = Plaintext::new(vec![1, 1], ctx.params().t, ctx.params().n);
        let ca = encrypt(&ctx, &pk, &pa, &mut rng);
        let reference = eval::mul(&ctx, &ca, &ca, &rlk, Backend::default());
        for budget in [1, 2, 4, 64] {
            let got = mul_threaded_with_budget(&ctx, &ca, &ca, &rlk, Backend::default(), budget);
            assert_eq!(got, reference, "budget {budget}");
        }
    }

    #[test]
    fn threaded_chain_stays_correct() {
        let ctx = FvContext::new(FvParams::insecure_medium()).unwrap();
        let mut rng = StdRng::seed_from_u64(82);
        let (sk, pk, rlk) = keygen(&ctx, &mut rng);
        let one = encrypt(
            &ctx,
            &pk,
            &Plaintext::new(vec![1], 2, ctx.params().n),
            &mut rng,
        );
        let mut acc = one.clone();
        for _ in 0..3 {
            acc = mul_threaded(&ctx, &acc, &one, &rlk, Backend::default());
        }
        assert_eq!(decrypt(&ctx, &sk, &acc).coeffs()[0], 1);
    }

    #[test]
    fn machine_budget_is_positive() {
        assert!(machine_budget() >= 1);
    }
}
