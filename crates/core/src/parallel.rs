//! Multi-threaded homomorphic multiplication.
//!
//! The paper's §VI-E compares against Badawi et al.'s multi-threaded CPU
//! implementation (26 threads ⇒ 2.5× over single-threaded). This module
//! provides the same axis for our software backend: the four lifts, the
//! per-residue transforms, the three tensor/scale pipelines and the relin
//! digits are all independent — exactly the parallelism the paper's RPAUs
//! exploit in hardware — so they fan out across OS threads with crossbeam
//! scoped threads.

use crate::context::FvContext;
use crate::encrypt::Ciphertext;
use crate::eval::{lift_q_to_full, scale_full_to_q, Backend, TensorResult};
use crate::keys::RelinKey;
use crate::rnspoly::{Domain, RnsPoly};

/// Steps 1–3 of `Mult` with the lifts, transforms and scales fanned out
/// over threads.
pub fn tensor_threaded(
    ctx: &FvContext,
    a: &Ciphertext,
    b: &Ciphertext,
    backend: Backend,
) -> TensorResult {
    let full = ctx.rns().base_full();

    // Phase 1: lift all four polynomials concurrently, then transform
    // each poly's residue rows concurrently.
    let inputs = [a.c0(), a.c1(), b.c0(), b.c1()];
    let mut lifted: Vec<RnsPoly> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = inputs
            .iter()
            .map(|p| {
                s.spawn(move |_| {
                    let mut l = lift_q_to_full(ctx, p, backend);
                    l.ntt_forward(ctx.ntt_full());
                    l
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .expect("threads");

    let l11 = lifted.pop().unwrap();
    let l10 = lifted.pop().unwrap();
    let l01 = lifted.pop().unwrap();
    let l00 = lifted.pop().unwrap();

    // Phase 2: the three tensor outputs, each with its inverse transform
    // and scale, in parallel.
    let (d0, d1, d2) = crossbeam::thread::scope(|s| {
        let h0 = s.spawn(|_| {
            let mut t = l00.pointwise_mul(&l10, full);
            t.ntt_inverse(ctx.ntt_full());
            scale_full_to_q(ctx, &t, backend)
        });
        let h1 = s.spawn(|_| {
            let mut t = l00.pointwise_mul(&l11, full);
            t.pointwise_mul_acc(&l01, &l10, full);
            t.ntt_inverse(ctx.ntt_full());
            scale_full_to_q(ctx, &t, backend)
        });
        let h2 = s.spawn(|_| {
            let mut t = l01.pointwise_mul(&l11, full);
            t.ntt_inverse(ctx.ntt_full());
            scale_full_to_q(ctx, &t, backend)
        });
        (h0.join().unwrap(), h1.join().unwrap(), h2.join().unwrap())
    })
    .expect("threads");

    TensorResult { d0, d1, d2 }
}

/// Full multi-threaded `Mult`: threaded tensor, then relinearization with
/// the digit SoPs fanned out.
pub fn mul_threaded(
    ctx: &FvContext,
    a: &Ciphertext,
    b: &Ciphertext,
    rlk: &RelinKey,
    backend: Backend,
) -> Ciphertext {
    let t = tensor_threaded(ctx, a, b, backend);
    relinearize_threaded(ctx, &t, rlk)
}

/// Relinearization with per-digit parallelism: each digit's spread + NTT +
/// two pointwise products runs on its own thread; the partial products are
/// reduced pairwise at the end.
pub fn relinearize_threaded(ctx: &FvContext, t: &TensorResult, rlk: &RelinKey) -> Ciphertext {
    let basis = ctx.base_q();
    let k = ctx.params().k();
    assert_eq!(rlk.digits(), k, "relin key digit count mismatch");

    let partials: Vec<(RnsPoly, RnsPoly)> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..k)
            .map(|i| {
                let d2 = &t.d2;
                s.spawn(move |_| {
                    let spread = ctx.spread_digit(&d2.residues()[i]);
                    let mut digit = RnsPoly::from_residues(spread, Domain::Coefficient);
                    digit.ntt_forward(ctx.ntt_q());
                    (
                        digit.pointwise_mul(rlk.rlk0(i), basis),
                        digit.pointwise_mul(rlk.rlk1(i), basis),
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .expect("threads");

    let mut iter = partials.into_iter();
    let (mut acc0, mut acc1) = iter.next().expect("at least one digit");
    for (p0, p1) in iter {
        acc0 = acc0.add(&p0, basis);
        acc1 = acc1.add(&p1, basis);
    }
    acc0.ntt_inverse(ctx.ntt_q());
    acc1.ntt_inverse(ctx.ntt_q());
    Ciphertext {
        c0: t.d0.add(&acc0, basis),
        c1: t.d1.add(&acc1, basis),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::Plaintext;
    use crate::encrypt::{decrypt, encrypt};
    use crate::eval;
    use crate::keys::keygen;
    use crate::params::FvParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn threaded_mul_is_bit_identical_to_sequential() {
        let ctx = FvContext::new(FvParams::insecure_medium()).unwrap();
        let mut rng = StdRng::seed_from_u64(81);
        let (sk, pk, rlk) = keygen(&ctx, &mut rng);
        let pa = Plaintext::new(vec![1, 0, 1], 2, ctx.params().n);
        let pb = Plaintext::new(vec![1, 1], 2, ctx.params().n);
        let ca = encrypt(&ctx, &pk, &pa, &mut rng);
        let cb = encrypt(&ctx, &pk, &pb, &mut rng);
        for backend in [Backend::default(), Backend::Traditional] {
            let seq = eval::mul(&ctx, &ca, &cb, &rlk, backend);
            let par = mul_threaded(&ctx, &ca, &cb, &rlk, backend);
            assert_eq!(seq, par, "{backend:?}");
            let _ = decrypt(&ctx, &sk, &par);
        }
    }

    #[test]
    fn threaded_chain_stays_correct() {
        let ctx = FvContext::new(FvParams::insecure_medium()).unwrap();
        let mut rng = StdRng::seed_from_u64(82);
        let (sk, pk, rlk) = keygen(&ctx, &mut rng);
        let one = encrypt(
            &ctx,
            &pk,
            &Plaintext::new(vec![1], 2, ctx.params().n),
            &mut rng,
        );
        let mut acc = one.clone();
        for _ in 0..3 {
            acc = mul_threaded(&ctx, &acc, &one, &rlk, Backend::default());
        }
        assert_eq!(decrypt(&ctx, &sk, &acc).coeffs()[0], 1);
    }
}
