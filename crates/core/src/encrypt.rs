//! Encryption and decryption (the paper's Fig. 1 datapath).

use crate::context::FvContext;
use crate::encoder::{plaintext_to_rns, Plaintext};
use crate::keys::{PublicKey, SecretKey};
use crate::rnspoly::{Domain, RnsPoly};
use crate::sampler;
use hefv_math::bigint::UBig;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// An FV ciphertext: `(c0, c1) ∈ R_q × R_q`, coefficient domain.
///
/// Fresh and evaluated ciphertexts have degree 1 (two polynomials); the
/// intermediate degree-2 result inside `Mult` never leaves the evaluator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ciphertext {
    pub(crate) c0: RnsPoly,
    pub(crate) c1: RnsPoly,
}

impl Ciphertext {
    /// Assembles a ciphertext from its two polynomials (used by external
    /// evaluators such as the coprocessor simulator).
    ///
    /// # Panics
    ///
    /// Panics if the components' shapes or domains differ.
    pub fn from_parts(c0: RnsPoly, c1: RnsPoly) -> Self {
        assert_eq!(c0.k(), c1.k(), "residue count mismatch");
        assert_eq!(c0.n(), c1.n(), "degree mismatch");
        assert_eq!(c0.domain(), c1.domain(), "domain mismatch");
        Ciphertext { c0, c1 }
    }

    /// The `c0` component.
    pub fn c0(&self) -> &RnsPoly {
        &self.c0
    }

    /// The `c1` component.
    pub fn c1(&self) -> &RnsPoly {
        &self.c1
    }

    /// Decomposes into the two component polynomials (the seam through
    /// which the scratch arena recycles dead ciphertexts).
    pub fn into_parts(self) -> (RnsPoly, RnsPoly) {
        (self.c0, self.c1)
    }

    /// Bytes moved when this ciphertext is DMA-transferred with 4-byte
    /// residue coefficients (the paper's Table III workload: one ciphertext
    /// of two polynomials × 6 residues × 4096 coefficients × 4 B =
    /// 196 608 B; *two* operand ciphertexts are 393 216 B, sent as chunks
    /// of 98 304 B in Table III).
    pub fn transfer_bytes(&self) -> usize {
        2 * self.c0.k() * self.c0.n() * 4
    }
}

/// Encrypts a plaintext under the public key.
///
/// `c0 = p0·u + e1 + Δ·m`, `c1 = p1·u + e2` with ternary `u` and Gaussian
/// `e1, e2`.
pub fn encrypt<R: Rng + ?Sized>(
    ctx: &FvContext,
    pk: &PublicKey,
    pt: &Plaintext,
    rng: &mut R,
) -> Ciphertext {
    let basis = ctx.base_q();
    let n = ctx.params().n;
    let mut u = sampler::ternary_poly(rng, basis, n);
    u.ntt_forward(ctx.ntt_q());

    let mut c0 = pk.p0_ntt().pointwise_mul(&u, basis);
    let mut c1 = pk.p1_ntt().pointwise_mul(&u, basis);
    c0.ntt_inverse(ctx.ntt_q());
    c1.ntt_inverse(ctx.ntt_q());

    let e1 = sampler::gaussian_poly(rng, basis, n, ctx.params().sigma);
    let e2 = sampler::gaussian_poly(rng, basis, n, ctx.params().sigma);
    let dm = plaintext_to_rns(ctx, pt).scalar_mul(ctx.delta_rns(), basis);

    Ciphertext {
        c0: c0.add(&e1, basis).add(&dm, basis),
        c1: c1.add(&e2, basis),
    }
}

/// Encrypts directly under the secret key (symmetric encryption); useful
/// for tests and for noise-controlled inputs.
pub fn encrypt_symmetric<R: Rng + ?Sized>(
    ctx: &FvContext,
    sk: &SecretKey,
    pt: &Plaintext,
    rng: &mut R,
) -> Ciphertext {
    let basis = ctx.base_q();
    let n = ctx.params().n;
    let mut a = sampler::uniform_poly(rng, basis, n);
    a.ntt_forward(ctx.ntt_q());
    let mut c0 = a.pointwise_mul(sk.s_ntt(), basis).neg(basis);
    c0.ntt_inverse(ctx.ntt_q());
    let e = sampler::gaussian_poly(rng, basis, n, ctx.params().sigma);
    let dm = plaintext_to_rns(ctx, pt).scalar_mul(ctx.delta_rns(), basis);
    let mut c1 = a;
    c1.ntt_inverse(ctx.ntt_q());
    Ciphertext {
        c0: c0.add(&e, basis).add(&dm, basis),
        c1,
    }
}

/// Encodes a plaintext as a trivial (noise-free, insecure) ciphertext
/// `(Δ·m, 0)`; used to bring public constants into the encrypted domain.
pub fn trivial_encrypt(ctx: &FvContext, pt: &Plaintext) -> Ciphertext {
    let basis = ctx.base_q();
    let dm = plaintext_to_rns(ctx, pt).scalar_mul(ctx.delta_rns(), basis);
    Ciphertext {
        c0: dm,
        c1: RnsPoly::zero(basis.len(), ctx.params().n),
    }
}

/// Decrypts: `m = ⌈t·[c0 + c1·s]_q / q⌋ mod t`.
///
/// # Panics
///
/// Panics if the ciphertext is not in coefficient domain.
pub fn decrypt(ctx: &FvContext, sk: &SecretKey, ct: &Ciphertext) -> Plaintext {
    let v = decrypt_phase(ctx, sk, ct);
    let basis = ctx.base_q();
    let t = UBig::from(ctx.params().t);
    let q = basis.product();
    let n = ctx.params().n;
    let mut coeffs = Vec::with_capacity(n);
    let mut buf = vec![0u64; basis.len()];
    for c in 0..n {
        for (slot, row) in buf.iter_mut().zip(v.rows()) {
            *slot = row[c];
        }
        let centered = basis.decode_centered(&buf);
        let scaled = centered.scale_round(&t, q);
        coeffs.push(scaled.rem_euclid(&t).to_u64().expect("fits in u64"));
    }
    Plaintext::new(coeffs, ctx.params().t, n)
}

/// The decryption phase `v = [c0 + c1·s]_q` in coefficient domain —
/// exposed because noise measurement needs it too.
pub fn decrypt_phase(ctx: &FvContext, sk: &SecretKey, ct: &Ciphertext) -> RnsPoly {
    assert_eq!(ct.c0.domain(), Domain::Coefficient, "ciphertext domain");
    let basis = ctx.base_q();
    let mut c1 = ct.c1.clone();
    c1.ntt_forward(ctx.ntt_q());
    let mut v = c1.pointwise_mul(sk.s_ntt(), basis);
    v.ntt_inverse(ctx.ntt_q());
    v.add(&ct.c0, basis)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::keygen;
    use crate::params::FvParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (FvContext, SecretKey, PublicKey) {
        let ctx = FvContext::new(FvParams::insecure_toy()).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let (sk, pk, _) = keygen(&ctx, &mut rng);
        (ctx, sk, pk)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let (ctx, sk, pk) = setup();
        let mut rng = StdRng::seed_from_u64(7);
        let pt = Plaintext::new(vec![1, 2, 3, 4, 5], ctx.params().t, ctx.params().n);
        let ct = encrypt(&ctx, &pk, &pt, &mut rng);
        assert_eq!(decrypt(&ctx, &sk, &ct), pt);
    }

    #[test]
    fn symmetric_roundtrip() {
        let (ctx, sk, _) = setup();
        let mut rng = StdRng::seed_from_u64(8);
        let pt = Plaintext::from_signed(&[-1, 0, 7, 3], ctx.params().t, ctx.params().n);
        let ct = encrypt_symmetric(&ctx, &sk, &pt, &mut rng);
        assert_eq!(decrypt(&ctx, &sk, &ct), pt);
    }

    #[test]
    fn trivial_roundtrip() {
        let (ctx, sk, _) = setup();
        let pt = Plaintext::new(vec![9, 8, 7], ctx.params().t, ctx.params().n);
        let ct = trivial_encrypt(&ctx, &pt);
        assert_eq!(decrypt(&ctx, &sk, &ct), pt);
    }

    #[test]
    fn different_randomness_different_ciphertexts() {
        let (ctx, _, pk) = setup();
        let pt = Plaintext::zero(ctx.params().t, ctx.params().n);
        let a = encrypt(&ctx, &pk, &pt, &mut StdRng::seed_from_u64(1));
        let b = encrypt(&ctx, &pk, &pt, &mut StdRng::seed_from_u64(2));
        assert_ne!(a, b, "semantic security sanity check");
    }

    #[test]
    fn transfer_bytes_paper_shape() {
        // The paper's ciphertext: 2 polys × 6 residues × 4096 × 4 B = 196 608.
        let (ctx, _, pk) = setup();
        let pt = Plaintext::zero(ctx.params().t, ctx.params().n);
        let ct = encrypt(&ctx, &pk, &pt, &mut StdRng::seed_from_u64(1));
        assert_eq!(
            ct.transfer_bytes(),
            2 * ctx.params().k() * ctx.params().n * 4
        );
    }

    #[test]
    fn paper_sized_roundtrip() {
        // Full n=4096, 180-bit q parameter set.
        let ctx = FvContext::new(FvParams::hpca19()).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let (sk, pk, _) = keygen(&ctx, &mut rng);
        let pt = Plaintext::new(vec![1, 0, 1, 1], 2, ctx.params().n);
        let ct = encrypt(&ctx, &pk, &pt, &mut rng);
        assert_eq!(decrypt(&ctx, &sk, &ct), pt);
    }
}
