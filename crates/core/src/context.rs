//! The FV evaluation context: every precomputed table an instance needs.

use crate::error::Error;
use crate::params::FvParams;
use hefv_math::bigint::UBig;
use hefv_math::ntt::{GaloisPermutation, NttTable};
use hefv_math::rns::{RnsBasis, RnsContext, ScaleContext};
use hefv_math::zq::Modulus;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Precomputed context for one FV parameter set: RNS bases and extenders,
/// NTT tables for every prime of `Q`, the scaling constants, and `Δ = ⌊q/t⌋`
/// in RNS form.
///
/// Build once, share (`FvContext` is `Send + Sync`) — the paper's analogue
/// is the constants burnt into on-chip ROM at configuration time.
///
/// # Example
///
/// ```
/// use hefv_core::{context::FvContext, params::FvParams};
/// let ctx = FvContext::new(FvParams::insecure_toy()).unwrap();
/// assert_eq!(ctx.params().n, 64);
/// ```
#[derive(Debug)]
pub struct FvContext {
    params: FvParams,
    rns: RnsContext,
    scale: ScaleContext,
    /// NTT tables for all primes of `Q`: the `k` q-primes first, then the
    /// `l` p-primes.
    tables_full: Vec<NttTable>,
    /// `Δ = ⌊q/t⌋ mod q_i`.
    delta_rns: Vec<u64>,
    /// `Δ` as a big integer (used by decryption and noise measurement).
    delta: UBig,
    /// Lazily built NTT-domain automorphism permutation tables, one per
    /// Galois exponent (shared by every prime — see [`GaloisPermutation`]).
    auto_perms: Mutex<HashMap<usize, Arc<GaloisPermutation>>>,
}

impl FvContext {
    /// Builds the context.
    ///
    /// # Errors
    ///
    /// Returns an error if the primes are not NTT-friendly for `n`, overlap
    /// between bases, or the plaintext modulus is out of range.
    pub fn new(params: FvParams) -> Result<Self, Error> {
        let rns = RnsContext::new(&params.q_primes, &params.p_primes).map_err(Error::Math)?;
        if params.t < 2 {
            return Err(Error::InvalidParams(
                "plaintext modulus must be at least 2".into(),
            ));
        }
        let scale = ScaleContext::new(&rns, params.t);
        let mut tables_full = Vec::with_capacity(params.k() + params.l());
        for &p in params.q_primes.iter().chain(&params.p_primes) {
            tables_full.push(NttTable::new(Modulus::new(p), params.n).map_err(Error::Math)?);
        }
        let delta = rns.base_q().product().div_rem(&UBig::from(params.t)).0;
        let delta_rns = rns.base_q().encode(&delta);
        Ok(FvContext {
            params,
            rns,
            scale,
            tables_full,
            delta_rns,
            delta,
            auto_perms: Mutex::new(HashMap::new()),
        })
    }

    /// The parameter set.
    pub fn params(&self) -> &FvParams {
        &self.params
    }

    /// The RNS context (bases and extenders).
    pub fn rns(&self) -> &RnsContext {
        &self.rns
    }

    /// The `Scale Q→q` constants.
    pub fn scale(&self) -> &ScaleContext {
        &self.scale
    }

    /// The ciphertext basis `q`.
    pub fn base_q(&self) -> &RnsBasis {
        self.rns.base_q()
    }

    /// NTT tables for the `q` primes.
    pub fn ntt_q(&self) -> &[NttTable] {
        &self.tables_full[..self.params.k()]
    }

    /// NTT tables for the `p` primes.
    pub fn ntt_p(&self) -> &[NttTable] {
        &self.tables_full[self.params.k()..]
    }

    /// NTT tables for all primes of `Q` (q primes first).
    pub fn ntt_full(&self) -> &[NttTable] {
        &self.tables_full
    }

    /// `Δ = ⌊q/t⌋` reduced modulo each `q_i`.
    pub fn delta_rns(&self) -> &[u64] {
        &self.delta_rns
    }

    /// `Δ = ⌊q/t⌋`.
    pub fn delta(&self) -> &UBig {
        &self.delta
    }

    /// Spreads a single-residue digit row (values `< q_i`) to a full set of
    /// `q`-basis rows: `a mod q_j` is `a` or `a − q_j` since all primes are
    /// the same width. This is the cheap `WordDecomp` residue-spread the
    /// microcode charges as coefficient-wise work (§II-B, Table II).
    ///
    /// Returns one flat limb-major `k·n` buffer (row `j` at stride
    /// `digit_row.len()`), ready for [`crate::rnspoly::RnsPoly::from_flat`].
    pub fn spread_digit(&self, digit_row: &[u64]) -> Vec<u64> {
        let moduli = self.base_q().moduli();
        let mut out = vec![0u64; moduli.len() * digit_row.len()];
        self.spread_digit_into(digit_row, &mut out);
        out
    }

    /// [`FvContext::spread_digit`] writing into a caller-provided flat
    /// `k·n` buffer (the arena-recycled hot path — no allocation).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != k · digit_row.len()`.
    pub fn spread_digit_into(&self, digit_row: &[u64], out: &mut [u64]) {
        let moduli = self.base_q().moduli();
        let n = digit_row.len();
        assert_eq!(out.len(), moduli.len() * n, "spread buffer size mismatch");
        for (j, m) in moduli.iter().enumerate() {
            let q = m.value();
            for (d, &a) in out[j * n..(j + 1) * n].iter_mut().zip(digit_row) {
                *d = if a >= q { a - q } else { a };
            }
        }
    }

    /// The NTT-domain permutation table for `σ_g`, built on first use and
    /// cached for the context's lifetime (the software analogue of the
    /// coprocessor's Memory-Rearrange address ROM). One table serves every
    /// residue row — the permutation depends only on `(n, g)`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is not a valid odd exponent in `[1, 2n)`.
    pub fn automorphism_table(&self, g: usize) -> Arc<GaloisPermutation> {
        let mut cache = self.auto_perms.lock().unwrap();
        Arc::clone(
            cache
                .entry(g)
                .or_insert_with(|| Arc::new(GaloisPermutation::new(self.params.n, g))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_builds_for_all_named_sets() {
        for p in [FvParams::insecure_toy(), FvParams::insecure_medium()] {
            let ctx = FvContext::new(p).unwrap();
            assert_eq!(ctx.ntt_full().len(), ctx.params().k() + ctx.params().l());
        }
    }

    #[test]
    fn delta_is_q_over_t() {
        let ctx = FvContext::new(FvParams::insecure_toy()).unwrap();
        let q = ctx.base_q().product();
        let t = UBig::from(ctx.params().t);
        let recomposed = &(ctx.delta() * &t) + &q.div_rem(&t).1;
        assert_eq!(&recomposed, q);
        assert_eq!(ctx.delta_rns(), ctx.base_q().encode(ctx.delta()));
    }

    #[test]
    fn rejects_bad_t() {
        let mut p = FvParams::insecure_toy();
        p.t = 1;
        assert!(FvContext::new(p).is_err());
    }

    #[test]
    fn spread_digit_values() {
        let ctx = FvContext::new(FvParams::insecure_toy()).unwrap();
        let q0 = ctx.base_q().modulus(0).value();
        let spread = ctx.spread_digit(&[0, 1, q0 - 1]);
        assert_eq!(spread.len(), ctx.base_q().len() * 3);
        for (j, m) in ctx.base_q().moduli().iter().enumerate() {
            assert_eq!(spread[j * 3], 0);
            assert_eq!(spread[j * 3 + 1], 1);
            let expect = (q0 - 1) % m.value();
            assert_eq!(spread[j * 3 + 2], expect, "j={j}");
        }
    }
}
