//! Homomorphic evaluation: `Add`, `Sub`, `Mult` (Fig. 2) and
//! relinearization.
//!
//! `Mult` follows the paper's pipeline exactly:
//!
//! 1. **Lift q→Q** all four operand polynomials (traditional CRT or HPS);
//! 2. NTT over all primes of `Q` and pointwise tensor products
//!    `c̃0 = c00·c10`, `c̃1 = c00·c11 + c01·c10`, `c̃2 = c01·c11`;
//! 3. inverse NTT and **Scale Q→q** each `c̃i`;
//! 4. **WordDecomp** of `c̃2` into RNS digits (`w = 2^30`, one digit per
//!    `q` prime) and **ReLin**: `c0 = c̃0 + SoP(digits, rlk0)`,
//!    `c1 = c̃1 + SoP(digits, rlk1)`.

use crate::context::FvContext;
use crate::encrypt::Ciphertext;
use crate::keys::RelinKey;
use crate::rnspoly::{Domain, RnsPoly};
use crate::scratch::Arena;
use hefv_math::rns::HpsPrecision;
use serde::{Deserialize, Serialize};

/// Which `Lift`/`Scale` datapath evaluates the multiplication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Backend {
    /// Exact long-integer CRT (the paper's slower architecture, Fig. 5/8).
    Traditional,
    /// The HPS small-number datapath (the paper's faster architecture,
    /// Fig. 6/9), with the chosen quotient precision.
    Hps(HpsPrecision),
    /// Defer the choice to the dispatcher: schedulers with a cost model
    /// (e.g. `hefv_engine`) pick [`Backend::Traditional`] or
    /// [`Backend::Hps`] per job, whichever the paper's cycle model prices
    /// cheaper for that job's op mix and parameter size. When an `Auto`
    /// value reaches the evaluation kernels directly it resolves to the
    /// default HPS datapath.
    Auto,
}

impl Backend {
    /// The concrete datapath this backend evaluates with: `Auto` resolves
    /// to the paper's best-performing configuration, everything else is
    /// already concrete.
    pub fn resolve(self) -> Backend {
        match self {
            Backend::Auto => Backend::Hps(HpsPrecision::Fixed),
            b => b,
        }
    }
}

impl Default for Backend {
    /// The paper's best-performing configuration: HPS with fixed-point
    /// reciprocals.
    fn default() -> Self {
        Backend::Hps(HpsPrecision::Fixed)
    }
}

/// Homomorphic addition: coefficient-wise over both polynomials.
///
/// # Panics
///
/// Panics on shape mismatch between the ciphertexts.
pub fn add(ctx: &FvContext, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
    let basis = ctx.base_q();
    Ciphertext {
        c0: a.c0.add(&b.c0, basis),
        c1: a.c1.add(&b.c1, basis),
    }
}

/// Homomorphic subtraction.
///
/// # Panics
///
/// Panics on shape mismatch between the ciphertexts.
pub fn sub(ctx: &FvContext, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
    let basis = ctx.base_q();
    Ciphertext {
        c0: a.c0.sub(&b.c0, basis),
        c1: a.c1.sub(&b.c1, basis),
    }
}

/// Homomorphic negation.
pub fn neg(ctx: &FvContext, a: &Ciphertext) -> Ciphertext {
    let basis = ctx.base_q();
    Ciphertext {
        c0: a.c0.neg(basis),
        c1: a.c1.neg(basis),
    }
}

/// A plaintext operand with its forward NTT precomputed, for reuse across
/// any number of ciphertexts.
///
/// [`mul_plain`] transforms the plaintext on every call; workloads that
/// multiply many ciphertexts by the same plaintext (the engine's
/// `MulPlain` op-graphs, masked reductions, matrix rows) build a
/// `PlainOperand` once and pay only the two ciphertext transforms per
/// product.
#[derive(Debug, Clone)]
pub struct PlainOperand {
    m_ntt: RnsPoly,
}

impl PlainOperand {
    /// Encodes a plaintext into the `q` basis and transforms it once.
    pub fn new(ctx: &FvContext, pt: &crate::encoder::Plaintext) -> Self {
        let mut m = crate::encoder::plaintext_to_rns(ctx, pt);
        m.ntt_forward(ctx.ntt_q());
        PlainOperand { m_ntt: m }
    }

    /// The cached NTT-domain polynomial.
    pub fn poly_ntt(&self) -> &RnsPoly {
        &self.m_ntt
    }

    /// Consumes the operand, yielding the transformed polynomial (so its
    /// buffer can be recycled into a scratch arena).
    pub fn into_poly_ntt(self) -> RnsPoly {
        self.m_ntt
    }
}

/// Multiplies a ciphertext by a plaintext polynomial (NTT pointwise; no
/// relinearization needed). Transforms the plaintext on every call — reuse
/// a [`PlainOperand`] when the same plaintext multiplies several
/// ciphertexts.
pub fn mul_plain(ctx: &FvContext, a: &Ciphertext, pt: &crate::encoder::Plaintext) -> Ciphertext {
    mul_plain_operand(ctx, a, &PlainOperand::new(ctx, pt))
}

/// Multiplies a ciphertext by a precomputed [`PlainOperand`].
pub fn mul_plain_operand(ctx: &FvContext, a: &Ciphertext, pt: &PlainOperand) -> Ciphertext {
    let basis = ctx.base_q();
    // The clones *are* the output buffers: transform in place, multiply in
    // place, transform back — no intermediate product allocation.
    let mut r0 = a.c0.clone();
    let mut r1 = a.c1.clone();
    r0.ntt_forward(ctx.ntt_q());
    r1.ntt_forward(ctx.ntt_q());
    r0.pointwise_mul_assign(&pt.m_ntt, basis);
    r1.pointwise_mul_assign(&pt.m_ntt, basis);
    r0.ntt_inverse(ctx.ntt_q());
    r1.ntt_inverse(ctx.ntt_q());
    Ciphertext { c0: r0, c1: r1 }
}

/// [`mul_plain_operand`] with the output buffers drawn from `arena`.
pub fn mul_plain_operand_in(
    ctx: &FvContext,
    a: &Ciphertext,
    pt: &PlainOperand,
    arena: &Arena,
) -> Ciphertext {
    let basis = ctx.base_q();
    let (k, n) = (a.c0.k(), a.c0.n());
    let mut r0 = arena.take_poly(k, n, Domain::Coefficient);
    let mut r1 = arena.take_poly(k, n, Domain::Coefficient);
    r0.copy_from(&a.c0);
    r1.copy_from(&a.c1);
    r0.ntt_forward(ctx.ntt_q());
    r1.ntt_forward(ctx.ntt_q());
    r0.pointwise_mul_assign(&pt.m_ntt, basis);
    r1.pointwise_mul_assign(&pt.m_ntt, basis);
    r0.ntt_inverse(ctx.ntt_q());
    r1.ntt_inverse(ctx.ntt_q());
    Ciphertext { c0: r0, c1: r1 }
}

/// Lifts a coefficient-domain `R_q` polynomial to the full basis of `Q`
/// (the paper's `Lift q→Q`): keeps the `q` residues and appends the
/// extension residues.
pub fn lift_q_to_full(ctx: &FvContext, poly: &RnsPoly, backend: Backend) -> RnsPoly {
    lift_q_to_full_with_budget(ctx, poly, backend, 1)
}

/// [`lift_q_to_full`] with the extension rows computed by at most `budget`
/// OS threads over disjoint coefficient ranges (the extension is
/// coefficient-streaming, so columns — not rows — are the parallel axis).
///
/// Every output coefficient is written exactly once: the `q` rows stream
/// straight into the output buffer as it is built (no zero-fill followed by
/// a second memcpy pass) and the extender writes the `p` rows in place
/// through [`RnsPoly::rows_mut`].
pub fn lift_q_to_full_with_budget(
    ctx: &FvContext,
    poly: &RnsPoly,
    backend: Backend,
    budget: usize,
) -> RnsPoly {
    assert_eq!(
        poly.domain(),
        Domain::Coefficient,
        "lift needs coefficients"
    );
    let k = poly.k();
    let l = ctx.rns().base_p().len();
    let n = poly.n();
    // The q rows are the buffer's initial contents; only the l extension
    // rows get a placeholder value before the extender overwrites them.
    let mut data = Vec::with_capacity((k + l) * n);
    data.extend_from_slice(poly.flat());
    data.resize((k + l) * n, 0);
    let mut out = RnsPoly::from_flat(data, k + l, Domain::Coefficient);
    lift_extension_rows(ctx, poly, backend, budget, &mut out);
    out
}

/// [`lift_q_to_full`] with the output drawn from `arena` (single-threaded;
/// the q rows are written once, directly into the recycled buffer).
pub fn lift_q_to_full_in(
    ctx: &FvContext,
    poly: &RnsPoly,
    backend: Backend,
    arena: &Arena,
) -> RnsPoly {
    assert_eq!(
        poly.domain(),
        Domain::Coefficient,
        "lift needs coefficients"
    );
    let k = poly.k();
    let l = ctx.rns().base_p().len();
    let n = poly.n();
    let mut out = arena.take_poly(k + l, n, Domain::Coefficient);
    out.rows_mut(0, k).copy_from_slice(poly.flat());
    lift_extension_rows(ctx, poly, backend, 1, &mut out);
    out
}

/// Computes the `l` extension rows of a lift into `out[k..k+l]` (the `q`
/// rows are already in place).
fn lift_extension_rows(
    ctx: &FvContext,
    poly: &RnsPoly,
    backend: Backend,
    budget: usize,
    out: &mut RnsPoly,
) {
    let k = poly.k();
    let l = ctx.rns().base_p().len();
    let n = poly.n();
    let lift = ctx.rns().lift();
    let backend = backend.resolve();
    let src = poly.flat();
    fan_out_cols(
        n,
        l,
        out.rows_mut(k, k + l),
        budget,
        |cols, dst| match backend {
            Backend::Traditional => lift.extend_poly_exact_cols_into(src, n, cols, dst),
            Backend::Hps(prec) => lift.extend_poly_hps_cols_into(src, n, cols, dst, prec),
            Backend::Auto => unreachable!("resolve() never returns Auto"),
        },
    );
}

/// Scales a coefficient-domain polynomial over the full `Q` basis down to
/// `R_q` (the paper's `Scale Q→q`).
pub fn scale_full_to_q(ctx: &FvContext, poly: &RnsPoly, backend: Backend) -> RnsPoly {
    scale_full_to_q_with_budget(ctx, poly, backend, 1)
}

/// [`scale_full_to_q`] with at most `budget` OS threads over disjoint
/// coefficient ranges, writing straight into the single output buffer.
pub fn scale_full_to_q_with_budget(
    ctx: &FvContext,
    poly: &RnsPoly,
    backend: Backend,
    budget: usize,
) -> RnsPoly {
    assert_eq!(
        poly.domain(),
        Domain::Coefficient,
        "scale needs coefficients"
    );
    let k = ctx.rns().base_q().len();
    let n = poly.n();
    let rns = ctx.rns();
    let sc = ctx.scale();
    let mut out = RnsPoly::zero(k, n);
    let backend = backend.resolve();
    let src = poly.flat();
    fan_out_cols(n, k, out.flat_mut(), budget, |cols, dst| match backend {
        Backend::Traditional => sc.scale_poly_exact_cols_into(rns, src, n, cols, dst),
        Backend::Hps(prec) => sc.scale_poly_hps_cols_into(rns, src, n, cols, dst, prec),
        Backend::Auto => unreachable!("resolve() never returns Auto"),
    });
    out
}

/// [`scale_full_to_q`] with the output drawn from `arena`
/// (single-threaded).
pub fn scale_full_to_q_in(
    ctx: &FvContext,
    poly: &RnsPoly,
    backend: Backend,
    arena: &Arena,
) -> RnsPoly {
    assert_eq!(
        poly.domain(),
        Domain::Coefficient,
        "scale needs coefficients"
    );
    let k = ctx.rns().base_q().len();
    let n = poly.n();
    let rns = ctx.rns();
    let sc = ctx.scale();
    let mut out = arena.take_poly(k, n, Domain::Coefficient);
    let backend = backend.resolve();
    let src = poly.flat();
    match backend {
        Backend::Traditional => sc.scale_poly_exact_into(rns, src, n, out.flat_mut()),
        Backend::Hps(prec) => sc.scale_poly_hps_into(rns, src, n, out.flat_mut(), prec),
        Backend::Auto => unreachable!("resolve() never returns Auto"),
    }
    out
}

/// Runs a column-streaming kernel over `[0, n)` with at most `budget`
/// threads. `out` is a flat `rows × n` buffer (stride `n`); each task
/// computes one contiguous column chunk into a dense `rows × chunk` scratch
/// that is scattered back row by row. With `budget <= 1` the kernel writes
/// the full-width buffer directly — no scratch, no copy.
fn fan_out_cols(
    n: usize,
    rows: usize,
    out: &mut [u64],
    budget: usize,
    kernel: impl Fn(std::ops::Range<usize>, &mut [u64]) + Sync,
) {
    debug_assert_eq!(out.len(), rows * n);
    let tasks = budget.max(1).min(n.max(1));
    if tasks == 1 {
        kernel(0..n, out);
        return;
    }
    let chunk = n.div_ceil(tasks);
    let pieces = crate::parallel::fan_out_indexed(tasks, budget, |t| {
        let cols = (t * chunk).min(n)..((t + 1) * chunk).min(n);
        let mut buf = vec![0u64; rows * cols.len()];
        kernel(cols.clone(), &mut buf);
        (cols, buf)
    });
    for (cols, buf) in pieces {
        let w = cols.len();
        for r in 0..rows {
            out[r * n + cols.start..r * n + cols.end].copy_from_slice(&buf[r * w..(r + 1) * w]);
        }
    }
}

/// The degree-2 intermediate of `Mult` before relinearization.
#[derive(Debug, Clone)]
pub struct TensorResult {
    /// `c̃0`, scaled back to `R_q`.
    pub d0: RnsPoly,
    /// `c̃1`, scaled back to `R_q`.
    pub d1: RnsPoly,
    /// `c̃2`, scaled back to `R_q`.
    pub d2: RnsPoly,
}

/// Steps 1–3 of `Mult`: lift, tensor in the NTT domain over `Q`, scale.
pub fn tensor(ctx: &FvContext, a: &Ciphertext, b: &Ciphertext, backend: Backend) -> TensorResult {
    tensor_in(ctx, a, b, backend, &Arena::new())
}

/// [`tensor`] with every intermediate drawn from (and dead operands
/// recycled into) `arena`: the four `(k+l)·n` lifted operands become the
/// tensor outputs in place where possible, so a warm arena makes the whole
/// phase allocation-free.
pub fn tensor_in(
    ctx: &FvContext,
    a: &Ciphertext,
    b: &Ciphertext,
    backend: Backend,
    arena: &Arena,
) -> TensorResult {
    let full = ctx.rns().base_full();
    let mut l00 = lift_q_to_full_in(ctx, &a.c0, backend, arena);
    let mut l01 = lift_q_to_full_in(ctx, &a.c1, backend, arena);
    let mut l10 = lift_q_to_full_in(ctx, &b.c0, backend, arena);
    let mut l11 = lift_q_to_full_in(ctx, &b.c1, backend, arena);
    l00.ntt_forward(ctx.ntt_full());
    l01.ntt_forward(ctx.ntt_full());
    l10.ntt_forward(ctx.ntt_full());
    l11.ntt_forward(ctx.ntt_full());

    // c̃1 first, while all four operands are live; then the operands
    // themselves become c̃0 and c̃2 in place.
    let mut t1 = arena.take_poly(l00.k(), l00.n(), Domain::Ntt);
    l00.pointwise_mul_into(&l11, full, &mut t1);
    t1.pointwise_mul_acc(&l01, &l10, full);
    l00.pointwise_mul_assign(&l10, full);
    let mut t0 = l00;
    l01.pointwise_mul_assign(&l11, full);
    let mut t2 = l01;
    arena.recycle(l10);
    arena.recycle(l11);

    t0.ntt_inverse(ctx.ntt_full());
    t1.ntt_inverse(ctx.ntt_full());
    t2.ntt_inverse(ctx.ntt_full());

    let out = TensorResult {
        d0: scale_full_to_q_in(ctx, &t0, backend, arena),
        d1: scale_full_to_q_in(ctx, &t1, backend, arena),
        d2: scale_full_to_q_in(ctx, &t2, backend, arena),
    };
    arena.recycle(t0);
    arena.recycle(t1);
    arena.recycle(t2);
    out
}

/// Step 4 of `Mult`: `WordDecomp` + `ReLin` (summation of products against
/// the relinearization key).
pub fn relinearize(ctx: &FvContext, t: &TensorResult, rlk: &RelinKey) -> Ciphertext {
    relinearize_in(ctx, t, rlk, &Arena::new())
}

/// [`relinearize`] with the digit scratch and both accumulators drawn from
/// `arena`; the accumulators become the output ciphertext, so nothing is
/// allocated once the arena is warm.
pub fn relinearize_in(
    ctx: &FvContext,
    t: &TensorResult,
    rlk: &RelinKey,
    arena: &Arena,
) -> Ciphertext {
    let basis = ctx.base_q();
    let k = ctx.params().k();
    assert_eq!(rlk.digits(), k, "relin key digit count mismatch");
    let n = ctx.params().n;

    let mut acc0 = arena.take_poly_zeroed(k, n, Domain::Ntt);
    let mut acc1 = arena.take_poly_zeroed(k, n, Domain::Ntt);
    for i in 0..k {
        // WordDecomp digit i = residue row i of d2, spread across all rows.
        let mut digit = arena.take_poly(k, n, Domain::Coefficient);
        ctx.spread_digit_into(t.d2.row(i), digit.flat_mut());
        digit.ntt_forward(ctx.ntt_q());
        acc0.pointwise_mul_acc(&digit, rlk.rlk0(i), basis);
        acc1.pointwise_mul_acc(&digit, rlk.rlk1(i), basis);
        arena.recycle(digit);
    }
    acc0.ntt_inverse(ctx.ntt_q());
    acc1.ntt_inverse(ctx.ntt_q());
    acc0.add_assign(&t.d0, basis);
    acc1.add_assign(&t.d1, basis);
    Ciphertext { c0: acc0, c1: acc1 }
}

/// Full homomorphic multiplication (Fig. 2).
pub fn mul(
    ctx: &FvContext,
    a: &Ciphertext,
    b: &Ciphertext,
    rlk: &RelinKey,
    backend: Backend,
) -> Ciphertext {
    mul_in(ctx, a, b, rlk, backend, &Arena::new())
}

/// [`mul`] with every intermediate drawn from `arena` — the steady-state
/// zero-allocation `Mult` hot path (asserted by
/// `tests/alloc_steady_state.rs`). Recycle the previous output into the
/// arena between calls to close the loop.
pub fn mul_in(
    ctx: &FvContext,
    a: &Ciphertext,
    b: &Ciphertext,
    rlk: &RelinKey,
    backend: Backend,
    arena: &Arena,
) -> Ciphertext {
    let t = tensor_in(ctx, a, b, backend, arena);
    let out = relinearize_in(ctx, &t, rlk, arena);
    arena.recycle(t.d0);
    arena.recycle(t.d1);
    arena.recycle(t.d2);
    out
}

/// Homomorphic squaring (saves one lift and one tensor product).
pub fn square(ctx: &FvContext, a: &Ciphertext, rlk: &RelinKey, backend: Backend) -> Ciphertext {
    let full = ctx.rns().base_full();
    let mut l0 = lift_q_to_full(ctx, &a.c0, backend);
    let mut l1 = lift_q_to_full(ctx, &a.c1, backend);
    l0.ntt_forward(ctx.ntt_full());
    l1.ntt_forward(ctx.ntt_full());
    let mut t0 = l0.pointwise_mul(&l0, full);
    let mut t1 = l0.pointwise_mul(&l1, full);
    t1 = t1.add(&t1, full); // 2·c0·c1
    let mut t2 = l1.pointwise_mul(&l1, full);
    t0.ntt_inverse(ctx.ntt_full());
    t1.ntt_inverse(ctx.ntt_full());
    t2.ntt_inverse(ctx.ntt_full());
    let t = TensorResult {
        d0: scale_full_to_q(ctx, &t0, backend),
        d1: scale_full_to_q(ctx, &t1, backend),
        d2: scale_full_to_q(ctx, &t2, backend),
    };
    relinearize(ctx, &t, rlk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::Plaintext;
    use crate::encrypt::{decrypt, encrypt};
    use crate::keys::keygen;
    use crate::params::FvParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(
        params: FvParams,
    ) -> (
        FvContext,
        crate::keys::SecretKey,
        crate::keys::PublicKey,
        RelinKey,
        StdRng,
    ) {
        let ctx = FvContext::new(params).unwrap();
        let mut rng = StdRng::seed_from_u64(1234);
        let (sk, pk, rlk) = keygen(&ctx, &mut rng);
        (ctx, sk, pk, rlk, rng)
    }

    #[test]
    fn add_sub_neg_decrypt_correctly() {
        let (ctx, sk, pk, _, mut rng) = setup(FvParams::insecure_toy());
        let t = ctx.params().t;
        let n = ctx.params().n;
        let pa = Plaintext::new(vec![3, 1, 4, 1, 5], t, n);
        let pb = Plaintext::new(vec![2, 7, 1, 8], t, n);
        let ca = encrypt(&ctx, &pk, &pa, &mut rng);
        let cb = encrypt(&ctx, &pk, &pb, &mut rng);

        let sum = decrypt(&ctx, &sk, &add(&ctx, &ca, &cb));
        assert_eq!(sum.coeffs()[..5], [5, 8, 5, 9, 5]);

        let diff = decrypt(&ctx, &sk, &sub(&ctx, &ca, &cb));
        assert_eq!(diff.coeffs()[..5], [1, (t - 6) % t, 3, (t - 7) % t, 5]);

        let negd = decrypt(&ctx, &sk, &neg(&ctx, &ca));
        assert_eq!(negd.coeffs()[0], t - 3);
    }

    #[test]
    fn mul_binary_messages_all_backends() {
        let (ctx, sk, pk, rlk, mut rng) = setup(FvParams::insecure_toy());
        let t = ctx.params().t;
        let n = ctx.params().n;
        // (1 + x) * (1 + x) = 1 + 2x + x²
        let pa = Plaintext::new(vec![1, 1], t, n);
        let ca = encrypt(&ctx, &pk, &pa, &mut rng);
        for backend in [
            Backend::Traditional,
            Backend::Hps(HpsPrecision::F64),
            Backend::Hps(HpsPrecision::Fixed),
        ] {
            let prod = decrypt(&ctx, &sk, &mul(&ctx, &ca, &ca, &rlk, backend));
            assert_eq!(prod.coeffs()[..3], [1, 2, 1], "backend {backend:?}");
        }
    }

    #[test]
    fn hps_and_traditional_agree() {
        let (ctx, _, pk, rlk, mut rng) = setup(FvParams::insecure_toy());
        let t = ctx.params().t;
        let n = ctx.params().n;
        let pa = Plaintext::new(vec![5, 3, 2], t, n);
        let pb = Plaintext::new(vec![7, 0, 1], t, n);
        let ca = encrypt(&ctx, &pk, &pa, &mut rng);
        let cb = encrypt(&ctx, &pk, &pb, &mut rng);
        let trad = mul(&ctx, &ca, &cb, &rlk, Backend::Traditional);
        let hps = mul(&ctx, &ca, &cb, &rlk, Backend::Hps(HpsPrecision::Fixed));
        // The two datapaths produce bit-identical ciphertexts except for
        // HPS mis-rounding (probability ~2^-47 per coefficient), so demand
        // equality here.
        assert_eq!(trad, hps);
    }

    #[test]
    fn auto_backend_resolves_to_hps_fixed() {
        assert_eq!(Backend::Auto.resolve(), Backend::Hps(HpsPrecision::Fixed));
        assert_eq!(Backend::Traditional.resolve(), Backend::Traditional);
        let (ctx, _, pk, rlk, mut rng) = setup(FvParams::insecure_toy());
        let t = ctx.params().t;
        let n = ctx.params().n;
        let ca = encrypt(&ctx, &pk, &Plaintext::new(vec![3, 2], t, n), &mut rng);
        assert_eq!(
            mul(&ctx, &ca, &ca, &rlk, Backend::Auto),
            mul(&ctx, &ca, &ca, &rlk, Backend::Hps(HpsPrecision::Fixed)),
        );
    }

    #[test]
    fn mul_then_add_composes() {
        let (ctx, sk, pk, rlk, mut rng) = setup(FvParams::insecure_toy());
        let t = ctx.params().t;
        let n = ctx.params().n;
        let enc = |v: &[u64], rng: &mut StdRng| {
            encrypt(&ctx, &pk, &Plaintext::new(v.to_vec(), t, n), rng)
        };
        let ca = enc(&[2], &mut rng);
        let cb = enc(&[3], &mut rng);
        let cc = enc(&[5], &mut rng);
        // 2*3 + 5 = 11
        let r = add(&ctx, &mul(&ctx, &ca, &cb, &rlk, Backend::default()), &cc);
        assert_eq!(decrypt(&ctx, &sk, &r).coeffs()[0], 11);
    }

    #[test]
    fn square_matches_mul() {
        let (ctx, sk, pk, rlk, mut rng) = setup(FvParams::insecure_toy());
        let t = ctx.params().t;
        let n = ctx.params().n;
        let pa = Plaintext::new(vec![3, 2], t, n);
        let ca = encrypt(&ctx, &pk, &pa, &mut rng);
        let m = decrypt(&ctx, &sk, &mul(&ctx, &ca, &ca, &rlk, Backend::default()));
        let s = decrypt(&ctx, &sk, &square(&ctx, &ca, &rlk, Backend::default()));
        assert_eq!(m, s);
    }

    #[test]
    fn mul_plain_scales_message() {
        let (ctx, sk, pk, _, mut rng) = setup(FvParams::insecure_toy());
        let t = ctx.params().t;
        let n = ctx.params().n;
        let ca = encrypt(&ctx, &pk, &Plaintext::new(vec![3, 1], t, n), &mut rng);
        let p = Plaintext::new(vec![2], t, n);
        let r = decrypt(&ctx, &sk, &mul_plain(&ctx, &ca, &p));
        assert_eq!(r.coeffs()[..2], [6, 2]);
    }

    #[test]
    fn depth_two_chain_on_medium_params() {
        // n=256 with the paper's 6+7 prime structure supports several
        // multiplicative levels.
        let (ctx, sk, pk, rlk, mut rng) = setup(FvParams::insecure_medium());
        let t = ctx.params().t;
        let n = ctx.params().n;
        let one = encrypt(&ctx, &pk, &Plaintext::new(vec![1], t, n), &mut rng);
        let mut acc = one.clone();
        for _ in 0..2 {
            acc = mul(&ctx, &acc, &one, &rlk, Backend::default());
        }
        assert_eq!(decrypt(&ctx, &sk, &acc).coeffs()[0], 1);
    }
}
