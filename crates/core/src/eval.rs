//! Homomorphic evaluation: `Add`, `Sub`, `Mult` (Fig. 2) and
//! relinearization.
//!
//! `Mult` follows the paper's pipeline exactly:
//!
//! 1. **Lift q→Q** all four operand polynomials (traditional CRT or HPS);
//! 2. NTT over all primes of `Q` and pointwise tensor products
//!    `c̃0 = c00·c10`, `c̃1 = c00·c11 + c01·c10`, `c̃2 = c01·c11`;
//! 3. inverse NTT and **Scale Q→q** each `c̃i`;
//! 4. **WordDecomp** of `c̃2` into RNS digits (`w = 2^30`, one digit per
//!    `q` prime) and **ReLin**: `c0 = c̃0 + SoP(digits, rlk0)`,
//!    `c1 = c̃1 + SoP(digits, rlk1)`.

use crate::context::FvContext;
use crate::encrypt::Ciphertext;
use crate::keys::RelinKey;
use crate::rnspoly::{Domain, RnsPoly};
use hefv_math::rns::HpsPrecision;
use serde::{Deserialize, Serialize};

/// Which `Lift`/`Scale` datapath evaluates the multiplication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Backend {
    /// Exact long-integer CRT (the paper's slower architecture, Fig. 5/8).
    Traditional,
    /// The HPS small-number datapath (the paper's faster architecture,
    /// Fig. 6/9), with the chosen quotient precision.
    Hps(HpsPrecision),
    /// Defer the choice to the dispatcher: schedulers with a cost model
    /// (e.g. `hefv_engine`) pick [`Backend::Traditional`] or
    /// [`Backend::Hps`] per job, whichever the paper's cycle model prices
    /// cheaper for that job's op mix and parameter size. When an `Auto`
    /// value reaches the evaluation kernels directly it resolves to the
    /// default HPS datapath.
    Auto,
}

impl Backend {
    /// The concrete datapath this backend evaluates with: `Auto` resolves
    /// to the paper's best-performing configuration, everything else is
    /// already concrete.
    pub fn resolve(self) -> Backend {
        match self {
            Backend::Auto => Backend::Hps(HpsPrecision::Fixed),
            b => b,
        }
    }
}

impl Default for Backend {
    /// The paper's best-performing configuration: HPS with fixed-point
    /// reciprocals.
    fn default() -> Self {
        Backend::Hps(HpsPrecision::Fixed)
    }
}

/// Homomorphic addition: coefficient-wise over both polynomials.
///
/// # Panics
///
/// Panics on shape mismatch between the ciphertexts.
pub fn add(ctx: &FvContext, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
    let basis = ctx.base_q();
    Ciphertext {
        c0: a.c0.add(&b.c0, basis),
        c1: a.c1.add(&b.c1, basis),
    }
}

/// Homomorphic subtraction.
///
/// # Panics
///
/// Panics on shape mismatch between the ciphertexts.
pub fn sub(ctx: &FvContext, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
    let basis = ctx.base_q();
    Ciphertext {
        c0: a.c0.sub(&b.c0, basis),
        c1: a.c1.sub(&b.c1, basis),
    }
}

/// Homomorphic negation.
pub fn neg(ctx: &FvContext, a: &Ciphertext) -> Ciphertext {
    let basis = ctx.base_q();
    Ciphertext {
        c0: a.c0.neg(basis),
        c1: a.c1.neg(basis),
    }
}

/// Multiplies a ciphertext by a plaintext polynomial (NTT pointwise; no
/// relinearization needed).
pub fn mul_plain(ctx: &FvContext, a: &Ciphertext, pt: &crate::encoder::Plaintext) -> Ciphertext {
    let basis = ctx.base_q();
    let mut m = crate::encoder::plaintext_to_rns(ctx, pt);
    m.ntt_forward(ctx.ntt_q());
    // The clones *are* the output buffers: transform in place, multiply in
    // place, transform back — no intermediate product allocation.
    let mut r0 = a.c0.clone();
    let mut r1 = a.c1.clone();
    r0.ntt_forward(ctx.ntt_q());
    r1.ntt_forward(ctx.ntt_q());
    r0.pointwise_mul_assign(&m, basis);
    r1.pointwise_mul_assign(&m, basis);
    r0.ntt_inverse(ctx.ntt_q());
    r1.ntt_inverse(ctx.ntt_q());
    Ciphertext { c0: r0, c1: r1 }
}

/// Lifts a coefficient-domain `R_q` polynomial to the full basis of `Q`
/// (the paper's `Lift q→Q`): keeps the `q` residues and appends the
/// extension residues.
pub fn lift_q_to_full(ctx: &FvContext, poly: &RnsPoly, backend: Backend) -> RnsPoly {
    lift_q_to_full_with_budget(ctx, poly, backend, 1)
}

/// [`lift_q_to_full`] with the extension rows computed by at most `budget`
/// OS threads over disjoint coefficient ranges (the extension is
/// coefficient-streaming, so columns — not rows — are the parallel axis).
///
/// The output buffer is allocated **once** at full `(k+l)·n` size: the `q`
/// rows are copied in as one memcpy and the extender writes the `p` rows
/// directly through [`RnsPoly::rows_mut`].
pub fn lift_q_to_full_with_budget(
    ctx: &FvContext,
    poly: &RnsPoly,
    backend: Backend,
    budget: usize,
) -> RnsPoly {
    assert_eq!(
        poly.domain(),
        Domain::Coefficient,
        "lift needs coefficients"
    );
    let k = poly.k();
    let l = ctx.rns().base_p().len();
    let n = poly.n();
    let lift = ctx.rns().lift();
    let mut out = RnsPoly::zero(k + l, n);
    out.rows_mut(0, k).copy_from_slice(poly.flat());
    let backend = backend.resolve();
    let src = poly.flat();
    fan_out_cols(
        n,
        l,
        out.rows_mut(k, k + l),
        budget,
        |cols, dst| match backend {
            Backend::Traditional => lift.extend_poly_exact_cols_into(src, n, cols, dst),
            Backend::Hps(prec) => lift.extend_poly_hps_cols_into(src, n, cols, dst, prec),
            Backend::Auto => unreachable!("resolve() never returns Auto"),
        },
    );
    out
}

/// Scales a coefficient-domain polynomial over the full `Q` basis down to
/// `R_q` (the paper's `Scale Q→q`).
pub fn scale_full_to_q(ctx: &FvContext, poly: &RnsPoly, backend: Backend) -> RnsPoly {
    scale_full_to_q_with_budget(ctx, poly, backend, 1)
}

/// [`scale_full_to_q`] with at most `budget` OS threads over disjoint
/// coefficient ranges, writing straight into the single output buffer.
pub fn scale_full_to_q_with_budget(
    ctx: &FvContext,
    poly: &RnsPoly,
    backend: Backend,
    budget: usize,
) -> RnsPoly {
    assert_eq!(
        poly.domain(),
        Domain::Coefficient,
        "scale needs coefficients"
    );
    let k = ctx.rns().base_q().len();
    let n = poly.n();
    let rns = ctx.rns();
    let sc = ctx.scale();
    let mut out = RnsPoly::zero(k, n);
    let backend = backend.resolve();
    let src = poly.flat();
    fan_out_cols(n, k, out.flat_mut(), budget, |cols, dst| match backend {
        Backend::Traditional => sc.scale_poly_exact_cols_into(rns, src, n, cols, dst),
        Backend::Hps(prec) => sc.scale_poly_hps_cols_into(rns, src, n, cols, dst, prec),
        Backend::Auto => unreachable!("resolve() never returns Auto"),
    });
    out
}

/// Runs a column-streaming kernel over `[0, n)` with at most `budget`
/// threads. `out` is a flat `rows × n` buffer (stride `n`); each task
/// computes one contiguous column chunk into a dense `rows × chunk` scratch
/// that is scattered back row by row. With `budget <= 1` the kernel writes
/// the full-width buffer directly — no scratch, no copy.
fn fan_out_cols(
    n: usize,
    rows: usize,
    out: &mut [u64],
    budget: usize,
    kernel: impl Fn(std::ops::Range<usize>, &mut [u64]) + Sync,
) {
    debug_assert_eq!(out.len(), rows * n);
    let tasks = budget.max(1).min(n.max(1));
    if tasks == 1 {
        kernel(0..n, out);
        return;
    }
    let chunk = n.div_ceil(tasks);
    let pieces = crate::parallel::fan_out_indexed(tasks, budget, |t| {
        let cols = (t * chunk).min(n)..((t + 1) * chunk).min(n);
        let mut buf = vec![0u64; rows * cols.len()];
        kernel(cols.clone(), &mut buf);
        (cols, buf)
    });
    for (cols, buf) in pieces {
        let w = cols.len();
        for r in 0..rows {
            out[r * n + cols.start..r * n + cols.end].copy_from_slice(&buf[r * w..(r + 1) * w]);
        }
    }
}

/// The degree-2 intermediate of `Mult` before relinearization.
#[derive(Debug, Clone)]
pub struct TensorResult {
    /// `c̃0`, scaled back to `R_q`.
    pub d0: RnsPoly,
    /// `c̃1`, scaled back to `R_q`.
    pub d1: RnsPoly,
    /// `c̃2`, scaled back to `R_q`.
    pub d2: RnsPoly,
}

/// Steps 1–3 of `Mult`: lift, tensor in the NTT domain over `Q`, scale.
pub fn tensor(ctx: &FvContext, a: &Ciphertext, b: &Ciphertext, backend: Backend) -> TensorResult {
    let full = ctx.rns().base_full();
    let mut l00 = lift_q_to_full(ctx, &a.c0, backend);
    let mut l01 = lift_q_to_full(ctx, &a.c1, backend);
    let mut l10 = lift_q_to_full(ctx, &b.c0, backend);
    let mut l11 = lift_q_to_full(ctx, &b.c1, backend);
    l00.ntt_forward(ctx.ntt_full());
    l01.ntt_forward(ctx.ntt_full());
    l10.ntt_forward(ctx.ntt_full());
    l11.ntt_forward(ctx.ntt_full());

    let mut t0 = l00.pointwise_mul(&l10, full);
    let mut t1 = l00.pointwise_mul(&l11, full);
    t1.pointwise_mul_acc(&l01, &l10, full);
    let mut t2 = l01.pointwise_mul(&l11, full);

    t0.ntt_inverse(ctx.ntt_full());
    t1.ntt_inverse(ctx.ntt_full());
    t2.ntt_inverse(ctx.ntt_full());

    TensorResult {
        d0: scale_full_to_q(ctx, &t0, backend),
        d1: scale_full_to_q(ctx, &t1, backend),
        d2: scale_full_to_q(ctx, &t2, backend),
    }
}

/// Step 4 of `Mult`: `WordDecomp` + `ReLin` (summation of products against
/// the relinearization key).
pub fn relinearize(ctx: &FvContext, t: &TensorResult, rlk: &RelinKey) -> Ciphertext {
    let basis = ctx.base_q();
    let k = ctx.params().k();
    assert_eq!(rlk.digits(), k, "relin key digit count mismatch");
    let n = ctx.params().n;

    let mut acc0 = RnsPoly::zero_in(k, n, Domain::Ntt);
    let mut acc1 = RnsPoly::zero_in(k, n, Domain::Ntt);
    for i in 0..k {
        // WordDecomp digit i = residue row i of d2, spread across all rows.
        let spread = ctx.spread_digit(t.d2.row(i));
        let mut digit = RnsPoly::from_flat(spread, k, Domain::Coefficient);
        digit.ntt_forward(ctx.ntt_q());
        acc0.pointwise_mul_acc(&digit, rlk.rlk0(i), basis);
        acc1.pointwise_mul_acc(&digit, rlk.rlk1(i), basis);
    }
    acc0.ntt_inverse(ctx.ntt_q());
    acc1.ntt_inverse(ctx.ntt_q());
    Ciphertext {
        c0: t.d0.add(&acc0, basis),
        c1: t.d1.add(&acc1, basis),
    }
}

/// Full homomorphic multiplication (Fig. 2).
pub fn mul(
    ctx: &FvContext,
    a: &Ciphertext,
    b: &Ciphertext,
    rlk: &RelinKey,
    backend: Backend,
) -> Ciphertext {
    let t = tensor(ctx, a, b, backend);
    relinearize(ctx, &t, rlk)
}

/// Homomorphic squaring (saves one lift and one tensor product).
pub fn square(ctx: &FvContext, a: &Ciphertext, rlk: &RelinKey, backend: Backend) -> Ciphertext {
    let full = ctx.rns().base_full();
    let mut l0 = lift_q_to_full(ctx, &a.c0, backend);
    let mut l1 = lift_q_to_full(ctx, &a.c1, backend);
    l0.ntt_forward(ctx.ntt_full());
    l1.ntt_forward(ctx.ntt_full());
    let mut t0 = l0.pointwise_mul(&l0, full);
    let mut t1 = l0.pointwise_mul(&l1, full);
    t1 = t1.add(&t1, full); // 2·c0·c1
    let mut t2 = l1.pointwise_mul(&l1, full);
    t0.ntt_inverse(ctx.ntt_full());
    t1.ntt_inverse(ctx.ntt_full());
    t2.ntt_inverse(ctx.ntt_full());
    let t = TensorResult {
        d0: scale_full_to_q(ctx, &t0, backend),
        d1: scale_full_to_q(ctx, &t1, backend),
        d2: scale_full_to_q(ctx, &t2, backend),
    };
    relinearize(ctx, &t, rlk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::Plaintext;
    use crate::encrypt::{decrypt, encrypt};
    use crate::keys::keygen;
    use crate::params::FvParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(
        params: FvParams,
    ) -> (
        FvContext,
        crate::keys::SecretKey,
        crate::keys::PublicKey,
        RelinKey,
        StdRng,
    ) {
        let ctx = FvContext::new(params).unwrap();
        let mut rng = StdRng::seed_from_u64(1234);
        let (sk, pk, rlk) = keygen(&ctx, &mut rng);
        (ctx, sk, pk, rlk, rng)
    }

    #[test]
    fn add_sub_neg_decrypt_correctly() {
        let (ctx, sk, pk, _, mut rng) = setup(FvParams::insecure_toy());
        let t = ctx.params().t;
        let n = ctx.params().n;
        let pa = Plaintext::new(vec![3, 1, 4, 1, 5], t, n);
        let pb = Plaintext::new(vec![2, 7, 1, 8], t, n);
        let ca = encrypt(&ctx, &pk, &pa, &mut rng);
        let cb = encrypt(&ctx, &pk, &pb, &mut rng);

        let sum = decrypt(&ctx, &sk, &add(&ctx, &ca, &cb));
        assert_eq!(sum.coeffs()[..5], [5, 8, 5, 9, 5]);

        let diff = decrypt(&ctx, &sk, &sub(&ctx, &ca, &cb));
        assert_eq!(diff.coeffs()[..5], [1, (t - 6) % t, 3, (t - 7) % t, 5]);

        let negd = decrypt(&ctx, &sk, &neg(&ctx, &ca));
        assert_eq!(negd.coeffs()[0], t - 3);
    }

    #[test]
    fn mul_binary_messages_all_backends() {
        let (ctx, sk, pk, rlk, mut rng) = setup(FvParams::insecure_toy());
        let t = ctx.params().t;
        let n = ctx.params().n;
        // (1 + x) * (1 + x) = 1 + 2x + x²
        let pa = Plaintext::new(vec![1, 1], t, n);
        let ca = encrypt(&ctx, &pk, &pa, &mut rng);
        for backend in [
            Backend::Traditional,
            Backend::Hps(HpsPrecision::F64),
            Backend::Hps(HpsPrecision::Fixed),
        ] {
            let prod = decrypt(&ctx, &sk, &mul(&ctx, &ca, &ca, &rlk, backend));
            assert_eq!(prod.coeffs()[..3], [1, 2, 1], "backend {backend:?}");
        }
    }

    #[test]
    fn hps_and_traditional_agree() {
        let (ctx, _, pk, rlk, mut rng) = setup(FvParams::insecure_toy());
        let t = ctx.params().t;
        let n = ctx.params().n;
        let pa = Plaintext::new(vec![5, 3, 2], t, n);
        let pb = Plaintext::new(vec![7, 0, 1], t, n);
        let ca = encrypt(&ctx, &pk, &pa, &mut rng);
        let cb = encrypt(&ctx, &pk, &pb, &mut rng);
        let trad = mul(&ctx, &ca, &cb, &rlk, Backend::Traditional);
        let hps = mul(&ctx, &ca, &cb, &rlk, Backend::Hps(HpsPrecision::Fixed));
        // The two datapaths produce bit-identical ciphertexts except for
        // HPS mis-rounding (probability ~2^-47 per coefficient), so demand
        // equality here.
        assert_eq!(trad, hps);
    }

    #[test]
    fn auto_backend_resolves_to_hps_fixed() {
        assert_eq!(Backend::Auto.resolve(), Backend::Hps(HpsPrecision::Fixed));
        assert_eq!(Backend::Traditional.resolve(), Backend::Traditional);
        let (ctx, _, pk, rlk, mut rng) = setup(FvParams::insecure_toy());
        let t = ctx.params().t;
        let n = ctx.params().n;
        let ca = encrypt(&ctx, &pk, &Plaintext::new(vec![3, 2], t, n), &mut rng);
        assert_eq!(
            mul(&ctx, &ca, &ca, &rlk, Backend::Auto),
            mul(&ctx, &ca, &ca, &rlk, Backend::Hps(HpsPrecision::Fixed)),
        );
    }

    #[test]
    fn mul_then_add_composes() {
        let (ctx, sk, pk, rlk, mut rng) = setup(FvParams::insecure_toy());
        let t = ctx.params().t;
        let n = ctx.params().n;
        let enc = |v: &[u64], rng: &mut StdRng| {
            encrypt(&ctx, &pk, &Plaintext::new(v.to_vec(), t, n), rng)
        };
        let ca = enc(&[2], &mut rng);
        let cb = enc(&[3], &mut rng);
        let cc = enc(&[5], &mut rng);
        // 2*3 + 5 = 11
        let r = add(&ctx, &mul(&ctx, &ca, &cb, &rlk, Backend::default()), &cc);
        assert_eq!(decrypt(&ctx, &sk, &r).coeffs()[0], 11);
    }

    #[test]
    fn square_matches_mul() {
        let (ctx, sk, pk, rlk, mut rng) = setup(FvParams::insecure_toy());
        let t = ctx.params().t;
        let n = ctx.params().n;
        let pa = Plaintext::new(vec![3, 2], t, n);
        let ca = encrypt(&ctx, &pk, &pa, &mut rng);
        let m = decrypt(&ctx, &sk, &mul(&ctx, &ca, &ca, &rlk, Backend::default()));
        let s = decrypt(&ctx, &sk, &square(&ctx, &ca, &rlk, Backend::default()));
        assert_eq!(m, s);
    }

    #[test]
    fn mul_plain_scales_message() {
        let (ctx, sk, pk, _, mut rng) = setup(FvParams::insecure_toy());
        let t = ctx.params().t;
        let n = ctx.params().n;
        let ca = encrypt(&ctx, &pk, &Plaintext::new(vec![3, 1], t, n), &mut rng);
        let p = Plaintext::new(vec![2], t, n);
        let r = decrypt(&ctx, &sk, &mul_plain(&ctx, &ca, &p));
        assert_eq!(r.coeffs()[..2], [6, 2]);
    }

    #[test]
    fn depth_two_chain_on_medium_params() {
        // n=256 with the paper's 6+7 prime structure supports several
        // multiplicative levels.
        let (ctx, sk, pk, rlk, mut rng) = setup(FvParams::insecure_medium());
        let t = ctx.params().t;
        let n = ctx.params().n;
        let one = encrypt(&ctx, &pk, &Plaintext::new(vec![1], t, n), &mut rng);
        let mut acc = one.clone();
        for _ in 0..2 {
            acc = mul(&ctx, &acc, &one, &rlk, Backend::default());
        }
        assert_eq!(decrypt(&ctx, &sk, &acc).coeffs()[0], 1);
    }
}
