//! Noise measurement: the invariant-noise budget of a ciphertext.
//!
//! The paper's parameter set is chosen for multiplicative depth 4 (§III-A);
//! this module lets the test suite *demonstrate* that, instead of asserting
//! it: decrypting drains no budget, each `Mult` consumes a measurable slice,
//! and decryption fails once the budget reaches zero.

use crate::context::FvContext;
use crate::encrypt::{decrypt_phase, Ciphertext};
use crate::keys::SecretKey;
use hefv_math::bigint::{center, UBig};

/// Noise statistics of a ciphertext.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseReport {
    /// `log2` of the largest noise coefficient (`|v − Δ·m|`, centered).
    pub noise_bits: f64,
    /// Remaining budget in bits; decryption fails at ≤ 0.
    pub budget_bits: f64,
}

/// Measures the noise of `ct` with the secret key.
///
/// Computes `v = [c0 + c1·s]_q`, subtracts `Δ·m` for the decrypted `m`, and
/// reports the infinity norm of the remainder against the failure threshold
/// `q / (2t)`.
pub fn measure(ctx: &FvContext, sk: &SecretKey, ct: &Ciphertext) -> NoiseReport {
    let basis = ctx.base_q();
    let q = basis.product();
    let t = UBig::from(ctx.params().t);
    let v = decrypt_phase(ctx, sk, ct);
    let n = ctx.params().n;
    let mut buf = vec![0u64; basis.len()];
    let mut max_noise = UBig::zero();
    for c in 0..n {
        for (slot, row) in buf.iter_mut().zip(v.rows()) {
            *slot = row[c];
        }
        let vc = basis.decode(&buf);
        // m_c = round(t*v/q) mod t ; noise = v - Δ·m - (rounding part of Δ)
        let centered = center(&vc, q);
        let m = centered.scale_round(&t, q).rem_euclid(&t);
        // w = v - Δ*m (mod q), centered
        let dm = ctx.delta() * &m;
        let w = if centered.is_negative() {
            // v ≡ q - |v|; noise = v - Δm computed mod q
            let vv = q - centered.magnitude();
            center(&(&vv + &(q - &(&dm % q))).div_rem(q).1, q)
        } else {
            let vv = centered.magnitude().clone();
            center(&(&vv + &(q - &(&dm % q))).div_rem(q).1, q)
        };
        if w.magnitude() > &max_noise {
            max_noise = w.magnitude().clone();
        }
    }
    let noise_bits = if max_noise.is_zero() {
        0.0
    } else {
        max_noise.to_f64().log2()
    };
    // Failure threshold: |noise| must stay below q/(2t).
    let threshold_bits = q.to_f64().log2() - 1.0 - (ctx.params().t as f64).log2();
    NoiseReport {
        noise_bits,
        budget_bits: threshold_bits - noise_bits,
    }
}

/// Worst-case analytic noise model (after the FV paper's Lemmas 1–4,
/// adapted to the RNS-digit relinearization gadget): predicts upper bounds
/// on noise magnitude per operation and the supported multiplicative
/// depth. Measurements ([`measure`]) always sit below these bounds; the
/// test suite checks both directions.
#[derive(Debug, Clone, Copy)]
pub struct NoiseModel {
    n: f64,
    t: f64,
    sigma: f64,
    /// `log2 q`.
    log_q: f64,
    /// Relinearization digits and word size.
    digits: f64,
    word: f64,
}

impl NoiseModel {
    /// Builds the model from a context.
    pub fn new(ctx: &FvContext) -> Self {
        NoiseModel {
            n: ctx.params().n as f64,
            t: ctx.params().t as f64,
            sigma: ctx.params().sigma,
            log_q: ctx.base_q().product().to_f64().log2(),
            digits: ctx.params().k() as f64,
            word: 2f64.powi(30),
        }
    }

    /// Tail bound of the error distribution (`12σ`).
    fn b(&self) -> f64 {
        12.0 * self.sigma
    }

    /// Worst-case fresh-encryption noise magnitude.
    pub fn fresh(&self) -> f64 {
        // v = Δm + e1 + e2·s + u·e_pk: ≤ B(2n + 1) + t.
        self.b() * (2.0 * self.n + 1.0) + self.t
    }

    /// Noise after a homomorphic addition of noises `n1`, `n2`.
    pub fn after_add(&self, n1: f64, n2: f64) -> f64 {
        n1 + n2 + self.t
    }

    /// Noise after a homomorphic multiplication of noises `n1`, `n2`
    /// (tensor + scale + RNS-digit relinearization).
    pub fn after_mul(&self, n1: f64, n2: f64) -> f64 {
        let tensor =
            2.0 * self.n * self.t * (n1 + n2 + 1.0) + 4.0 * self.n * self.n * self.t * self.t;
        let relin = self.digits * self.n * self.word * self.b();
        tensor + relin
    }

    /// Noise after multiplying by a plaintext polynomial: the operand
    /// noise is scaled by the plaintext's worst-case 1-norm `t·n`.
    pub fn after_mul_plain(&self, n1: f64) -> f64 {
        n1 * self.t * self.n
    }

    /// Noise after one key switch (rotation): the operand noise plus the
    /// RNS-digit SoP term — the same `digits·n·w·B` term relinearization
    /// contributes inside [`NoiseModel::after_mul`].
    pub fn after_key_switch(&self, n1: f64) -> f64 {
        n1 + self.digits * self.n * self.word * self.b()
    }

    /// The decryption-failure threshold `q / (2t)` in bits.
    pub fn threshold_bits(&self) -> f64 {
        self.log_q - 1.0 - self.t.log2()
    }

    /// Maximum multiplicative depth the parameters support under the
    /// worst-case model (a chain of squarings from fresh ciphertexts).
    pub fn supported_depth(&self) -> u32 {
        let mut noise = self.fresh();
        let mut depth = 0;
        while depth < 64 {
            noise = self.after_mul(noise, noise);
            if noise.log2() >= self.threshold_bits() {
                break;
            }
            depth += 1;
        }
        depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::Plaintext;
    use crate::encrypt::{decrypt, encrypt};
    use crate::eval::{mul, Backend};
    use crate::keys::keygen;
    use crate::params::FvParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn measured_noise_stays_below_worst_case_model() {
        let ctx = FvContext::new(FvParams::insecure_medium()).unwrap();
        let model = NoiseModel::new(&ctx);
        let mut rng = StdRng::seed_from_u64(17);
        let (sk, pk, rlk) = keygen(&ctx, &mut rng);
        let pt = Plaintext::new(vec![1], ctx.params().t, ctx.params().n);
        let ct = encrypt(&ctx, &pk, &pt, &mut rng);

        let fresh_measured = measure(&ctx, &sk, &ct).noise_bits;
        assert!(
            fresh_measured <= model.fresh().log2(),
            "fresh: measured {fresh_measured:.1} vs bound {:.1}",
            model.fresh().log2()
        );

        let mut bound = model.fresh();
        let mut acc = ct.clone();
        for level in 1..=2 {
            acc = mul(&ctx, &acc, &ct, &rlk, Backend::default());
            bound = model.after_mul(bound, model.fresh());
            let measured = measure(&ctx, &sk, &acc).noise_bits;
            assert!(
                measured <= bound.log2(),
                "level {level}: measured {measured:.1} vs bound {:.1}",
                bound.log2()
            );
        }
    }

    #[test]
    fn model_predicts_at_least_the_papers_depth() {
        let ctx = FvContext::new(FvParams::hpca19()).unwrap();
        let model = NoiseModel::new(&ctx);
        assert!(
            model.supported_depth() >= 4,
            "paper's depth-4 claim: model says {}",
            model.supported_depth()
        );
    }

    #[test]
    fn model_add_is_cheaper_than_mul() {
        let ctx = FvContext::new(FvParams::insecure_medium()).unwrap();
        let model = NoiseModel::new(&ctx);
        let f = model.fresh();
        assert!(model.after_add(f, f) < model.after_mul(f, f));
    }

    #[test]
    fn fresh_ciphertext_has_budget() {
        let ctx = FvContext::new(FvParams::insecure_medium()).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let (sk, pk, _) = keygen(&ctx, &mut rng);
        let pt = Plaintext::new(vec![1], ctx.params().t, ctx.params().n);
        let ct = encrypt(&ctx, &pk, &pt, &mut rng);
        let r = measure(&ctx, &sk, &ct);
        assert!(r.budget_bits > 50.0, "fresh budget {:.1}", r.budget_bits);
        assert!(r.noise_bits > 0.0);
    }

    #[test]
    fn mult_consumes_budget_monotonically() {
        let ctx = FvContext::new(FvParams::insecure_medium()).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let (sk, pk, rlk) = keygen(&ctx, &mut rng);
        let pt = Plaintext::new(vec![1], ctx.params().t, ctx.params().n);
        let one = encrypt(&ctx, &pk, &pt, &mut rng);
        let mut acc = one.clone();
        let mut last = measure(&ctx, &sk, &acc).budget_bits;
        for level in 1..=3 {
            acc = mul(&ctx, &acc, &one, &rlk, Backend::default());
            let r = measure(&ctx, &sk, &acc);
            assert!(
                r.budget_bits < last,
                "level {level}: budget must shrink ({} -> {})",
                last,
                r.budget_bits
            );
            last = r.budget_bits;
            assert_eq!(
                decrypt(&ctx, &sk, &acc).coeffs()[0],
                1,
                "still decryptable at level {level}"
            );
        }
    }
}
