//! Wire format for ciphertexts — the paper's transfer layout.
//!
//! §V-D: "The coefficients of a ciphertext are kept in contiguous memory
//! locations" and every residue coefficient is a 30-bit value moved as
//! 4 bytes (Table III's 98,304-byte polynomial = 6 residues × 4096 × 4 B).
//! This module serializes ciphertexts exactly that way: a small header,
//! then residue-major little-endian `u32` coefficients.

use crate::context::FvContext;
use crate::encrypt::Ciphertext;
use crate::error::Error;
use crate::rnspoly::{Domain, RnsPoly};

/// Magic tag guarding the header.
const MAGIC: u32 = 0x4845_4154; // "HEAT"

/// Serializes a ciphertext into the DMA byte layout.
///
/// # Panics
///
/// Panics if the ciphertext is in NTT domain (only coefficient-domain
/// ciphertexts cross the interface, as in the paper).
pub fn encode_ciphertext(ct: &Ciphertext) -> Vec<u8> {
    assert_eq!(ct.c0().domain(), Domain::Coefficient, "wire domain");
    let k = ct.c0().k() as u32;
    let n = ct.c0().n() as u32;
    let mut out = Vec::with_capacity(12 + 2 * (k as usize) * (n as usize) * 4);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&k.to_le_bytes());
    out.extend_from_slice(&n.to_le_bytes());
    // The contiguous limb-major buffer already *is* the paper's DMA
    // layout (residue-major, coefficient-contiguous): stream it out.
    for poly in [ct.c0(), ct.c1()] {
        for &c in poly.flat() {
            debug_assert!(c < 1 << 32, "coefficient exceeds 4-byte lane");
            out.extend_from_slice(&(c as u32).to_le_bytes());
        }
    }
    out
}

/// Deserializes a ciphertext from the DMA byte layout.
///
/// # Errors
///
/// Returns [`Error::Wire`] when the header, sizes or length are
/// inconsistent with the context.
pub fn decode_ciphertext(ctx: &FvContext, bytes: &[u8]) -> Result<Ciphertext, Error> {
    let u32_at = |off: usize| -> Result<u32, Error> {
        bytes
            .get(off..off + 4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            .ok_or_else(|| Error::Wire("truncated header".into()))
    };
    if u32_at(0)? != MAGIC {
        return Err(Error::Wire("bad magic".into()));
    }
    let k = u32_at(4)? as usize;
    let n = u32_at(8)? as usize;
    if k != ctx.params().k() || n != ctx.params().n {
        return Err(Error::Wire(format!(
            "shape mismatch: wire ({k},{n}) vs context ({},{})",
            ctx.params().k(),
            ctx.params().n
        )));
    }
    let want = 12 + 2 * k * n * 4;
    if bytes.len() != want {
        return Err(Error::Wire(format!(
            "length {} != expected {want}",
            bytes.len()
        )));
    }
    let mut off = 12;
    let mut read_poly = || -> RnsPoly {
        // One flat k·n read straight into the polynomial's contiguous
        // storage — no per-row vectors.
        let mut data = Vec::with_capacity(k * n);
        for _ in 0..k * n {
            let b = &bytes[off..off + 4];
            data.push(u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as u64);
            off += 4;
        }
        RnsPoly::from_flat(data, k, Domain::Coefficient)
    };
    let c0 = read_poly();
    let c1 = read_poly();
    // Validate coefficients against the moduli (C-VALIDATE).
    for (poly, name) in [(&c0, "c0"), (&c1, "c1")] {
        for (i, row) in poly.rows().enumerate() {
            let q = ctx.base_q().modulus(i).value();
            if row.iter().any(|&c| c >= q) {
                return Err(Error::Wire(format!(
                    "{name} residue {i} has out-of-range coefficient"
                )));
            }
        }
    }
    Ok(Ciphertext { c0, c1 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::Plaintext;
    use crate::encrypt::{decrypt, encrypt};
    use crate::keys::keygen;
    use crate::params::FvParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (FvContext, crate::keys::SecretKey, Ciphertext) {
        let ctx = FvContext::new(FvParams::insecure_toy()).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let (sk, pk, _) = keygen(&ctx, &mut rng);
        let pt = Plaintext::new(vec![5, 4, 3], ctx.params().t, ctx.params().n);
        let ct = encrypt(&ctx, &pk, &pt, &mut rng);
        (ctx, sk, ct)
    }

    #[test]
    fn roundtrip() {
        let (ctx, sk, ct) = setup();
        let bytes = encode_ciphertext(&ct);
        let back = decode_ciphertext(&ctx, &bytes).unwrap();
        assert_eq!(back, ct);
        assert_eq!(decrypt(&ctx, &sk, &back).coeffs()[..3], [5, 4, 3]);
    }

    #[test]
    fn wire_size_matches_paper_formula() {
        let (ctx, _, ct) = setup();
        let bytes = encode_ciphertext(&ct);
        assert_eq!(bytes.len(), 12 + 2 * ctx.params().k() * ctx.params().n * 4);
        assert_eq!(bytes.len() - 12, ct.transfer_bytes());
    }

    #[test]
    fn rejects_corruption() {
        let (ctx, _, ct) = setup();
        let mut bytes = encode_ciphertext(&ct);
        bytes[0] ^= 0xFF;
        assert!(decode_ciphertext(&ctx, &bytes).is_err(), "bad magic");

        let mut bytes = encode_ciphertext(&ct);
        bytes.truncate(bytes.len() - 1);
        assert!(decode_ciphertext(&ctx, &bytes).is_err(), "truncated");

        let mut bytes = encode_ciphertext(&ct);
        // Set a coefficient to u32::MAX (way above any 30-bit modulus).
        let len = bytes.len();
        bytes[len - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_ciphertext(&ctx, &bytes).is_err(), "out of range");
    }

    #[test]
    fn rejects_wrong_context() {
        let (_, _, ct) = setup();
        let other = FvContext::new(FvParams::insecure_medium()).unwrap();
        let bytes = encode_ciphertext(&ct);
        assert!(decode_ciphertext(&other, &bytes).is_err());
    }
}
