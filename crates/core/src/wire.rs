//! Wire format for ciphertexts — the paper's transfer layout.
//!
//! §V-D: "The coefficients of a ciphertext are kept in contiguous memory
//! locations" and every residue coefficient is a 30-bit value moved as
//! 4 bytes (Table III's 98,304-byte polynomial = 6 residues × 4096 × 4 B).
//! This module serializes ciphertexts exactly that way: a small header,
//! then residue-major little-endian `u32` coefficients.

use crate::context::FvContext;
use crate::encrypt::Ciphertext;
use crate::error::Error;
use crate::rnspoly::{Domain, RnsPoly};

/// Magic tag guarding the header.
const MAGIC: u32 = 0x4845_4154; // "HEAT"

/// Serializes a ciphertext into the DMA byte layout.
///
/// # Panics
///
/// Panics if the ciphertext is in NTT domain (only coefficient-domain
/// ciphertexts cross the interface, as in the paper).
pub fn encode_ciphertext(ct: &Ciphertext) -> Vec<u8> {
    assert_eq!(ct.c0().domain(), Domain::Coefficient, "wire domain");
    let k = ct.c0().k() as u32;
    let n = ct.c0().n() as u32;
    let mut out = Vec::with_capacity(12 + 2 * (k as usize) * (n as usize) * 4);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&k.to_le_bytes());
    out.extend_from_slice(&n.to_le_bytes());
    // The contiguous limb-major buffer already *is* the paper's DMA
    // layout (residue-major, coefficient-contiguous): stream it out.
    for poly in [ct.c0(), ct.c1()] {
        for &c in poly.flat() {
            debug_assert!(c < 1 << 32, "coefficient exceeds 4-byte lane");
            out.extend_from_slice(&(c as u32).to_le_bytes());
        }
    }
    out
}

/// Deserializes a ciphertext from the DMA byte layout.
///
/// # Errors
///
/// Returns [`Error::Wire`] when the header, sizes or length are
/// inconsistent with the context.
pub fn decode_ciphertext(ctx: &FvContext, bytes: &[u8]) -> Result<Ciphertext, Error> {
    let u32_at = |off: usize| -> Result<u32, Error> {
        bytes
            .get(off..off + 4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            .ok_or_else(|| Error::Wire("truncated header".into()))
    };
    if u32_at(0)? != MAGIC {
        return Err(Error::Wire("bad magic".into()));
    }
    let k = u32_at(4)? as usize;
    let n = u32_at(8)? as usize;
    if k != ctx.params().k() || n != ctx.params().n {
        return Err(Error::Wire(format!(
            "shape mismatch: wire ({k},{n}) vs context ({},{})",
            ctx.params().k(),
            ctx.params().n
        )));
    }
    let want = 12 + 2 * k * n * 4;
    if bytes.len() != want {
        return Err(Error::Wire(format!(
            "length {} != expected {want}",
            bytes.len()
        )));
    }
    let mut off = 12;
    let mut read_poly = || -> RnsPoly {
        // One flat k·n read straight into the polynomial's contiguous
        // storage — no per-row vectors.
        let mut data = Vec::with_capacity(k * n);
        for _ in 0..k * n {
            let b = &bytes[off..off + 4];
            data.push(u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as u64);
            off += 4;
        }
        RnsPoly::from_flat(data, k, Domain::Coefficient)
    };
    let c0 = read_poly();
    let c1 = read_poly();
    // Validate coefficients against the moduli (C-VALIDATE).
    for (poly, name) in [(&c0, "c0"), (&c1, "c1")] {
        for (i, row) in poly.rows().enumerate() {
            let q = ctx.base_q().modulus(i).value();
            if row.iter().any(|&c| c >= q) {
                return Err(Error::Wire(format!(
                    "{name} residue {i} has out-of-range coefficient"
                )));
            }
        }
    }
    Ok(Ciphertext { c0, c1 })
}

// ---------------------------------------------------------------------------
// Key material codecs
// ---------------------------------------------------------------------------
//
// Ciphertexts cross the interface in the paper's 4-byte coefficient-domain
// DMA layout above. Key material does not fit that mold: every key the
// evaluator holds (public, relinearization, Galois) lives permanently in
// the NTT domain, and its lanes are full `u64` residues. The codecs below
// exist for the cluster tier — a router streams a tenant's keys to the
// node that owns (or newly owns) that tenant — so they use their own
// magic, keep the NTT domain explicit, and re-validate every coefficient
// against the receiving context (C-VALIDATE applies to keys too: a
// corrupt key silently corrupts every later evaluation).

/// Magic tag guarding key-material blobs ("HEKY").
const KEY_MAGIC: u32 = 0x4845_4B59;

const TAG_PUBLIC: u8 = 0;
const TAG_RELIN: u8 = 1;
const TAG_GALOIS_SET: u8 = 2;

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Streams one NTT-domain polynomial: `domain u8 | k·n × u64` (the shape
/// is carried once in the enclosing header).
fn put_key_poly(out: &mut Vec<u8>, p: &RnsPoly) {
    out.push(match p.domain() {
        Domain::Coefficient => 0,
        Domain::Ntt => 1,
    });
    for &c in p.flat() {
        out.extend_from_slice(&c.to_le_bytes());
    }
}

/// Byte cursor with the same strictness conventions as the request
/// decoder in `hefv-engine`: every read is bounds-checked, and the caller
/// finishes with an exact-length check.
struct Cursor<'a> {
    bytes: &'a [u8],
    off: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, len: usize) -> Result<&'a [u8], Error> {
        let s = self
            .bytes
            .get(self.off..self.off + len)
            .ok_or_else(|| Error::Wire("truncated key blob".into()))?;
        self.off += len;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, Error> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, Error> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, Error> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn finish(&self) -> Result<(), Error> {
        if self.off == self.bytes.len() {
            Ok(())
        } else {
            Err(Error::Wire(format!(
                "{} trailing bytes after key blob",
                self.bytes.len() - self.off
            )))
        }
    }
}

/// Reads one key polynomial, validating domain and residue ranges.
fn read_key_poly(ctx: &FvContext, cur: &mut Cursor<'_>) -> Result<RnsPoly, Error> {
    let k = ctx.params().k();
    let n = ctx.params().n;
    if cur.u8()? != 1 {
        return Err(Error::Wire("key polynomial must be NTT-domain".into()));
    }
    let raw = cur.take(k * n * 8)?;
    let mut data = Vec::with_capacity(k * n);
    for chunk in raw.chunks_exact(8) {
        data.push(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
    }
    let poly = RnsPoly::from_flat(data, k, Domain::Ntt);
    for (i, row) in poly.rows().enumerate() {
        let q = ctx.base_q().modulus(i).value();
        if row.iter().any(|&c| c >= q) {
            return Err(Error::Wire(format!(
                "key residue {i} has out-of-range coefficient"
            )));
        }
    }
    Ok(poly)
}

/// Checks the common `magic | tag | k | n` key header against a context.
fn read_key_header(ctx: &FvContext, cur: &mut Cursor<'_>, want_tag: u8) -> Result<(), Error> {
    if cur.u32()? != KEY_MAGIC {
        return Err(Error::Wire("bad key magic".into()));
    }
    let tag = cur.u8()?;
    if tag != want_tag {
        return Err(Error::Wire(format!(
            "key blob tag {tag} where {want_tag} was expected"
        )));
    }
    let k = cur.u32()? as usize;
    let n = cur.u32()? as usize;
    if k != ctx.params().k() || n != ctx.params().n {
        return Err(Error::Wire(format!(
            "key shape mismatch: wire ({k},{n}) vs context ({},{})",
            ctx.params().k(),
            ctx.params().n
        )));
    }
    Ok(())
}

fn put_key_header(out: &mut Vec<u8>, tag: u8, p: &RnsPoly) {
    put_u32(out, KEY_MAGIC);
    out.push(tag);
    put_u32(out, p.k() as u32);
    put_u32(out, p.n() as u32);
}

/// Serializes a public key (`p0`, `p1`, both NTT-domain).
pub fn encode_public_key(pk: &crate::keys::PublicKey) -> Vec<u8> {
    let mut out = Vec::new();
    put_key_header(&mut out, TAG_PUBLIC, pk.p0_ntt());
    put_key_poly(&mut out, pk.p0_ntt());
    put_key_poly(&mut out, pk.p1_ntt());
    out
}

/// Deserializes a public key.
///
/// # Errors
///
/// Returns [`Error::Wire`] on any header, shape, domain, length or
/// residue-range inconsistency with the context.
pub fn decode_public_key(ctx: &FvContext, bytes: &[u8]) -> Result<crate::keys::PublicKey, Error> {
    let mut cur = Cursor { bytes, off: 0 };
    read_key_header(ctx, &mut cur, TAG_PUBLIC)?;
    let p0_ntt = read_key_poly(ctx, &mut cur)?;
    let p1_ntt = read_key_poly(ctx, &mut cur)?;
    cur.finish()?;
    Ok(crate::keys::PublicKey { p0_ntt, p1_ntt })
}

/// Serializes a relinearization key (digit pairs, NTT-domain).
pub fn encode_relin_key(rlk: &crate::keys::RelinKey) -> Vec<u8> {
    let mut out = Vec::new();
    put_key_header(&mut out, TAG_RELIN, rlk.rlk0(0));
    put_u16(&mut out, rlk.digits() as u16);
    for i in 0..rlk.digits() {
        put_key_poly(&mut out, rlk.rlk0(i));
        put_key_poly(&mut out, rlk.rlk1(i));
    }
    out
}

/// Deserializes a relinearization key.
///
/// # Errors
///
/// See [`decode_public_key`]; additionally rejects a digit count that
/// disagrees with the context's residue count.
pub fn decode_relin_key(ctx: &FvContext, bytes: &[u8]) -> Result<crate::keys::RelinKey, Error> {
    let mut cur = Cursor { bytes, off: 0 };
    read_key_header(ctx, &mut cur, TAG_RELIN)?;
    let digits = cur.u16()? as usize;
    if digits != ctx.params().k() {
        return Err(Error::Wire(format!(
            "relin key has {digits} digits, context wants {}",
            ctx.params().k()
        )));
    }
    let mut rlk0 = Vec::with_capacity(digits);
    let mut rlk1 = Vec::with_capacity(digits);
    for _ in 0..digits {
        rlk0.push(read_key_poly(ctx, &mut cur)?);
        rlk1.push(read_key_poly(ctx, &mut cur)?);
    }
    cur.finish()?;
    Ok(crate::keys::RelinKey { rlk0, rlk1 })
}

/// Serializes a Galois key set: every switching key's digit pairs plus the
/// chain/group index structure the slot-sum fold walks. The narrow 32-bit
/// key shadows are *not* shipped — the receiver rebuilds them, so a key
/// set decoded on a node takes the same SoP fast path as a local one.
pub fn encode_galois_key_set(gks: &crate::galois::GaloisKeySet) -> Vec<u8> {
    let mut out = Vec::new();
    let first = gks.keys().first().expect("key set is never empty");
    put_key_header(&mut out, TAG_GALOIS_SET, first.ksk0(0));
    put_u16(&mut out, gks.keys().len() as u16);
    for key in gks.keys() {
        put_u32(&mut out, key.g as u32);
        for p in key.ksk0_polys().iter().chain(key.ksk1_polys()) {
            put_key_poly(&mut out, p);
        }
    }
    put_u16(&mut out, gks.chain().len() as u16);
    for &i in gks.chain() {
        put_u16(&mut out, i as u16);
    }
    put_u16(&mut out, gks.groups().len() as u16);
    for group in gks.groups() {
        put_u16(&mut out, group.len() as u16);
        for &i in group {
            put_u16(&mut out, i as u16);
        }
    }
    out
}

/// Deserializes a Galois key set, rebuilding each key's narrow shadows.
///
/// # Errors
///
/// See [`decode_public_key`]; additionally rejects invalid automorphism
/// exponents and chain/group indices past the key vector.
pub fn decode_galois_key_set(
    ctx: &FvContext,
    bytes: &[u8],
) -> Result<crate::galois::GaloisKeySet, Error> {
    let mut cur = Cursor { bytes, off: 0 };
    read_key_header(ctx, &mut cur, TAG_GALOIS_SET)?;
    let k = ctx.params().k();
    let n_keys = cur.u16()? as usize;
    let mut keys = Vec::with_capacity(n_keys);
    for _ in 0..n_keys {
        let g = cur.u32()? as usize;
        let mut ksk0 = Vec::with_capacity(k);
        let mut ksk1 = Vec::with_capacity(k);
        for _ in 0..k {
            ksk0.push(read_key_poly(ctx, &mut cur)?);
        }
        for _ in 0..k {
            ksk1.push(read_key_poly(ctx, &mut cur)?);
        }
        keys.push(crate::galois::GaloisKey::from_parts(ctx, g, ksk0, ksk1)?);
    }
    let chain_len = cur.u16()? as usize;
    let mut chain = Vec::with_capacity(chain_len);
    for _ in 0..chain_len {
        chain.push(cur.u16()? as usize);
    }
    let n_groups = cur.u16()? as usize;
    let mut groups = Vec::with_capacity(n_groups);
    for _ in 0..n_groups {
        let len = cur.u16()? as usize;
        let mut group = Vec::with_capacity(len);
        for _ in 0..len {
            group.push(cur.u16()? as usize);
        }
        groups.push(group);
    }
    cur.finish()?;
    crate::galois::GaloisKeySet::from_parts(keys, chain, groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::Plaintext;
    use crate::encrypt::{decrypt, encrypt};
    use crate::keys::keygen;
    use crate::params::FvParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (FvContext, crate::keys::SecretKey, Ciphertext) {
        let ctx = FvContext::new(FvParams::insecure_toy()).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let (sk, pk, _) = keygen(&ctx, &mut rng);
        let pt = Plaintext::new(vec![5, 4, 3], ctx.params().t, ctx.params().n);
        let ct = encrypt(&ctx, &pk, &pt, &mut rng);
        (ctx, sk, ct)
    }

    #[test]
    fn roundtrip() {
        let (ctx, sk, ct) = setup();
        let bytes = encode_ciphertext(&ct);
        let back = decode_ciphertext(&ctx, &bytes).unwrap();
        assert_eq!(back, ct);
        assert_eq!(decrypt(&ctx, &sk, &back).coeffs()[..3], [5, 4, 3]);
    }

    #[test]
    fn wire_size_matches_paper_formula() {
        let (ctx, _, ct) = setup();
        let bytes = encode_ciphertext(&ct);
        assert_eq!(bytes.len(), 12 + 2 * ctx.params().k() * ctx.params().n * 4);
        assert_eq!(bytes.len() - 12, ct.transfer_bytes());
    }

    #[test]
    fn rejects_corruption() {
        let (ctx, _, ct) = setup();
        let mut bytes = encode_ciphertext(&ct);
        bytes[0] ^= 0xFF;
        assert!(decode_ciphertext(&ctx, &bytes).is_err(), "bad magic");

        let mut bytes = encode_ciphertext(&ct);
        bytes.truncate(bytes.len() - 1);
        assert!(decode_ciphertext(&ctx, &bytes).is_err(), "truncated");

        let mut bytes = encode_ciphertext(&ct);
        // Set a coefficient to u32::MAX (way above any 30-bit modulus).
        let len = bytes.len();
        bytes[len - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_ciphertext(&ctx, &bytes).is_err(), "out of range");
    }

    #[test]
    fn rejects_wrong_context() {
        let (_, _, ct) = setup();
        let other = FvContext::new(FvParams::insecure_medium()).unwrap();
        let bytes = encode_ciphertext(&ct);
        assert!(decode_ciphertext(&other, &bytes).is_err());
    }

    #[test]
    fn public_key_roundtrips_and_still_encrypts() {
        let ctx = FvContext::new(FvParams::insecure_toy()).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let (sk, pk, _) = keygen(&ctx, &mut rng);
        let back = decode_public_key(&ctx, &encode_public_key(&pk)).unwrap();
        assert_eq!(back.p0_ntt(), pk.p0_ntt());
        assert_eq!(back.p1_ntt(), pk.p1_ntt());
        let t = ctx.params().t;
        let pt = Plaintext::new(vec![9, 1], t, ctx.params().n);
        let ct = encrypt(&ctx, &back, &pt, &mut rng);
        assert_eq!(decrypt(&ctx, &sk, &ct).coeffs()[..2], [9, 1]);
    }

    #[test]
    fn relin_key_roundtrips() {
        let ctx = FvContext::new(FvParams::insecure_toy()).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let (_, _, rlk) = keygen(&ctx, &mut rng);
        let back = decode_relin_key(&ctx, &encode_relin_key(&rlk)).unwrap();
        assert_eq!(back.digits(), rlk.digits());
        for i in 0..rlk.digits() {
            assert_eq!(back.rlk0(i), rlk.rlk0(i));
            assert_eq!(back.rlk1(i), rlk.rlk1(i));
        }
    }

    #[test]
    fn galois_key_set_roundtrips_with_working_slot_sum() {
        use crate::galois::{sum_slots, GaloisKeySet};
        use crate::keys::SecretKey;

        // Batching needs a prime t ≡ 1 (mod 2n); toy's t=16 has no slots.
        let mut params = FvParams::insecure_medium();
        params.t = 7681;
        let ctx = FvContext::new(params).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let pk = crate::keys::PublicKey::generate(&ctx, &sk, &mut rng);
        let gks = GaloisKeySet::for_slot_sum(&ctx, &sk, &mut rng);

        let back = decode_galois_key_set(&ctx, &encode_galois_key_set(&gks)).unwrap();
        assert_eq!(back.keys().len(), gks.keys().len());
        assert_eq!(back.chain(), gks.chain());
        assert_eq!(back.groups(), gks.groups());

        // The decoded set must drive the hoisted fold end to end — this
        // exercises the rebuilt narrow shadows, not just the digit bytes.
        let t = ctx.params().t;
        let n = ctx.params().n;
        let slots: Vec<u64> = (0..n as u64).map(|i| i % 5).collect();
        let want: u64 = slots.iter().sum::<u64>() % t;
        let encoder = crate::encoder::BatchEncoder::new(t, n).unwrap();
        let ct = encrypt(&ctx, &pk, &encoder.encode(&slots), &mut rng);
        let summed = sum_slots(&ctx, &ct, &back);
        let got = encoder.decode(&decrypt(&ctx, &sk, &summed));
        assert!(got.iter().all(|&v| v == want), "slot sum with decoded keys");
    }

    #[test]
    fn key_blobs_reject_corruption() {
        let ctx = FvContext::new(FvParams::insecure_toy()).unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        let (_, pk, rlk) = keygen(&ctx, &mut rng);

        let mut bytes = encode_public_key(&pk);
        bytes[0] ^= 0xFF;
        assert!(decode_public_key(&ctx, &bytes).is_err(), "bad magic");

        let mut bytes = encode_public_key(&pk);
        bytes.truncate(bytes.len() - 3);
        assert!(decode_public_key(&ctx, &bytes).is_err(), "truncated");

        let mut bytes = encode_public_key(&pk);
        bytes.push(0);
        assert!(decode_public_key(&ctx, &bytes).is_err(), "trailing bytes");

        // Out-of-range residue: max out the last u64 lane.
        let mut bytes = encode_public_key(&pk);
        let len = bytes.len();
        bytes[len - 8..].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_public_key(&ctx, &bytes).is_err(), "out of range");

        // Cross-decoding the wrong key kind must fail on the tag.
        let rlk_bytes = encode_relin_key(&rlk);
        assert!(decode_public_key(&ctx, &rlk_bytes).is_err(), "wrong tag");

        let other = FvContext::new(FvParams::insecure_medium()).unwrap();
        assert!(
            decode_public_key(&other, &encode_public_key(&pk)).is_err(),
            "wrong context"
        );
    }
}
