//! FV parameter sets.
//!
//! The paper's implementation targets multiplicative depth 4 with at least
//! 80-bit security: `n = 4096`, `q` a product of six 30-bit primes
//! (180 bits), `Q = q·p` with `p` a product of seven more 30-bit primes
//! (390 bits), error standard deviation `σ = 102` (§III-A, §III-B).
//!
//! Table V's scaled sets double both the degree and the coefficient size
//! per step; [`FvParams::table5`] builds them.

use hefv_math::primes::ntt_primes;
use serde::{Deserialize, Serialize};

/// Parameters of an FV instance.
///
/// # Example
///
/// ```
/// use hefv_core::params::FvParams;
/// let p = FvParams::hpca19();
/// assert_eq!(p.n, 4096);
/// assert_eq!(p.q_primes.len(), 6);
/// assert_eq!(p.p_primes.len(), 7);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FvParams {
    /// Human-readable name of the set.
    pub name: String,
    /// Ring degree (power of two).
    pub n: usize,
    /// RNS primes whose product is the ciphertext modulus `q`.
    pub q_primes: Vec<u64>,
    /// RNS primes whose product is `p = Q/q`.
    pub p_primes: Vec<u64>,
    /// Plaintext modulus `t`.
    pub t: u64,
    /// Standard deviation of the discrete Gaussian error distribution.
    pub sigma: f64,
}

impl FvParams {
    /// The paper's parameter set (§III): `n = 4096`, 180-bit `q` from six
    /// 30-bit primes, seven extension primes, `σ = 102`, binary plaintexts.
    pub fn hpca19() -> Self {
        Self::hpca19_with_t(2)
    }

    /// The paper's set with a caller-chosen plaintext modulus.
    ///
    /// # Panics
    ///
    /// Panics if the prime pool cannot be built (cannot happen for the
    /// paper's sizes).
    pub fn hpca19_with_t(t: u64) -> Self {
        let ps = ntt_primes(30, 4096, 13).expect("13 NTT primes for n=4096");
        FvParams {
            name: "HPCA19".into(),
            n: 4096,
            q_primes: ps[..6].to_vec(),
            p_primes: ps[6..].to_vec(),
            t,
            sigma: 102.0,
        }
    }

    /// The paper's set with `t = 65537`, which is prime and `≡ 1 (mod 2n)`,
    /// enabling SIMD batching over 4096 slots.
    pub fn hpca19_batching() -> Self {
        Self::hpca19_with_t(65537)
    }

    /// A small parameter set for fast tests: `n = 64`, three `q` primes,
    /// four `p` primes. *Not secure* — testing only.
    pub fn insecure_toy() -> Self {
        let ps = ntt_primes(30, 64, 7).expect("7 NTT primes for n=64");
        FvParams {
            name: "toy".into(),
            n: 64,
            q_primes: ps[..3].to_vec(),
            p_primes: ps[3..].to_vec(),
            t: 16,
            sigma: 3.2,
        }
    }

    /// A mid-size test set: `n = 256`, matching the paper's 6+7 structure.
    /// *Not secure* — testing only.
    pub fn insecure_medium() -> Self {
        let ps = ntt_primes(30, 256, 13).expect("13 NTT primes for n=256");
        FvParams {
            name: "medium".into(),
            n: 256,
            q_primes: ps[..6].to_vec(),
            p_primes: ps[6..].to_vec(),
            t: 2,
            sigma: 3.2,
        }
    }

    /// Table V's scaled parameter sets. `step = 0` is the paper's set
    /// `(2^12, 180)`; each step doubles the degree and the coefficient
    /// size: `(2^13, 360)`, `(2^14, 720)`, `(2^15, 1440)`.
    ///
    /// # Panics
    ///
    /// Panics if `step > 3`.
    pub fn table5(step: usize) -> Self {
        assert!(step <= 3, "Table V has four rows");
        let n = 4096usize << step;
        let q_count = 6 << step; // 180, 360, 720, 1440 bits of q
        let p_count = q_count + 1; // keep p one prime larger, as the paper does
        let ps = ntt_primes(30, n, q_count + p_count)
            .expect("enough 30-bit NTT primes for the Table V sets");
        FvParams {
            name: format!("table5-row{}", step + 1),
            n,
            q_primes: ps[..q_count].to_vec(),
            p_primes: ps[q_count..].to_vec(),
            t: 2,
            sigma: 102.0,
        }
    }

    /// Bits of `q` (sum of prime widths, as the paper counts: 6 × 30 = 180).
    pub fn log_q(&self) -> u32 {
        self.q_primes.iter().map(|p| 64 - p.leading_zeros()).sum()
    }

    /// Bits of `Q = q·p`.
    pub fn log_big_q(&self) -> u32 {
        self.log_q()
            + self
                .p_primes
                .iter()
                .map(|p| 64 - p.leading_zeros())
                .sum::<u32>()
    }

    /// Number of residues in the `q` basis.
    pub fn k(&self) -> usize {
        self.q_primes.len()
    }

    /// Number of residues in the `p` basis.
    pub fn l(&self) -> usize {
        self.p_primes.len()
    }

    /// Whether `t` supports SIMD batching (prime and `≡ 1 mod 2n`).
    pub fn supports_batching(&self) -> bool {
        hefv_math::primes::is_prime(self.t) && (self.t - 1).is_multiple_of(2 * self.n as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hpca19_matches_paper() {
        let p = FvParams::hpca19();
        assert_eq!(p.n, 4096);
        assert_eq!(p.log_q(), 180);
        assert_eq!(p.log_big_q(), 390);
        assert_eq!(p.k(), 6);
        assert_eq!(p.l(), 7);
        assert_eq!(p.sigma, 102.0);
    }

    #[test]
    fn batching_set_supports_batching() {
        assert!(FvParams::hpca19_batching().supports_batching());
        assert!(!FvParams::hpca19().supports_batching());
    }

    #[test]
    fn toy_sets_are_consistent() {
        for p in [FvParams::insecure_toy(), FvParams::insecure_medium()] {
            assert!(p.n.is_power_of_two());
            assert!(p.k() >= 2 && p.l() > p.k() - 2);
        }
    }

    #[test]
    fn table5_scaling() {
        let r1 = FvParams::table5(0);
        assert_eq!(r1.n, 4096);
        assert_eq!(r1.log_q(), 180);
        let r2 = FvParams::table5(1);
        assert_eq!(r2.n, 8192);
        assert_eq!(r2.log_q(), 360);
    }

    #[test]
    #[should_panic(expected = "four rows")]
    fn table5_rejects_row5() {
        let _ = FvParams::table5(4);
    }
}
