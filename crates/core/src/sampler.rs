//! Randomness: uniform ring elements, ternary secrets and the discrete
//! Gaussian error distribution.
//!
//! The paper samples errors from a discrete Gaussian with `σ = 102`
//! (§III-A) and the encryption randomness `u` from "uniformly random signed
//! binary numbers" (§II-B), i.e. coefficients in `{-1, 0, 1}`.

use crate::rnspoly::{Domain, RnsPoly};
use hefv_math::rns::RnsBasis;
use rand::Rng;

/// Samples a polynomial with uniform coefficients modulo each prime.
pub fn uniform_poly<R: Rng + ?Sized>(rng: &mut R, basis: &RnsBasis, n: usize) -> RnsPoly {
    let mut data = Vec::with_capacity(basis.len() * n);
    for m in basis.moduli() {
        data.extend((0..n).map(|_| rng.gen_range(0..m.value())));
    }
    RnsPoly::from_flat(data, basis.len(), Domain::Coefficient)
}

/// Samples signed ternary coefficients (uniform over `{-1, 0, 1}`).
pub fn ternary_coeffs<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<i64> {
    (0..n).map(|_| rng.gen_range(-1i64..=1)).collect()
}

/// Samples one discrete Gaussian value by Box-Muller rounding.
///
/// For the paper's σ = 102 the statistical distance from the rounded
/// continuous Gaussian is negligible; cryptographically stronger samplers
/// (CDT, Knuth-Yao) trade code for constant-time behaviour the simulator
/// does not need.
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> i64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let mag = sigma * (-2.0 * u1.ln()).sqrt();
        let z = mag * (2.0 * std::f64::consts::PI * u2).cos();
        // Tail cut at 12σ, as is conventional (probability < 2^-100).
        if z.abs() <= 12.0 * sigma {
            return z.round() as i64;
        }
    }
}

/// Samples a Gaussian error polynomial over `basis`.
pub fn gaussian_poly<R: Rng + ?Sized>(
    rng: &mut R,
    basis: &RnsBasis,
    n: usize,
    sigma: f64,
) -> RnsPoly {
    let coeffs: Vec<i64> = (0..n).map(|_| gaussian(rng, sigma)).collect();
    RnsPoly::from_signed(&coeffs, basis)
}

/// Samples a ternary polynomial over `basis` (the secret / the encryption
/// randomness `u`).
pub fn ternary_poly<R: Rng + ?Sized>(rng: &mut R, basis: &RnsBasis, n: usize) -> RnsPoly {
    RnsPoly::from_signed(&ternary_coeffs(rng, n), basis)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hefv_math::primes::ntt_primes;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn basis() -> RnsBasis {
        RnsBasis::new(&ntt_primes(30, 64, 3).unwrap()).unwrap()
    }

    #[test]
    fn uniform_in_range() {
        let b = basis();
        let mut rng = StdRng::seed_from_u64(1);
        let p = uniform_poly(&mut rng, &b, 64);
        for (i, m) in b.moduli().iter().enumerate() {
            assert!(p.row(i).iter().all(|&c| c < m.value()));
        }
    }

    #[test]
    fn ternary_values_only() {
        let mut rng = StdRng::seed_from_u64(2);
        let c = ternary_coeffs(&mut rng, 10_000);
        assert!(c.iter().all(|&v| (-1..=1).contains(&v)));
        // All three values should occur in 10k draws.
        for v in -1..=1 {
            assert!(c.contains(&v), "value {v} missing");
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let sigma = 102.0;
        let n = 50_000;
        let xs: Vec<i64> = (0..n).map(|_| gaussian(&mut rng, sigma)).collect();
        let mean = xs.iter().sum::<i64>() as f64 / n as f64;
        let var = xs.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 3.0, "mean {mean} too far from 0");
        assert!(
            (var.sqrt() - sigma).abs() / sigma < 0.05,
            "std {} deviates from {sigma}",
            var.sqrt()
        );
        assert!(xs.iter().all(|&x| x.abs() <= (12.0 * sigma) as i64));
    }

    #[test]
    fn polys_are_reproducible_with_seed() {
        let b = basis();
        let a = gaussian_poly(&mut StdRng::seed_from_u64(7), &b, 64, 3.2);
        let c = gaussian_poly(&mut StdRng::seed_from_u64(7), &b, 64, 3.2);
        assert_eq!(a, c);
        let d = gaussian_poly(&mut StdRng::seed_from_u64(8), &b, 64, 3.2);
        assert_ne!(a, d);
    }
}
