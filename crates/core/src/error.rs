//! The library error type.
//!
//! The arithmetic substrate (`hefv-math`) reports failures as plain
//! `String`s — those are construction-time conditions (non-NTT-friendly
//! primes, overlapping bases) that the paper's hardware flow would catch at
//! configuration time. This crate wraps them, and its own validation, in a
//! structured [`Error`] so callers (notably `hefv-engine`) can route on the
//! failure class instead of parsing messages.

use core::fmt;

/// Everything that can go wrong constructing or using an FV instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A parameter set failed validation (`t` out of range, bad shapes).
    InvalidParams(String),
    /// The arithmetic substrate rejected the configuration (primes not
    /// NTT-friendly for `n`, overlapping RNS bases, …).
    Math(String),
    /// An encoder precondition failed (e.g. batching needs a prime
    /// `t ≡ 1 mod 2n`).
    Encoding(String),
    /// A wire-format payload was malformed or inconsistent with the
    /// receiving context.
    Wire(String),
}

impl Error {
    /// The failure class as a stable lowercase tag (for logs/telemetry).
    pub fn kind(&self) -> &'static str {
        match self {
            Error::InvalidParams(_) => "invalid-params",
            Error::Math(_) => "math",
            Error::Encoding(_) => "encoding",
            Error::Wire(_) => "wire",
        }
    }

    /// The human-readable reason.
    pub fn reason(&self) -> &str {
        match self {
            Error::InvalidParams(r) | Error::Math(r) | Error::Encoding(r) | Error::Wire(r) => r,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidParams(r) => write!(f, "invalid parameters: {r}"),
            Error::Math(r) => write!(f, "arithmetic substrate: {r}"),
            Error::Encoding(r) => write!(f, "encoding: {r}"),
            Error::Wire(r) => write!(f, "wire format: {r}"),
        }
    }
}

impl std::error::Error for Error {}

/// Bridge for callers (the workspace examples, app binaries) that return
/// `Result<_, String>`.
impl From<Error> for String {
    fn from(e: Error) -> Self {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_kind_are_stable() {
        let e = Error::InvalidParams("t must be at least 2".into());
        assert_eq!(e.kind(), "invalid-params");
        assert_eq!(e.to_string(), "invalid parameters: t must be at least 2");
        assert_eq!(Error::Math("x".into()).kind(), "math");
        assert_eq!(Error::Wire("y".into()).reason(), "y");
    }

    #[test]
    fn string_bridge_keeps_question_mark_working() {
        fn f() -> Result<(), String> {
            Err(Error::Encoding("no batching".into()))?;
            Ok(())
        }
        assert_eq!(f().unwrap_err(), "encoding: no batching");
    }

    #[test]
    fn error_is_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(Error::Wire("bad magic".into()));
        assert!(e.to_string().contains("bad magic"));
    }
}
