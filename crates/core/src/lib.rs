//! # hefv-core
//!
//! The Fan-Vercauteren (FV/BFV) somewhat-homomorphic encryption scheme, as
//! implemented by the HPCA 2019 paper *"FPGA-Based High-Performance Parallel
//! Architecture for Homomorphic Computing on Encrypted Data"*: RNS
//! representation throughout, with both the traditional-CRT and the HPS
//! `Lift`/`Scale` datapaths selectable per multiplication.
//!
//! # Quickstart
//!
//! ```
//! use hefv_core::prelude::*;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), hefv_core::Error> {
//! let ctx = FvContext::new(FvParams::insecure_toy())?;
//! let mut rng = StdRng::seed_from_u64(7);
//! let (sk, pk, rlk) = keygen(&ctx, &mut rng);
//!
//! let t = ctx.params().t;
//! let n = ctx.params().n;
//! let two = encrypt(&ctx, &pk, &Plaintext::new(vec![2], t, n), &mut rng);
//! let three = encrypt(&ctx, &pk, &Plaintext::new(vec![3], t, n), &mut rng);
//! let prod = mul(&ctx, &two, &three, &rlk, Backend::default());
//! assert_eq!(decrypt(&ctx, &sk, &prod).coeffs()[0], 6);
//! # Ok(())
//! # }
//! ```

pub mod context;
pub mod crc32;
pub mod encoder;
pub mod encrypt;
pub mod error;
pub mod eval;
pub mod galois;
pub mod keys;
pub mod noise;
pub mod parallel;
pub mod params;
pub mod rnspoly;
pub mod sampler;
pub mod scratch;
pub mod security;
pub mod wire;

pub use error::Error;

/// Commonly used items in one import.
pub mod prelude {
    pub use crate::context::FvContext;
    pub use crate::encoder::{BatchEncoder, IntegerEncoder, Plaintext};
    pub use crate::encrypt::{decrypt, encrypt, encrypt_symmetric, trivial_encrypt, Ciphertext};
    pub use crate::error::Error;
    pub use crate::eval::{add, mul, mul_plain, neg, square, sub, Backend, PlainOperand};
    pub use crate::galois::{
        apply_galois, rotate_many, sum_slots, GaloisKey, GaloisKeySet, HoistedCiphertext,
    };
    pub use crate::keys::{keygen, PublicKey, RelinKey, SecretKey};
    pub use crate::noise::measure;
    pub use crate::parallel::mul_threaded;
    pub use crate::params::FvParams;
    pub use crate::rnspoly::{Domain, RnsPoly};
    pub use crate::scratch::Arena;
    pub use hefv_math::rns::HpsPrecision;
}
