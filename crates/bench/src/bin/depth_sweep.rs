//! Demonstrates the paper's depth-4 claim experimentally: a chain of
//! homomorphic multiplications at the full parameter set, printing the
//! measured noise budget per level until exhaustion.

use hefv_core::noise::{measure, NoiseModel};
use hefv_core::prelude::*;
use hefv_core::security;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let ctx = FvContext::new(FvParams::hpca19()).expect("params");
    let mut rng = StdRng::seed_from_u64(4096);
    let (sk, pk, rlk) = keygen(&ctx, &mut rng);
    let model = NoiseModel::new(&ctx);
    let sec = security::estimate(ctx.params());

    println!("\n=== depth sweep — n=4096, 180-bit q, σ=102 (the paper's set) ===");
    println!(
        "security (conservative LP estimate): {:.0} bits (paper claims ≥80 via [26])",
        sec.bits
    );
    println!(
        "worst-case model supported depth   : {}",
        model.supported_depth()
    );
    println!();
    println!(
        "{:<8} {:>16} {:>18} {:>12}",
        "level", "noise (bits)", "budget (bits)", "decrypts?"
    );

    let one = encrypt(
        &ctx,
        &pk,
        &Plaintext::new(vec![1], 2, ctx.params().n),
        &mut rng,
    );
    let mut acc = one.clone();
    let fresh = measure(&ctx, &sk, &acc);
    println!(
        "{:<8} {:>16.1} {:>18.1} {:>12}",
        0, fresh.noise_bits, fresh.budget_bits, "yes"
    );
    for level in 1..=8 {
        acc = mul(&ctx, &acc, &one, &rlk, Backend::default());
        let r = measure(&ctx, &sk, &acc);
        let ok = decrypt(&ctx, &sk, &acc).coeffs()[0] == 1;
        println!(
            "{:<8} {:>16.1} {:>18.1} {:>12}",
            level,
            r.noise_bits,
            r.budget_bits,
            if ok { "yes" } else { "NO (failed)" }
        );
        if r.budget_bits <= 0.0 {
            println!("\nbudget exhausted at level {level}.");
            break;
        }
    }
    println!("\nthe paper targets depth 4 'to support several statistical");
    println!("applications' (§III-A); the measured budget shows the margin.");
}
