//! Ablation A1: accuracy and cost of the HPS quotient arithmetic —
//! exact CRT (long integers) vs `f64` (the HPS paper) vs the paper's
//! 89-bit fixed-point reciprocals.
//!
//! Measures (a) empirical mis-rounding rates of the approximate base
//! extension against the exact oracle, and (b) software throughput of each
//! variant — the trade the paper's §IV-C/§V-B2 design argument rests on.

use hefv_math::primes::ntt_primes;
use hefv_math::rns::{HpsPrecision, RnsContext};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    let ps = ntt_primes(30, 4096, 13).expect("primes");
    let ctx = RnsContext::new(&ps[..6], &ps[6..]).expect("context");
    let mut rng = StdRng::seed_from_u64(42);

    let trials = 200_000usize;
    let inputs: Vec<Vec<u64>> = (0..trials)
        .map(|_| {
            (0..6)
                .map(|i| rng.gen_range(0..ctx.base_q().modulus(i).value()))
                .collect()
        })
        .collect();

    println!(
        "\n=== Ablation A1 — Lift q->Q quotient arithmetic ({trials} random coefficients) ==="
    );

    // Exact oracle.
    let t0 = Instant::now();
    let exact: Vec<Vec<u64>> = inputs.iter().map(|a| ctx.lift().extend_exact(a)).collect();
    let exact_time = t0.elapsed();

    for (label, prec) in [
        ("f64 (HPS paper)", HpsPrecision::F64),
        ("89-bit fixed point (this paper)", HpsPrecision::Fixed),
    ] {
        let t1 = Instant::now();
        let got: Vec<Vec<u64>> = inputs
            .iter()
            .map(|a| ctx.lift().extend_hps(a, prec))
            .collect();
        let dt = t1.elapsed();
        let mismatches = got.iter().zip(&exact).filter(|(g, e)| g != e).count();
        println!(
            "{label:<34} {:>10.1} ns/coeff   mis-rounds: {mismatches}/{trials}",
            dt.as_nanos() as f64 / trials as f64
        );
    }
    println!(
        "{:<34} {:>10.1} ns/coeff   (oracle)",
        "exact CRT, long integers",
        exact_time.as_nanos() as f64 / trials as f64
    );
    println!();
    println!("expected mis-round probability: ~2^-47 per coefficient (f64),");
    println!("~2^-53 (fixed point) — zero observed here is the expected outcome;");
    println!("a mis-round shifts the lifted value by one multiple of q, which FV");
    println!("absorbs as noise (§IV-C). The cost column shows why the hardware");
    println!("prefers the small-number datapath: the exact path is an order of");
    println!("magnitude slower even in software, and in hardware it additionally");
    println!("serializes a 390-bit datapath (Fig. 5 vs Fig. 6).");
}
