//! The paper's Discussion-section estimate: porting the coprocessor to an
//! Amazon EC2 F1 instance ("These FPGAs have five times more resources
//! than our Zynq platform… We estimate that each Amazon F1 instance could
//! run at least ten coprocessors in parallel").

use hefv_core::{context::FvContext, params::FvParams};
use hefv_sim::resources::{coprocessor_total, interface_total, utilization, Resources, ZCU102};
use hefv_sim::system::System;

/// Approximate Virtex UltraScale+ VU9P (the F1 FPGA) capacity. The BRAM
/// figure counts the 960 UltraRAM blocks at their 8x BRAM36 capacity —
/// polynomial storage maps onto URAM directly, and this is what makes the
/// paper's "five times more resources" hold for the memory-bound design.
const VU9P: Resources = Resources {
    lut: 1_182_000,
    reg: 2_364_000,
    bram: 2_160 + 960 * 8,
    dsp: 6_840,
};

fn main() {
    let ctx = FvContext::new(FvParams::hpca19()).expect("params");
    println!("\n=== Discussion — Amazon EC2 F1 port estimate ===");
    let one = coprocessor_total();
    println!(
        "VU9P / ZCU102 capacity ratios: LUT {:.1}x, BRAM {:.1}x, DSP {:.1}x",
        VU9P.lut as f64 / ZCU102.lut as f64,
        VU9P.bram as f64 / ZCU102.bram as f64,
        VU9P.dsp as f64 / ZCU102.dsp as f64
    );
    // How many coprocessors fit (BRAM is the binding constraint, §VI-B).
    let mut fit = 0u64;
    loop {
        let total = one.times(fit + 1).plus(interface_total());
        if total.bram > VU9P.bram * 9 / 10 || total.lut > VU9P.lut * 9 / 10 {
            break;
        }
        fit += 1;
    }
    println!("coprocessors fitting at 90% utilization: {fit} (paper: 'at least ten')");
    let u = utilization(one.times(fit).plus(interface_total()), VU9P);
    println!(
        "utilization at {fit} coprocessors: LUT {:.0}%, Reg {:.0}%, BRAM {:.0}%, DSP {:.0}%",
        u[0], u[1], u[2], u[3]
    );
    let sys = System {
        coprocessors: fit as usize,
        ..Default::default()
    };
    println!(
        "projected F1 throughput: {:.0} Mult/s ({}x the ZCU102's 400)",
        sys.mult_throughput_per_s(&ctx),
        fit as f64 / 2.0
    );
    println!("\n(on the ZCU102 the binding constraint is BRAM — §VI-B's 'constrained");
    println!("on memory size' — while the VU9P's UltraRAM lifts that bound and logic");
    println!("becomes the limit, which is why the F1 port scales so well)");
}
