//! Regenerates Table V: estimated resources and Mult time for scaled
//! parameter sets, applying the paper's §VI-D scaling model.

use hefv_sim::resources::table5;

fn main() {
    println!("\n=== Table V — estimates for larger parameter sets, single coprocessor ===");
    println!(
        "{:<14} {:>8} {:>8} {:>8} {:>7} | {:>9} {:>9} {:>9} | paper total",
        "(n, log q)", "LUT", "Reg", "BRAM", "DSP", "comp ms", "comm ms", "total ms"
    );
    let paper_totals = [5.0, 11.9, 29.6, 80.2];
    for (r, paper) in table5().iter().zip(paper_totals) {
        println!(
            "(2^{:<2}, {:>5}) {:>8} {:>8} {:>8} {:>7} | {:>9.2} {:>9.2} {:>9.2} | {paper:>6.1} ms",
            r.log_n,
            r.log_q,
            r.res.lut,
            r.res.reg,
            r.res.bram,
            r.res.dsp,
            r.comp_ms,
            r.comm_ms,
            r.total_ms
        );
    }
    println!("\nmodel: per doubling of degree AND coefficient size — logic x2, BRAM x4,");
    println!("computation x2.17, off-chip transfer x4 (§VI-D). A hypothetical HEPCloud-");
    println!("sized design (2^15, 1228-bit) lands below 0.1 s per Mult, the paper's");
    println!("comparison point against Roy et al. [20].");
}
