//! Regenerates Table I: performance of high-level operations using one
//! coprocessor (Mult/Add in HW, Add in SW, ciphertext transfers).

use hefv_bench::{header, row};
use hefv_core::{context::FvContext, params::FvParams};
use hefv_sim::system::System;

fn main() {
    let ctx = FvContext::new(FvParams::hpca19()).expect("paper parameters");
    let sys = System::default();
    header("Table I — high-level operations, one coprocessor (Arm cycles @1.2 GHz)");
    for r in sys.table1(&ctx) {
        row(&r.label, r.cycles as f64, r.paper_cycles as f64, "cyc");
    }
    header("Table I — same rows in milliseconds");
    for r in sys.table1(&ctx) {
        row(&r.label, r.msec, r.paper_msec, "ms");
    }
    println!();
    println!(
        "throughput with two coprocessors: {:.0} Mult/s (paper: 400)",
        sys.mult_throughput_per_s(&ctx)
    );
    println!(
        "SW/HW Add ratio incl. transfers : {:.0}x (paper: 80x)",
        sys.add_sw_hw_ratio(&ctx)
    );
}
