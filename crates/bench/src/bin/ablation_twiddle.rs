//! Ablation A2: stored twiddle factors vs on-the-fly computation.
//!
//! §V-A4: the design stores all twiddle factors in on-chip ROM because
//! computing them on the fly creates data-dependent pipeline bubbles —
//! prior work \[20\] lost 20% of NTT cycles to them. This ablation models
//! both options and propagates the difference to the Mult level.

use hefv_core::{context::FvContext, params::FvParams};
use hefv_sim::clock::ClockConfig;
use hefv_sim::coproc::Coprocessor;
use hefv_sim::cost::{CostModel, Instr};

fn main() {
    let stored = CostModel::default();
    let clocks = ClockConfig::default();

    // On-the-fly variant: 20% of NTT butterfly cycles become bubbles
    // (the [20] measurement), i.e. the stage stream runs at 80% issue rate.
    let bubble_factor = 1.0 / 0.8;
    let ntt_fly = (stored.datapath_cycles(Instr::Ntt) as f64 * bubble_factor) as u64
        + stored.instr_cycles(Instr::Ntt)
        - stored.datapath_cycles(Instr::Ntt);
    let intt_fly = (stored.datapath_cycles(Instr::InverseNtt) as f64 * bubble_factor) as u64
        + stored.instr_cycles(Instr::InverseNtt)
        - stored.datapath_cycles(Instr::InverseNtt);

    println!("\n=== Ablation A2 — twiddle factors: ROM vs on-the-fly ===");
    println!(
        "{:<28} {:>14} {:>14}",
        "instruction", "stored (cyc)", "on-the-fly"
    );
    println!(
        "{:<28} {:>14} {:>14}",
        "NTT",
        stored.instr_cycles(Instr::Ntt),
        ntt_fly
    );
    println!(
        "{:<28} {:>14} {:>14}",
        "Inverse-NTT",
        stored.instr_cycles(Instr::InverseNtt),
        intt_fly
    );

    // Mult-level impact: 14 NTT + 8 INTT calls per Mult.
    let cop = Coprocessor::default();
    let ctx = FvContext::new(FvParams::hpca19()).expect("params");
    let base = cop.run_mult(&ctx);
    let extra = 14 * (ntt_fly - stored.instr_cycles(Instr::Ntt))
        + 8 * (intt_fly - stored.instr_cycles(Instr::InverseNtt));
    let fly_ms = (base.total_us + clocks.fpga_cycles_to_us(extra)) / 1000.0;
    println!(
        "\nMult with stored twiddles   : {:.3} ms",
        base.total_us / 1000.0
    );
    println!(
        "Mult with on-the-fly twiddles: {fly_ms:.3} ms (+{:.1}%)",
        100.0 * (fly_ms * 1000.0 - base.total_us) / base.total_us
    );

    // The price: twiddle ROM BRAM cost from the resource model.
    println!("\nROM cost: 14 twiddle ROMs x 4 BRAM36K = 56 BRAMs (14% of the");
    println!("coprocessor's 388) — the design trades memory for a bubble-free");
    println!("pipeline, consistent with the paper's 'constrained on memory' note.");
}
