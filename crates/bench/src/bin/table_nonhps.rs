//! Regenerates §VI-C: performance of the coprocessor *without* the HPS
//! optimization (traditional CRT Lift/Scale at 225 MHz).

use hefv_bench::{header, row};
use hefv_core::{context::FvContext, params::FvParams};
use hefv_sim::clock::ClockConfig;
use hefv_sim::coproc::{trad_mult_us, Coprocessor};
use hefv_sim::cost::TradCostModel;
use hefv_sim::dma::DmaModel;

fn main() {
    let model = TradCostModel::default();
    let clocks = ClockConfig::non_hps();
    header("§VI-C — traditional-CRT coprocessor at 225 MHz");
    row(
        "Lift q->Q, one core (ms)",
        clocks.fpga_cycles_to_us(model.lift_cycles()) / 1000.0,
        1.68,
        "ms",
    );
    row(
        "Scale Q->q, one core (ms)",
        clocks.fpga_cycles_to_us(model.scale_cycles()) / 1000.0,
        4.3,
        "ms",
    );
    let slow_ms = trad_mult_us(&model, &DmaModel::default(), &clocks) / 1000.0;
    row("Mult incl. transfers (ms)", slow_ms, 8.3, "ms");

    let ctx = FvContext::new(FvParams::hpca19()).expect("params");
    let fast_ms = Coprocessor::default().run_mult(&ctx).total_us / 1000.0;
    println!(
        "\nHPS coprocessor Mult: {fast_ms:.2} ms -> slowdown without HPS: {:.2}x",
        slow_ms / fast_ms
    );
    println!("paper: \"the time for Mult is less than 2x slower\" — and the slower");
    println!("design uses a 3x smaller relinearization key; with equal keys it would");
    println!("be another ~30% slower (§VI-C).");
}
