//! Verification harness: executes a complete homomorphic multiplication
//! at the paper's full parameter size (n = 4096, 180-bit q) through the
//! *functional* coprocessor — schedule-driven NTTs over the banked memory
//! model, sliding-window reductions, block-pipelined Fig. 6/9 units — and
//! checks the result bit-for-bit against the software library.

use hefv_core::eval::{self, Backend};
use hefv_core::prelude::*;
use hefv_sim::clock::ClockConfig;
use hefv_sim::cost::{CostModel, Instr};
use hefv_sim::functional::FunctionalCoprocessor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    println!("\n=== bit-exactness: functional coprocessor vs software library ===");
    let ctx = FvContext::new(FvParams::hpca19()).expect("params");
    let mut rng = StdRng::seed_from_u64(1618);
    let (sk, pk, rlk) = keygen(&ctx, &mut rng);
    let pa = Plaintext::new(vec![1, 1, 0, 1], 2, ctx.params().n);
    let pb = Plaintext::new(vec![1, 0, 1], 2, ctx.params().n);
    let ca = encrypt(&ctx, &pk, &pa, &mut rng);
    let cb = encrypt(&ctx, &pk, &pb, &mut rng);

    let func = FunctionalCoprocessor::new(&ctx);
    let t0 = Instant::now();
    let (hw, trace) = func.execute_mult(&ca, &cb, &rlk);
    let t_hw = t0.elapsed();
    let t1 = Instant::now();
    let sw = eval::mul(&ctx, &ca, &cb, &rlk, Backend::Hps(HpsPrecision::Fixed));
    let t_sw = t1.elapsed();

    assert_eq!(hw, sw, "MISMATCH — functional model diverged");
    println!("n=4096, 13 primes: functional Mult == library Mult, bit for bit ✓");
    println!(
        "decrypted product: {:?} (1+x+x³)(1+x²) mod 2",
        &decrypt(&ctx, &sk, &hw).coeffs()[..6]
    );
    println!("\nhost wall-clock: functional model {t_hw:.2?}, library {t_sw:.2?}");

    println!("\ndatapath cycles from the functional execution:");
    println!("  transforms      : {:>9}", trace.transform);
    println!("  coefficient-wise: {:>9}", trace.coeffwise);
    println!("  rearranges      : {:>9}", trace.rearrange);
    println!("  lift/scale      : {:>9}", trace.liftscale);
    println!("  total           : {:>9}", trace.total());

    // Compare with the analytic model's datapath terms (no overheads).
    let m = CostModel::default();
    let analytic = 14 * (m.datapath_cycles(Instr::Ntt) - 12 * m.pipeline_depth)
        + 8 * (m.datapath_cycles(Instr::InverseNtt) - 12 * m.pipeline_depth)
        + 20 * (m.datapath_cycles(Instr::CoeffMul) - m.pipeline_depth)
        + 26 * (m.datapath_cycles(Instr::CoeffAdd) - m.pipeline_depth)
        + 22 * (m.datapath_cycles(Instr::MemoryRearrange) - m.pipeline_depth)
        + 4 * m.datapath_cycles(Instr::Lift)
        + 3 * m.datapath_cycles(Instr::Scale);
    println!("\nanalytic datapath total (drain-free): {analytic}");
    println!(
        "functional / analytic ratio         : {:.3}",
        trace.total() as f64 / analytic as f64
    );
    let clocks = ClockConfig::default();
    println!(
        "functional datapath at 200 MHz      : {:.2} ms (instruction model: 3.35 ms)",
        clocks.fpga_cycles_to_us(trace.total()) / 1000.0
    );
    println!("\nOK");
}
