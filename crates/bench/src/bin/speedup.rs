//! Regenerates the paper's headline comparison (§VI-E): the coprocessor
//! versus optimized software.
//!
//! The paper compares against FV-NFLlib on an Intel i5 @1.8 GHz (33 ms per
//! Mult, 30.3 Mult/s). We additionally *measure* this repository's own
//! software backend on the host, so the hardware-vs-software claim is
//! checked against a baseline we control, not just quoted.

use hefv_core::eval;
use hefv_core::prelude::*;
use hefv_sim::system::System;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let ctx = FvContext::new(FvParams::hpca19()).expect("params");
    let mut rng = StdRng::seed_from_u64(2019);
    let (_sk, pk, rlk) = keygen(&ctx, &mut rng);
    let pa = Plaintext::new(vec![1, 1], 2, ctx.params().n);
    let ca = encrypt(&ctx, &pk, &pa, &mut rng);
    let cb = encrypt(&ctx, &pk, &pa, &mut rng);

    // Measure our software Mult (HPS fixed-point backend, single thread).
    let warmup = eval::mul(&ctx, &ca, &cb, &rlk, Backend::default());
    drop(warmup);
    let iters = 5;
    let t0 = Instant::now();
    for _ in 0..iters {
        let _ = eval::mul(&ctx, &ca, &cb, &rlk, Backend::default());
    }
    let sw_ms = t0.elapsed().as_secs_f64() * 1000.0 / iters as f64;

    // And our software Add.
    let t1 = Instant::now();
    for _ in 0..1000 {
        let _ = eval::add(&ctx, &ca, &cb);
    }
    let sw_add_us = t1.elapsed().as_secs_f64() * 1e6 / 1000.0;

    let sys = System::default();
    let hw_ms = sys.mult_latency_ms(&ctx);
    let hw_tput = sys.mult_throughput_per_s(&ctx);

    println!("\n=== §VI-E — homomorphic multiplication: hardware vs software ===");
    println!(
        "{:<52} {:>10} {:>12}",
        "implementation", "ms/Mult", "Mult/s"
    );
    println!("{}", "-".repeat(78));
    println!(
        "{:<52} {:>10.2} {:>12.1}",
        "FV-NFLlib, Intel i5 @1.8 GHz (paper baseline)",
        33.0,
        1000.0 / 33.0
    );
    println!(
        "{:<52} {:>10.2} {:>12.1}",
        "this repo, Rust software (measured, 1 thread)",
        sw_ms,
        1000.0 / sw_ms
    );
    println!(
        "{:<52} {:>10.2} {:>12.1}",
        "simulated coprocessor x1 @200 MHz (incl. xfer)",
        hw_ms,
        1000.0 / hw_ms
    );
    println!(
        "{:<52} {:>10.2} {:>12.1}",
        "simulated coprocessor x2 @200 MHz (paper config)", hw_ms, hw_tput
    );
    println!();
    println!(
        "speedup of 2 coprocessors vs NFLlib baseline : {:.1}x (paper: >13x)",
        hw_tput / (1000.0 / 33.0)
    );
    println!(
        "speedup of 2 coprocessors vs our software    : {:.1}x",
        hw_tput / (1000.0 / sw_ms)
    );
    println!();
    let hw_add_us =
        sys.coproc.run_add().total_us + sys.send_operands_us() + sys.receive_result_us();
    println!("software Add (ours, measured)                : {sw_add_us:.0} µs");
    println!("hardware Add incl. transfers (simulated)     : {hw_add_us:.0} µs (paper: 568 µs)");
}
