//! Ablation A3: how many butterfly cores and Lift/Scale cores?
//!
//! §V-A2 fixes two butterfly cores per RPAU because the paired-word memory
//! delivers at most two words (four coefficients) per cycle — more cores
//! would starve. This ablation sweeps both core counts through the cycle
//! model and shows the knee.

use hefv_core::{context::FvContext, params::FvParams};
use hefv_sim::clock::ClockConfig;
use hefv_sim::coproc::Coprocessor;
use hefv_sim::cost::{CostModel, Instr};

fn main() {
    let ctx = FvContext::new(FvParams::hpca19()).expect("params");
    let clocks = ClockConfig::default();

    println!("\n=== Ablation A3 — butterfly cores per RPAU ===");
    println!(
        "{:<10} {:>12} {:>14} {:>16}",
        "cores", "NTT cycles", "fed by BRAM?", "Mult (ms)"
    );
    for cores in [1usize, 2, 4, 8] {
        // The dual-bank paired-word memory sustains 2 words/cycle; beyond
        // 2 cores the memory is the bottleneck and cycles stop improving.
        let effective = cores.min(2);
        let model = CostModel {
            butterfly_cores: effective,
            ..CostModel::default()
        };
        let cop = Coprocessor {
            cost: model,
            ..Default::default()
        };
        let ntt = model.instr_cycles(Instr::Ntt);
        let ms = cop.run_mult(&ctx).total_us / 1000.0;
        let fed = if cores <= 2 { "yes" } else { "no (port-bound)" };
        println!("{:<10} {:>12} {:>14} {:>16.3}", cores, ntt, fed, ms);
    }

    println!("\n=== Ablation A3 — Lift/Scale cores ===");
    println!(
        "{:<10} {:>14} {:>14} {:>16}",
        "cores", "Lift (us)", "Scale (us)", "Mult (ms)"
    );
    for cores in [1usize, 2, 4] {
        let model = CostModel {
            lift_cores: cores,
            ..CostModel::default()
        };
        let cop = Coprocessor {
            cost: model,
            ..Default::default()
        };
        let ms = cop.run_mult(&ctx).total_us / 1000.0;
        println!(
            "{:<10} {:>14.1} {:>14.1} {:>16.3}",
            cores,
            clocks.fpga_cycles_to_us(model.instr_cycles(Instr::Lift)),
            clocks.fpga_cycles_to_us(model.instr_cycles(Instr::Scale)),
            ms
        );
    }
    println!("\nthe paper's choice (2 butterfly cores, 2 lift/scale cores) sits at the");
    println!("knee: more butterfly cores are port-starved; more lift cores shave");
    println!("~0.2 ms off Mult at ~48 DSPs each — the configuration trade-off the");
    println!("paper's Discussion section invites.");
}
