//! Regenerates Fig. 3: the dual-core NTT memory access pattern, plus the
//! conflict audit and a functional check that the schedule computes a real
//! NTT.

use hefv_math::ntt::NttTable;
use hefv_math::primes::ntt_prime;
use hefv_math::zq::Modulus;
use hefv_sim::bram::{bank_of, Bank, PolyMem};
use hefv_sim::nttsched::{execute_forward, NttSchedule};

fn show_stage(s: &NttSchedule, t: usize, label: &str, cycles_to_show: u64) {
    println!("\n--- {label} ---");
    println!(
        "{:<8} {:<26} {:<26}",
        "cycle", "core 0 reads", "core 1 reads"
    );
    let acc = s.read_accesses(t);
    for cycle in 0..cycles_to_show {
        let fmt = |core: usize| {
            acc.iter()
                .find(|a| a.cycle == cycle && a.core == core)
                .map(|a| {
                    let b = match bank_of(a.addr, s.n() / 2) {
                        Bank::Lower => "lower",
                        Bank::Upper => "upper",
                    };
                    format!("word {:>4} ({b})", a.addr)
                })
                .unwrap_or_else(|| "-".into())
        };
        println!("{cycle:<8} {:<26} {:<26}", fmt(0), fmt(1));
    }
    println!("...");
}

fn main() {
    let n = 4096;
    let s = NttSchedule::new(n);
    println!("=== Fig. 3 — memory access during the two-core NTT (n = 4096) ===");
    println!("polynomial stored as 2048 paired words in two banks of 1024");

    // The paper's three illustrated regimes (its loop counts m map to our
    // butterfly distances t: index gap = m/2 coefficients).
    show_stage(
        &s,
        1024,
        "index gap 512 (paper's m = 1024): cores bank-exclusive",
        6,
    );
    show_stage(
        &s,
        2048,
        "index gap 1024 (paper's m = 2048): inverted order, cross-bank",
        6,
    );
    show_stage(
        &s,
        1,
        "final stage (paper's m = 4096): one word at a time",
        6,
    );

    // Conflict audit over all stages.
    let auditor = s.audit(12);
    println!("\nport audit over all 12 stages (1 read + 1 write per bank per cycle):");
    println!("  total word reads : {}", auditor.total_reads());
    println!("  violations       : {}", auditor.violations().len());
    assert!(auditor.is_clean(), "schedule must be conflict-free");

    // Functional check: the schedule computes the actual transform.
    let q = ntt_prime(30, n, 0).unwrap();
    let table = NttTable::new(Modulus::new(q), n).unwrap();
    let coeffs: Vec<u64> = (0..n as u64).map(|i| (i * 48271 + 11) % q).collect();
    let mut reference = coeffs.clone();
    table.forward(&mut reference);
    let mut mem = PolyMem::load(&coeffs);
    let cycles = execute_forward(&s, &mut mem, &table);
    assert_eq!(mem.coeffs(), &reference[..]);
    println!("\nfunctional check: schedule-driven NTT matches the reference bit-for-bit");
    println!("datapath cycles: {cycles} (12 stages x 1024)");
}
