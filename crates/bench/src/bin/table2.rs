//! Regenerates Table II: per-instruction performance and calls per Mult.

use hefv_bench::{header, row};
use hefv_sim::clock::ClockConfig;
use hefv_sim::coproc::{mult_microcode, Op};
use hefv_sim::cost::{CostModel, Instr};
use std::collections::HashMap;

fn main() {
    let model = CostModel::default();
    let clocks = ClockConfig::default();
    let paper: [(Instr, u32, u64, f64); 7] = [
        (Instr::Ntt, 14, 87_582, 73.0),
        (Instr::InverseNtt, 8, 102_043, 85.0),
        (Instr::CoeffMul, 20, 15_662, 13.1),
        (Instr::CoeffAdd, 26, 16_292, 13.6),
        (Instr::MemoryRearrange, 22, 25_006, 20.8),
        (Instr::Lift, 4, 99_137, 82.6),
        (Instr::Scale, 3, 99_274, 82.7),
    ];

    // Count calls from the actual microcode.
    let ops = mult_microcode(6, 7, 6, 7, 4096, 19.64);
    let mut calls: HashMap<Instr, u32> = HashMap::new();
    for op in &ops {
        if let Op::Instr(i) = op {
            *calls.entry(*i).or_insert(0) += 1;
        }
    }

    header("Table II — instruction cycles (Arm cycles @1.2 GHz)");
    for (i, _, paper_cycles, _) in paper {
        let arm = clocks.fpga_to_arm_cycles(model.instr_cycles(i));
        row(i.name(), arm as f64, paper_cycles as f64, "cyc");
    }

    header("Table II — instruction time (µs)");
    for (i, _, _, paper_us) in paper {
        let us = clocks.fpga_cycles_to_us(model.instr_cycles(i));
        row(i.name(), us, paper_us, "us");
    }

    header("Table II — calls per Mult (from the microcode)");
    for (i, paper_calls, _, _) in paper {
        row(i.name(), calls[&i] as f64, paper_calls as f64, "calls");
    }

    header("first-principles datapath vs calibrated total (FPGA cycles)");
    for (i, _, _, _) in paper {
        row(
            i.name(),
            model.datapath_cycles(i) as f64,
            model.instr_cycles(i) as f64,
            "cyc",
        );
    }
    println!("\n(the 'ratio' column here is the uncalibrated datapath fraction;");
    println!(" the remainder is decode/pipeline-fill/dispatch, see EXPERIMENTS.md)");
}
