//! The multi-threaded software axis of the §VI-E comparison (Badawi et
//! al.'s 26-thread CPU figures): sequential vs threaded Mult at the
//! paper's full parameter size, measured on the host.

use hefv_core::eval;
use hefv_core::parallel::mul_threaded;
use hefv_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let ctx = FvContext::new(FvParams::hpca19()).expect("params");
    let mut rng = StdRng::seed_from_u64(161);
    let (_sk, pk, rlk) = keygen(&ctx, &mut rng);
    let pa = Plaintext::new(vec![1, 1], 2, ctx.params().n);
    let ca = encrypt(&ctx, &pk, &pa, &mut rng);
    let cb = encrypt(&ctx, &pk, &pa, &mut rng);

    // Warm-up and correctness cross-check.
    let seq = eval::mul(&ctx, &ca, &cb, &rlk, Backend::default());
    let par = mul_threaded(&ctx, &ca, &cb, &rlk, Backend::default());
    assert_eq!(seq, par, "threaded result must be bit-identical");

    let iters = 5;
    let t0 = Instant::now();
    for _ in 0..iters {
        let _ = eval::mul(&ctx, &ca, &cb, &rlk, Backend::default());
    }
    let seq_ms = t0.elapsed().as_secs_f64() * 1000.0 / iters as f64;
    let t1 = Instant::now();
    for _ in 0..iters {
        let _ = mul_threaded(&ctx, &ca, &cb, &rlk, Backend::default());
    }
    let par_ms = t1.elapsed().as_secs_f64() * 1000.0 / iters as f64;

    println!("\n=== software Mult: sequential vs multi-threaded (n=4096, 180-bit q) ===");
    println!(
        "available parallelism: {} cores",
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    );
    println!(
        "{:<36} {:>10.2} ms/Mult {:>10.1} Mult/s",
        "sequential (1 thread)",
        seq_ms,
        1000.0 / seq_ms
    );
    println!(
        "{:<36} {:>10.2} ms/Mult {:>10.1} Mult/s",
        "threaded (lifts/tensors/digits)",
        par_ms,
        1000.0 / par_ms
    );
    println!("speedup: {:.2}x", seq_ms / par_ms);
    println!("\nreference points (§VI-E): Badawi et al. single-thread 10 ms (60-bit q),");
    println!("26 threads 4 ms — a 2.5x gain; the coprocessor's fixed-function");
    println!("parallelism reaches 5 ms per offloaded Mult *including* transfers at");
    println!("a tenth of the CPU's power.");
}
