//! Regenerates Table III: DMA transfer-chunking comparison.

use hefv_bench::{header, row};
use hefv_sim::clock::ClockConfig;
use hefv_sim::dma::{table3, DmaModel};

fn main() {
    let rows = table3(&DmaModel::default(), &ClockConfig::default());
    header("Table III — data transfer of 98,304 bytes (Arm cycles)");
    for r in &rows {
        row(&r.label, r.cycles as f64, r.paper_cycles as f64, "cyc");
    }
    header("Table III — same rows (µs)");
    for r in &rows {
        row(&r.label, r.us, r.paper_us, "us");
    }
    println!("\nshape check: single burst < 16 KiB chunks < 1 KiB chunks — the");
    println!("paper's conclusion that contiguous single transfers minimize overhead.");
}
