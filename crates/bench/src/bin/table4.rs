//! Regenerates Table IV: FPGA resource utilization on the ZCU102.

use hefv_bench::{header, row};
use hefv_sim::resources::{coprocessor_blocks, coprocessor_total, table4, utilization, ZCU102};

fn main() {
    header("Table IV — resource utilization (ZCU102)");
    let two = table4(2);
    let one = coprocessor_total();
    row(
        "2 coprocessors+interface LUTs",
        two.lut as f64,
        133_692.0,
        "LUT",
    );
    row(
        "2 coprocessors+interface Registers",
        two.reg as f64,
        60_312.0,
        "FF",
    );
    row(
        "2 coprocessors+interface BRAMs",
        two.bram as f64,
        815.0,
        "BRAM",
    );
    row(
        "2 coprocessors+interface DSPs",
        two.dsp as f64,
        416.0,
        "DSP",
    );
    row("single coprocessor LUTs", one.lut as f64, 63_522.0, "LUT");
    row(
        "single coprocessor Registers",
        one.reg as f64,
        25_622.0,
        "FF",
    );
    row("single coprocessor BRAMs", one.bram as f64, 388.0, "BRAM");
    row("single coprocessor DSPs", one.dsp as f64, 208.0, "DSP");

    let u2 = utilization(two, ZCU102);
    let u1 = utilization(one, ZCU102);
    println!(
        "\nutilization %: two coprocessors {:.0}/{:.0}/{:.0}/{:.0} (paper 49/11/89/16)",
        u2[0], u2[1], u2[2], u2[3]
    );
    println!(
        "utilization %: one coprocessor  {:.0}/{:.0}/{:.0}/{:.0} (paper 23/5/43/8)",
        u1[0], u1[1], u1[2], u1[3]
    );

    println!("\nper-block decomposition of one coprocessor:");
    println!(
        "{:<58} {:>5} {:>8} {:>8} {:>6} {:>5}",
        "block", "count", "LUT", "FF", "BRAM", "DSP"
    );
    for b in coprocessor_blocks() {
        println!(
            "{:<58} {:>5} {:>8} {:>8} {:>6} {:>5}",
            b.name,
            b.count,
            b.each.lut * b.count,
            b.each.reg * b.count,
            b.each.bram * b.count,
            b.each.dsp * b.count
        );
    }
}
