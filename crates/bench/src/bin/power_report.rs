//! Regenerates §VI-C's power measurements and §VI-E's efficiency
//! comparison.

use hefv_bench::{header, row};
use hefv_core::{context::FvContext, params::FvParams};
use hefv_sim::power::PowerModel;
use hefv_sim::system::System;

fn main() {
    let p = PowerModel::default();
    header("§VI-C — power (W)");
    row("static", p.static_w, 5.3, "W");
    row("dynamic, one coprocessor busy", p.dynamic_w(1), 2.2, "W");
    row("dynamic, two coprocessors busy", p.dynamic_w(2), 3.4, "W");
    row("peak total", p.total_w(2), 8.7, "W");

    let ctx = FvContext::new(FvParams::hpca19()).expect("params");
    let sys = System::default();
    let ms = sys.mult_latency_ms(&ctx);
    println!(
        "\nenergy per Mult (two coprocessors): {:.1} mJ",
        p.energy_per_mult_mj(ms, 2)
    );
    println!("for comparison (§VI-E): an Intel i5 at ~40 W running the 33 ms NFLlib");
    println!(
        "Mult spends ~{:.0} mJ per multiplication — ~{:.0}x more energy.",
        40.0 * 33.0,
        40.0 * 33.0 / p.energy_per_mult_mj(ms, 2)
    );
}
