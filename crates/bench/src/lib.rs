//! # hefv-bench
//!
//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation section. Each table has a binary (`cargo run --release -p
//! hefv-bench --bin tableN`) that prints the paper's rows next to the
//! modeled/measured values; criterion benches time the software kernels.

/// Prints a formatted comparison row: label, modeled value, paper value,
/// ratio.
pub fn row(label: &str, modeled: f64, paper: f64, unit: &str) {
    let ratio = if paper != 0.0 {
        modeled / paper
    } else {
        f64::NAN
    };
    println!("{label:<44} {modeled:>14.3} {paper:>14.3} {unit:<6} {ratio:>7.3}");
}

/// Prints the standard comparison header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
    println!(
        "{:<44} {:>14} {:>14} {:<6} {:>7}",
        "row", "modeled", "paper", "unit", "ratio"
    );
    println!("{}", "-".repeat(92));
}
