//! Criterion benches of the high-level homomorphic operations at the
//! paper's full parameter size — the software baseline of the §VI-E
//! speedup comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use hefv_core::eval;
use hefv_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn setup() -> (FvContext, Ciphertext, Ciphertext, RelinKey) {
    let ctx = FvContext::new(FvParams::hpca19()).unwrap();
    let mut rng = StdRng::seed_from_u64(2019);
    let (_sk, pk, rlk) = keygen(&ctx, &mut rng);
    let pa = Plaintext::new(vec![1, 1], 2, ctx.params().n);
    let ca = encrypt(&ctx, &pk, &pa, &mut rng);
    let cb = encrypt(&ctx, &pk, &pa, &mut rng);
    (ctx, ca, cb, rlk)
}

fn bench_mult(c: &mut Criterion) {
    let (ctx, ca, cb, rlk) = setup();
    let mut g = c.benchmark_group("fv_mult_n4096_q180");
    g.sample_size(10);
    g.bench_function("Mult HPS fixed-point", |b| {
        b.iter(|| {
            black_box(eval::mul(
                &ctx,
                &ca,
                &cb,
                &rlk,
                Backend::Hps(HpsPrecision::Fixed),
            ))
        })
    });
    g.bench_function("Mult HPS f64", |b| {
        b.iter(|| {
            black_box(eval::mul(
                &ctx,
                &ca,
                &cb,
                &rlk,
                Backend::Hps(HpsPrecision::F64),
            ))
        })
    });
    g.bench_function("Square HPS fixed-point", |b| {
        b.iter(|| black_box(eval::square(&ctx, &ca, &rlk, Backend::default())))
    });
    g.finish();
}

fn bench_add(c: &mut Criterion) {
    let (ctx, ca, cb, _) = setup();
    c.bench_function("fv_add_n4096_q180", |b| {
        b.iter(|| black_box(eval::add(&ctx, &ca, &cb)))
    });
}

criterion_group!(benches, bench_mult, bench_add);
criterion_main!(benches);
