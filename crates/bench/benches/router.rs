//! Shard-router throughput: mixed multi-tenant traffic through one engine
//! vs a sharded fleet, and fixed-datapath vs `Backend::Auto` dispatch.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hefv_core::eval::Backend;
use hefv_core::galois::GaloisKeySet;
use hefv_core::prelude::*;
use hefv_engine::prelude::*;
use hefv_engine::router::ShardSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const TENANTS: u64 = 4;
const JOBS_PER_ITER: u64 = 8;

struct Fixture {
    ctx: Arc<FvContext>,
    keys: Vec<(u64, PublicKey, RelinKey, GaloisKeySet)>,
    cts: Vec<(u64, Ciphertext)>,
}

fn fixture() -> Fixture {
    let ctx = Arc::new(FvContext::new(FvParams::insecure_medium()).unwrap());
    let mut rng = StdRng::seed_from_u64(2019);
    let t = ctx.params().t;
    let n = ctx.params().n;
    let keys: Vec<_> = (1..=TENANTS)
        .map(|id| {
            let (sk, pk, rlk) = keygen(&ctx, &mut rng);
            let galois = GaloisKeySet::for_slot_sum(&ctx, &sk, &mut rng);
            (id, pk, rlk, galois)
        })
        .collect();
    let cts = keys
        .iter()
        .map(|(id, pk, _, _)| {
            (
                *id,
                encrypt(&ctx, pk, &Plaintext::new(vec![1, 1], t, n), &mut rng),
            )
        })
        .collect();
    Fixture { ctx, keys, cts }
}

fn start_router(f: &Fixture, shards: usize, backend: Backend) -> ShardRouter {
    let router = ShardRouter::new();
    for i in 0..shards {
        router
            .add_shard(ShardSpec {
                name: format!("shard-{i}"),
                ctx: Arc::clone(&f.ctx),
                config: EngineConfig {
                    workers: 2,
                    threads_per_job: 1,
                    backend,
                    ..EngineConfig::default()
                },
            })
            .unwrap();
    }
    for (id, pk, rlk, galois) in &f.keys {
        router
            .register_tenant(
                *id,
                TenantKeys::full(pk.clone(), rlk.clone(), galois.clone()),
            )
            .unwrap();
    }
    router
}

/// A mixed Mult/Rotate burst from every tenant, routed and awaited.
fn run_burst(router: &ShardRouter, f: &Fixture) {
    let handles: Vec<JobHandle> = (0..JOBS_PER_ITER)
        .map(|i| {
            let (tenant, ct) = &f.cts[(i % TENANTS) as usize];
            let req = if i % 2 == 0 {
                EvalRequest::binary(*tenant, EvalOp::Mul, ct.clone(), ct.clone())
            } else {
                EvalRequest {
                    tenant: *tenant,
                    inputs: vec![ct.clone()],
                    plaintexts: vec![],
                    ops: vec![EvalOp::Rotate(ValRef::Input(0), 3)],
                    deadline_us: None,
                    trace_id: None,
                }
            };
            router.submit(req).unwrap()
        })
        .collect();
    for h in handles {
        h.wait().unwrap();
    }
}

/// One engine vs a sharded fleet on the same mixed multi-tenant burst.
fn bench_sharding(c: &mut Criterion) {
    let f = fixture();
    let mut g = c.benchmark_group("router_sharding");
    g.sample_size(10)
        .throughput(Throughput::Elements(JOBS_PER_ITER));
    for shards in [1usize, 2, 4] {
        let router = start_router(&f, shards, Backend::default());
        g.bench_function(&format!("mixed_burst/{shards}_shards"), |b| {
            b.iter(|| run_burst(&router, &f))
        });
        router.shutdown();
    }
    g.finish();
}

/// Fixed datapaths vs per-job Auto dispatch on the same burst.
fn bench_auto_dispatch(c: &mut Criterion) {
    let f = fixture();
    let mut g = c.benchmark_group("router_dispatch");
    g.sample_size(10)
        .throughput(Throughput::Elements(JOBS_PER_ITER));
    for (name, backend) in [
        ("hps", Backend::default()),
        ("traditional", Backend::Traditional),
        ("auto", Backend::Auto),
    ] {
        let router = start_router(&f, 2, backend);
        g.bench_function(&format!("mixed_burst/{name}"), |b| {
            b.iter(|| run_burst(&router, &f))
        });
        let total = router.stats().total;
        eprintln!(
            "  [{name}] estimated coprocessor cost {:.0} µs over {} jobs \
             ({} traditional / {} hps)",
            total.sim_cost_us, total.jobs_completed, total.jobs_traditional, total.jobs_hps
        );
        router.shutdown();
    }
    g.finish();
}

criterion_group!(benches, bench_sharding, bench_auto_dispatch);
criterion_main!(benches);
