//! Engine throughput: requests/second through the full submit → schedule →
//! execute → respond path, single-worker vs multi-worker, plus the
//! batching front-end's amplification.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hefv_core::prelude::*;
use hefv_engine::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

struct Fixture {
    ctx: Arc<FvContext>,
    pk: PublicKey,
    rlk: RelinKey,
}

fn fixture() -> Fixture {
    let mut params = FvParams::insecure_medium();
    params.t = 7681; // SIMD slots for the batching bench
    let ctx = Arc::new(FvContext::new(params).unwrap());
    let mut rng = StdRng::seed_from_u64(2019);
    let (_sk, pk, rlk) = keygen(&ctx, &mut rng);
    Fixture { ctx, pk, rlk }
}

fn start_engine(f: &Fixture, workers: usize) -> Engine {
    let engine = Engine::start(
        Arc::clone(&f.ctx),
        EngineConfig {
            workers,
            threads_per_job: 1,
            max_batch: 16,
            ..EngineConfig::default()
        },
    );
    engine.register_tenant(1, TenantKeys::compute(f.pk.clone(), f.rlk.clone()));
    engine
}

/// In-flight mixed Add/Mul traffic (8 jobs per iteration).
fn bench_eval_throughput(c: &mut Criterion) {
    let f = fixture();
    let mut rng = StdRng::seed_from_u64(7);
    let t = f.ctx.params().t;
    let n = f.ctx.params().n;
    let cts: Vec<Ciphertext> = (0..4u64)
        .map(|v| encrypt(&f.ctx, &f.pk, &Plaintext::new(vec![v + 1], t, n), &mut rng))
        .collect();

    let mut g = c.benchmark_group("engine_requests");
    g.sample_size(10).throughput(Throughput::Elements(8));
    for workers in [1usize, 2, 4] {
        let engine = start_engine(&f, workers);
        g.bench_function(&format!("mixed_8_jobs/{workers}_workers"), |b| {
            b.iter(|| {
                let handles: Vec<JobHandle> = (0..8)
                    .map(|i| {
                        let op: fn(ValRef, ValRef) -> EvalOp =
                            if i % 2 == 0 { EvalOp::Mul } else { EvalOp::Add };
                        let req = EvalRequest::binary(
                            1,
                            op,
                            cts[i % cts.len()].clone(),
                            cts[(i + 1) % cts.len()].clone(),
                        );
                        engine.submit(req).unwrap()
                    })
                    .collect();
                for h in handles {
                    h.wait().unwrap();
                }
            })
        });
        engine.shutdown();
    }
    g.finish();
}

/// 16 scalar products per iteration: one slot-packed Mult instead of 16.
fn bench_batched_scalars(c: &mut Criterion) {
    let f = fixture();
    let engine = start_engine(&f, 2);
    let mut g = c.benchmark_group("engine_batching");
    g.sample_size(10).throughput(Throughput::Elements(16));
    g.bench_function("scalar_mul_16_coalesced", |b| {
        b.iter(|| {
            let tickets: Vec<ScalarTicket> = (0..16u64)
                .map(|i| {
                    engine
                        .submit_scalar(ScalarRequest {
                            tenant: 1,
                            op: ScalarOp::Mul,
                            lhs: 3 + i,
                            rhs: 5 + i,
                        })
                        .unwrap()
                })
                .collect();
            engine.flush_batches();
            for t in tickets {
                t.wait().unwrap();
            }
        })
    });
    g.finish();
    engine.shutdown();
}

criterion_group!(benches, bench_eval_throughput, bench_batched_scalars);
criterion_main!(benches);
