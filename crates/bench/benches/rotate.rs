//! Before/after bench for PR 5's hoisted key-switching: the per-rotation
//! reference path (`apply_galois_reference` / `sum_slots_reference`, the
//! pre-hoisting implementation kept in-tree as the oracle) against the
//! hoisted datapath (`HoistedCiphertext`, grouped `sum_slots`), emitted as
//! machine-readable JSON.
//!
//! Measured at the paper's full parameter size (n = 4096 ⇒ 4096 SIMD
//! slots, six 30-bit ciphertext primes):
//!
//! * one rotation, reference vs hoist-of-one vs the amortized marginal
//!   cost of an extra rotation on an existing hoist;
//! * `rotate_many` over a batch of exponents (one decomposition, many
//!   rotations);
//! * the 4096-slot slot sum: 12 reference rotate-and-add rounds vs the
//!   hoisted group fold.
//!
//! Environment knobs:
//! * `BENCH_PR5_OUT` — output path for the JSON report.
//! * `BENCH_PR5_QUICK` — any value shrinks the iteration budget for CI
//!   smoke runs.

use hefv_core::galois::{
    apply_galois, apply_galois_reference, sum_slots_reference, GaloisKey, GaloisKeySet,
    HoistedCiphertext,
};
use hefv_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

/// Minimum-of-samples timer (same shape as `benches/ntt.rs`).
fn measure<F: FnMut()>(mut f: F, quick: bool) -> f64 {
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_secs_f64().max(1e-9);
    let target = if quick { 0.05 } else { 0.4 };
    let batch = ((target / 4.0 / once) as u64).clamp(1, 1 << 16);
    let samples = if quick { 3 } else { 6 };
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..batch {
            f();
        }
        best = best.min(t.elapsed().as_secs_f64() / batch as f64);
    }
    best
}

fn main() {
    let quick = std::env::var_os("BENCH_PR5_QUICK").is_some();
    let ctx = FvContext::new(FvParams::hpca19_batching()).unwrap();
    let n = ctx.params().n;
    let mut rng = StdRng::seed_from_u64(2025);
    let (sk, pk, _rlk) = keygen(&ctx, &mut rng);
    let enc = BatchEncoder::new(ctx.params().t, n).unwrap();
    let vals: Vec<u64> = (0..n as u64).map(|i| i % 97).collect();
    let ct = encrypt(&ctx, &pk, &enc.encode(&vals), &mut rng);

    // A batch of 8 distinct rotation exponents for the rotate_many shape.
    let two_n = 2 * n;
    let exps: Vec<usize> = (0..8u32)
        .map(|i| {
            let mut g = 1usize;
            for _ in 0..=i {
                g = (g * 3) % two_n;
            }
            g
        })
        .collect();
    let batch_keys: Vec<GaloisKey> = exps
        .iter()
        .map(|&g| GaloisKey::generate(&ctx, &sk, g, &mut rng))
        .collect();
    let key = &batch_keys[0];
    let slot_keys = GaloisKeySet::for_slot_sum(&ctx, &sk, &mut rng);

    // Single rotation: reference vs hoist-of-one.
    let rot_ref_ms = measure(
        || {
            black_box(apply_galois_reference(&ctx, &ct, key));
        },
        quick,
    ) * 1e3;
    let rot_hoist1_ms = measure(
        || {
            black_box(apply_galois(&ctx, &ct, key));
        },
        quick,
    ) * 1e3;

    // Marginal hoisted rotation: decomposition amortized away entirely.
    let arena = Arena::new();
    let hoisted = HoistedCiphertext::new_in(&ctx, &ct, &arena);
    let rot_marginal_ms = {
        let m = measure(
            || {
                let out = hoisted.rotate_in(&ctx, key, &arena);
                arena.recycle_ciphertext(black_box(out));
            },
            quick,
        );
        m * 1e3
    };

    // rotate_many: 8 rotations off one decomposition vs 8 reference calls.
    let key_refs: Vec<&GaloisKey> = batch_keys.iter().collect();
    let many_ref_ms = measure(
        || {
            for k in &key_refs {
                black_box(apply_galois_reference(&ctx, &ct, k));
            }
        },
        quick,
    ) * 1e3;
    // Steady state: a persistent arena (as each engine worker keeps) with
    // outputs recycled once consumed.
    let many_arena = Arena::new();
    let many_hoisted_ms = measure(
        || {
            let outs = hefv_core::galois::rotate_many_in(&ctx, &ct, &key_refs, &many_arena);
            for out in black_box(outs) {
                many_arena.recycle_ciphertext(out);
            }
        },
        quick,
    ) * 1e3;

    // The acceptance workload: 4096-slot slot sum.
    let sum_ref_ms = measure(
        || {
            black_box(sum_slots_reference(&ctx, &ct, &slot_keys));
        },
        quick,
    ) * 1e3;
    let sum_arena = Arena::new();
    let sum_hoisted_ms = measure(
        || {
            let out = hefv_core::galois::sum_slots_in(&ctx, &ct, &slot_keys, &sum_arena);
            sum_arena.recycle_ciphertext(black_box(out));
        },
        quick,
    ) * 1e3;

    if std::env::var_os("BENCH_PR5_PROFILE").is_some() {
        let a = Arena::new();
        let hoist_ms = measure(
            || {
                let h = HoistedCiphertext::new_in(&ctx, &ct, &a);
                h.recycle(&a);
            },
            quick,
        ) * 1e3;
        let h = HoistedCiphertext::new_in(&ctx, &ct, &a);
        let group0: Vec<&GaloisKey> = slot_keys.groups()[0]
            .iter()
            .map(|&i| &slot_keys.keys()[i])
            .collect();
        let fold_ms = measure(
            || {
                let out = h.sum_self_plus_rotations_in(&ctx, group0.iter().copied(), &a);
                a.recycle_ciphertext(black_box(out));
            },
            quick,
        ) * 1e3;
        println!("PROFILE: new_in {hoist_ms:.3} ms, 7-rot group fold {fold_ms:.3} ms");
    }

    let rot_speedup = many_ref_ms / many_hoisted_ms;
    let sum_speedup = sum_ref_ms / sum_hoisted_ms;
    println!("Rotation kernels, n={n}, k=6 (per-call minima):");
    println!(
        "  one rotation   reference {rot_ref_ms:8.3} ms   hoist-of-one {rot_hoist1_ms:8.3} ms"
    );
    println!("  marginal hoisted rotation (decomposition amortized) {rot_marginal_ms:8.3} ms");
    println!("  rotate x8      reference {many_ref_ms:8.3} ms   hoisted {many_hoisted_ms:8.3} ms   x{rot_speedup:.2}");
    println!(
        "  sum_slots      reference {sum_ref_ms:8.3} ms   hoisted {sum_hoisted_ms:8.3} ms   x{sum_speedup:.2}"
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"n\": {n},\n",
            "  \"slots\": {n},\n",
            "  \"rotation\": {{\n",
            "    \"reference_ms\": {rr:.3},\n",
            "    \"hoist_of_one_ms\": {h1:.3},\n",
            "    \"hoisted_marginal_ms\": {hm:.3}\n",
            "  }},\n",
            "  \"rotate_many_8\": {{\n",
            "    \"reference_ms\": {mr:.3},\n",
            "    \"hoisted_ms\": {mh:.3},\n",
            "    \"speedup\": {ms:.3},\n",
            "    \"speedup_required\": 3.0\n",
            "  }},\n",
            "  \"sum_slots\": {{\n",
            "    \"reference_ms\": {sr:.3},\n",
            "    \"hoisted_ms\": {sh:.3},\n",
            "    \"speedup\": {ss:.3},\n",
            "    \"note\": \"slot-sum doubling rounds are sequentially dependent, so one decomposition cannot serve all log2(n) rotations; the grouped fold amortizes within HOIST_GROUP_ROUNDS-round groups (4 decompositions instead of 12 at n=4096)\"\n",
            "  }}\n",
            "}}\n"
        ),
        n = n,
        rr = rot_ref_ms,
        h1 = rot_hoist1_ms,
        hm = rot_marginal_ms,
        mr = many_ref_ms,
        mh = many_hoisted_ms,
        ms = rot_speedup,
        sr = sum_ref_ms,
        sh = sum_hoisted_ms,
        ss = sum_speedup,
    );
    let out = std::env::var("BENCH_PR5_OUT").unwrap_or_else(|_| "BENCH_PR5.json".into());
    std::fs::write(&out, json).expect("write bench report");
    println!("report written to {out}");
}
