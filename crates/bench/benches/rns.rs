//! Criterion benches of the RNS machinery: `Lift q→Q` and `Scale Q→q` in
//! all three arithmetic variants — the software-side counterpart of the
//! paper's Fig. 5/6 and Fig. 8/9 comparison. Inputs and outputs use the
//! flat limb-major layout the hot path runs on; output buffers are
//! allocated once outside the timed loop.

use criterion::{criterion_group, criterion_main, Criterion};
use hefv_math::primes::ntt_primes;
use hefv_math::rns::{HpsPrecision, RnsContext, ScaleContext};
use std::hint::black_box;

const N: usize = 512; // coefficients per bench iteration

fn setup() -> (RnsContext, ScaleContext, Vec<u64>, Vec<u64>) {
    let ps = ntt_primes(30, 4096, 13).unwrap();
    let ctx = RnsContext::new(&ps[..6], &ps[6..]).unwrap();
    let sc = ScaleContext::new(&ctx, 2);
    let mut lift_in = vec![0u64; 6 * N];
    for i in 0..6 {
        let q = ctx.base_q().modulus(i).value();
        for c in 0..N {
            lift_in[i * N + c] = (c as u64 * 2654435761 + i as u64) % q;
        }
    }
    let mut scale_in = vec![0u64; 13 * N];
    for i in 0..13 {
        let q = ctx.base_full().modulus(i).value();
        for c in 0..N {
            scale_in[i * N + c] = (c as u64 * 40503 + i as u64 * 11) % q;
        }
    }
    (ctx, sc, lift_in, scale_in)
}

fn bench_lift(c: &mut Criterion) {
    let (ctx, _, lift_in, _) = setup();
    let mut out = vec![0u64; 7 * N];
    let mut g = c.benchmark_group("lift_512_coeffs");
    g.bench_function("traditional CRT (Fig. 5)", |b| {
        b.iter(|| {
            ctx.lift().extend_poly_exact_into(&lift_in, N, &mut out);
            black_box(&out);
        })
    });
    g.bench_function("HPS f64", |b| {
        b.iter(|| {
            ctx.lift()
                .extend_poly_hps_into(&lift_in, N, &mut out, HpsPrecision::F64);
            black_box(&out);
        })
    });
    g.bench_function("HPS fixed-point (Fig. 6)", |b| {
        b.iter(|| {
            ctx.lift()
                .extend_poly_hps_into(&lift_in, N, &mut out, HpsPrecision::Fixed);
            black_box(&out);
        })
    });
    g.finish();
}

fn bench_scale(c: &mut Criterion) {
    let (ctx, sc, _, scale_in) = setup();
    let mut out = vec![0u64; 6 * N];
    let mut g = c.benchmark_group("scale_512_coeffs");
    g.sample_size(20);
    g.bench_function("traditional CRT (Fig. 8)", |b| {
        b.iter(|| {
            sc.scale_poly_exact_into(&ctx, &scale_in, N, &mut out);
            black_box(&out);
        })
    });
    g.bench_function("HPS f64", |b| {
        b.iter(|| {
            sc.scale_poly_hps_into(&ctx, &scale_in, N, &mut out, HpsPrecision::F64);
            black_box(&out);
        })
    });
    g.bench_function("HPS fixed-point (Fig. 9)", |b| {
        b.iter(|| {
            sc.scale_poly_hps_into(&ctx, &scale_in, N, &mut out, HpsPrecision::Fixed);
            black_box(&out);
        })
    });
    g.finish();
}

criterion_group!(benches, bench_lift, bench_scale);
criterion_main!(benches);
