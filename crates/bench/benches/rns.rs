//! Criterion benches of the RNS machinery: `Lift q→Q` and `Scale Q→q` in
//! all three arithmetic variants — the software-side counterpart of the
//! paper's Fig. 5/6 and Fig. 8/9 comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use hefv_math::primes::ntt_primes;
use hefv_math::rns::{HpsPrecision, RnsContext, ScaleContext};
use std::hint::black_box;

fn setup() -> (RnsContext, ScaleContext, Vec<Vec<u64>>, Vec<Vec<u64>>) {
    let ps = ntt_primes(30, 4096, 13).unwrap();
    let ctx = RnsContext::new(&ps[..6], &ps[6..]).unwrap();
    let sc = ScaleContext::new(&ctx, 2);
    let n = 512; // coefficients per bench iteration
    let lift_in: Vec<Vec<u64>> = (0..6)
        .map(|i| {
            (0..n as u64)
                .map(|c| (c * 2654435761 + i as u64) % ctx.base_q().modulus(i).value())
                .collect()
        })
        .collect();
    let scale_in: Vec<Vec<u64>> = (0..13)
        .map(|i| {
            (0..n as u64)
                .map(|c| (c * 40503 + i as u64 * 11) % ctx.base_full().modulus(i).value())
                .collect()
        })
        .collect();
    (ctx, sc, lift_in, scale_in)
}

fn bench_lift(c: &mut Criterion) {
    let (ctx, _, lift_in, _) = setup();
    let mut g = c.benchmark_group("lift_512_coeffs");
    g.bench_function("traditional CRT (Fig. 5)", |b| {
        b.iter(|| black_box(ctx.lift().extend_poly_exact(&lift_in)))
    });
    g.bench_function("HPS f64", |b| {
        b.iter(|| black_box(ctx.lift().extend_poly_hps(&lift_in, HpsPrecision::F64)))
    });
    g.bench_function("HPS fixed-point (Fig. 6)", |b| {
        b.iter(|| black_box(ctx.lift().extend_poly_hps(&lift_in, HpsPrecision::Fixed)))
    });
    g.finish();
}

fn bench_scale(c: &mut Criterion) {
    let (ctx, sc, _, scale_in) = setup();
    let mut g = c.benchmark_group("scale_512_coeffs");
    g.sample_size(20);
    g.bench_function("traditional CRT (Fig. 8)", |b| {
        b.iter(|| black_box(sc.scale_poly_exact(&ctx, &scale_in)))
    });
    g.bench_function("HPS f64", |b| {
        b.iter(|| black_box(sc.scale_poly_hps(&ctx, &scale_in, HpsPrecision::F64)))
    });
    g.bench_function("HPS fixed-point (Fig. 9)", |b| {
        b.iter(|| black_box(sc.scale_poly_hps(&ctx, &scale_in, HpsPrecision::Fixed)))
    });
    g.finish();
}

criterion_group!(benches, bench_lift, bench_scale);
criterion_main!(benches);
