//! Before/after bench for the PR-4 hot-path overhaul: Harvey lazy-reduction
//! NTT vs the strict reference path, plus the end-to-end `Mult` and
//! `relinearize` kernels, emitted as machine-readable JSON.
//!
//! The strict transforms (`forward_strict`/`inverse_strict`) are the exact
//! pre-overhaul implementation, kept in-tree as the oracle — so the
//! speedup this bench reports is a live before/after measurement, not a
//! stale number. Results are printed as a table and written to
//! `$BENCH_PR4_OUT` (default `BENCH_PR4.json` in the crate directory; CI
//! uploads it as an artifact).
//!
//! Since PR 7 the same binary also measures the **SIMD lane comparison**:
//! each dispatched kernel (forward/inverse NTT, pointwise product, hoisted
//! key-switch SoP line) timed through the scalar table vs the AVX2 table,
//! written to `$BENCH_PR7_OUT` (default `BENCH_PR7.json`). On hardware
//! without AVX2 the comparison is skipped and the report says so — CI
//! gates the SIMD ratio only when the fresh report ran on AVX2.
//!
//! Environment knobs:
//! * `BENCH_PR4_OUT` / `BENCH_PR7_OUT` — output paths for the JSON reports.
//! * `BENCH_PR4_QUICK` / `BENCH_PR7_QUICK` — any value shrinks the
//!   iteration budget for CI smoke runs (either one enables quick mode).

use hefv_core::eval::{self, Backend};
use hefv_core::prelude::*;
use hefv_math::dispatch::{self, Kernels};
use hefv_math::ntt::NttTable;
use hefv_math::primes::ntt_prime;
use hefv_math::rns::HpsPrecision;
use hefv_math::zq::Modulus;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

/// Minimum time per measurement in seconds (keeps samples meaningful
/// without pinning the CI smoke job).
fn measure<F: FnMut()>(mut f: F, quick: bool) -> f64 {
    // Warm up and size the batch.
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_secs_f64().max(1e-9);
    let target = if quick { 0.02 } else { 0.2 };
    let batch = ((target / 8.0 / once) as u64).clamp(1, 1 << 20);
    let samples = if quick { 3 } else { 8 };
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..batch {
            f();
        }
        best = best.min(t.elapsed().as_secs_f64() / batch as f64);
    }
    best
}

/// Times the four dispatched kernels through one kernel table; returns
/// `[forward_us, inverse_us, pointwise_us, sop_us]`.
fn lane_times(k: &'static Kernels, table: &NttTable, input: &[u64], quick: bool) -> [f64; 4] {
    let n = table.n();
    let q = table.modulus().value();
    let m = *table.modulus();
    // Transform in place: the canonical [0, q) output is a valid input
    // for either direction, so the loop measures the kernel alone
    // rather than a 32 KB clone per iteration.
    let mut x = input.to_vec();
    let fwd = measure(
        || {
            k.ntt_forward(table, black_box(&mut x));
        },
        quick,
    ) * 1e6;
    let mut x = input.to_vec();
    k.ntt_forward(table, &mut x);
    let inv = measure(
        || {
            k.ntt_inverse(table, black_box(&mut x));
        },
        quick,
    ) * 1e6;
    let b: Vec<u64> = (0..n as u64).map(|i| (i * 69621 + 11) % q).collect();
    let mut dst = vec![0u64; n];
    let pw = measure(
        || {
            k.pointwise_mul(&m, input, &b, &mut dst);
            black_box(&mut dst);
        },
        quick,
    ) * 1e6;
    // One SoP residue row at the paper's digit count (k = 6 primes in Q).
    let digits = 6usize;
    let line = |seed: u64| -> Vec<u32> {
        (0..n as u64 * digits as u64)
            .map(|i| ((i * 2654435761 + seed) % q) as u32)
            .collect()
    };
    let (d32, k0, k1) = (line(1), line(2), line(3));
    let perm: Vec<u32> = (0..n as u32).rev().collect();
    let (mut a0, mut a1) = (vec![0u64; n], vec![0u64; n]);
    let sop = measure(
        || {
            k.sop_narrow_row(&m, &perm, &d32, &k0, &k1, Some(input), &mut a0, &mut a1);
            black_box((&mut a0, &mut a1));
        },
        quick,
    ) * 1e6;
    [fwd, inv, pw, sop]
}

fn main() {
    let quick = std::env::var_os("BENCH_PR4_QUICK").is_some()
        || std::env::var_os("BENCH_PR7_QUICK").is_some();
    let n = 4096usize;
    let q = ntt_prime(30, n, 0).unwrap();
    let table = NttTable::new(Modulus::new(q), n).unwrap();
    let input: Vec<u64> = (0..n as u64).map(|i| (i * 48271 + 3) % q).collect();

    let strict_fwd = measure(
        || {
            let mut x = input.clone();
            table.forward_strict(&mut x);
            black_box(x);
        },
        quick,
    ) * 1e6;
    let lazy_fwd = measure(
        || {
            let mut x = input.clone();
            table.forward(&mut x);
            black_box(x);
        },
        quick,
    ) * 1e6;
    let mut frev = input.clone();
    table.forward(&mut frev);
    let strict_inv = measure(
        || {
            let mut x = frev.clone();
            table.inverse_strict(&mut x);
            black_box(x);
        },
        quick,
    ) * 1e6;
    let lazy_inv = measure(
        || {
            let mut x = frev.clone();
            table.inverse(&mut x);
            black_box(x);
        },
        quick,
    ) * 1e6;

    // End-to-end Mult + relinearize at the paper's full parameter size.
    let ctx = FvContext::new(FvParams::hpca19()).unwrap();
    let mut rng = StdRng::seed_from_u64(2019);
    let (_sk, pk, rlk) = keygen(&ctx, &mut rng);
    let pa = Plaintext::new(vec![1, 1], 2, ctx.params().n);
    let ca = encrypt(&ctx, &pk, &pa, &mut rng);
    let cb = encrypt(&ctx, &pk, &pa, &mut rng);
    let backend = Backend::Hps(HpsPrecision::Fixed);
    let mult_ms = measure(
        || {
            black_box(eval::mul(&ctx, &ca, &cb, &rlk, backend));
        },
        quick,
    ) * 1e3;
    let tensor = eval::tensor(&ctx, &ca, &cb, backend);
    let relin_ms = measure(
        || {
            black_box(eval::relinearize(&ctx, &tensor, &rlk));
        },
        quick,
    ) * 1e3;

    let fwd_speedup = strict_fwd / lazy_fwd;
    let inv_speedup = strict_inv / lazy_inv;
    let combined = (strict_fwd + strict_inv) / (lazy_fwd + lazy_inv);
    println!("NTT n={n}, 30-bit prime (times are per-transform minima):");
    println!("  forward  strict {strict_fwd:9.2} µs   lazy {lazy_fwd:9.2} µs   ×{fwd_speedup:.2}");
    println!("  inverse  strict {strict_inv:9.2} µs   lazy {lazy_inv:9.2} µs   ×{inv_speedup:.2}");
    println!("  forward+inverse speedup ×{combined:.2}");
    println!("End-to-end (n=4096, 6+7 primes, HPS fixed-point):");
    println!("  Mult        {mult_ms:8.2} ms");
    println!("  relinearize {relin_ms:8.2} ms");

    let json = format!(
        concat!(
            "{{\n",
            "  \"n\": {n},\n",
            "  \"ntt\": {{\n",
            "    \"strict_forward_us\": {sf:.3},\n",
            "    \"lazy_forward_us\": {lf:.3},\n",
            "    \"strict_inverse_us\": {si:.3},\n",
            "    \"lazy_inverse_us\": {li:.3},\n",
            "    \"forward_speedup\": {fs:.3},\n",
            "    \"inverse_speedup\": {is:.3},\n",
            "    \"forward_plus_inverse_speedup\": {cs:.3}\n",
            "  }},\n",
            "  \"kernels\": {{\n",
            "    \"mult_hps_fixed_ms\": {mm:.3},\n",
            "    \"relinearize_ms\": {rm:.3}\n",
            "  }}\n",
            "}}\n"
        ),
        n = n,
        sf = strict_fwd,
        lf = lazy_fwd,
        si = strict_inv,
        li = lazy_inv,
        fs = fwd_speedup,
        is = inv_speedup,
        cs = combined,
        mm = mult_ms,
        rm = relin_ms,
    );
    let out = std::env::var("BENCH_PR4_OUT").unwrap_or_else(|_| "BENCH_PR4.json".into());
    std::fs::write(&out, json).expect("write bench report");
    println!("report written to {out}");

    // ---- PR 7: SIMD lane comparison (scalar table vs AVX2 table) ----
    let scalar = dispatch::scalar_kernels();
    let avx2 = dispatch::avx2_kernels();
    let s = lane_times(scalar, &table, &input, quick);
    // Without AVX2 hardware there is nothing to compare against: report
    // the scalar numbers for both columns with unit speedups, and mark
    // the report so the CI gate knows to skip the ratio check.
    let v = match avx2 {
        Some(k) => lane_times(k, &table, &input, quick),
        None => s,
    };
    let cpu_avx2 = avx2.is_some();
    let names = ["forward ", "inverse ", "pointwise", "sop line "];
    println!(
        "SIMD lane comparison n={n} (backend under test: {}):",
        if cpu_avx2 {
            "avx2"
        } else {
            "scalar only — no AVX2 on this CPU"
        }
    );
    for i in 0..4 {
        println!(
            "  {} scalar {:9.2} µs   simd {:9.2} µs   ×{:.2}",
            names[i],
            s[i],
            v[i],
            s[i] / v[i]
        );
    }
    let ntt_speedup = (s[0] + s[1]) / (v[0] + v[1]);
    println!("  forward+inverse NTT simd-vs-scalar speedup ×{ntt_speedup:.2}");
    let json7 = format!(
        concat!(
            "{{\n",
            "  \"n\": {n},\n",
            "  \"cpu_avx2\": {avx},\n",
            "  \"active_backend\": \"{backend}\",\n",
            "  \"ntt\": {{\n",
            "    \"scalar_forward_us\": {sf:.3},\n",
            "    \"simd_forward_us\": {vf:.3},\n",
            "    \"scalar_inverse_us\": {si:.3},\n",
            "    \"simd_inverse_us\": {vi:.3},\n",
            "    \"forward_speedup\": {fs:.3},\n",
            "    \"inverse_speedup\": {is:.3},\n",
            "    \"forward_plus_inverse_speedup\": {cs:.3}\n",
            "  }},\n",
            "  \"pointwise\": {{\n",
            "    \"scalar_us\": {sp:.3},\n",
            "    \"simd_us\": {vp:.3},\n",
            "    \"speedup\": {ps:.3}\n",
            "  }},\n",
            "  \"sop_row\": {{\n",
            "    \"digits\": 6,\n",
            "    \"scalar_us\": {ss:.3},\n",
            "    \"simd_us\": {vs:.3},\n",
            "    \"speedup\": {os:.3}\n",
            "  }},\n",
            "  \"acceptance\": {{\n",
            "    \"ntt_forward_plus_inverse_speedup_simd_vs_scalar\": {cs:.3}\n",
            "  }}\n",
            "}}\n"
        ),
        n = n,
        avx = cpu_avx2,
        backend = dispatch::backend_name(),
        sf = s[0],
        vf = v[0],
        si = s[1],
        vi = v[1],
        fs = s[0] / v[0],
        is = s[1] / v[1],
        cs = ntt_speedup,
        sp = s[2],
        vp = v[2],
        ps = s[2] / v[2],
        ss = s[3],
        vs = v[3],
        os = s[3] / v[3],
    );
    let out7 = std::env::var("BENCH_PR7_OUT").unwrap_or_else(|_| "BENCH_PR7.json".into());
    std::fs::write(&out7, json7).expect("write lane-comparison report");
    println!("lane-comparison report written to {out7}");
}
