//! Before/after bench for the PR-4 hot-path overhaul: Harvey lazy-reduction
//! NTT vs the strict reference path, plus the end-to-end `Mult` and
//! `relinearize` kernels, emitted as machine-readable JSON.
//!
//! The strict transforms (`forward_strict`/`inverse_strict`) are the exact
//! pre-overhaul implementation, kept in-tree as the oracle — so the
//! speedup this bench reports is a live before/after measurement, not a
//! stale number. Results are printed as a table and written to
//! `$BENCH_PR4_OUT` (default `BENCH_PR4.json` in the crate directory; CI
//! uploads it as an artifact).
//!
//! Environment knobs:
//! * `BENCH_PR4_OUT` — output path for the JSON report.
//! * `BENCH_PR4_QUICK` — any value shrinks the iteration budget for CI
//!   smoke runs.

use hefv_core::eval::{self, Backend};
use hefv_core::prelude::*;
use hefv_math::ntt::NttTable;
use hefv_math::primes::ntt_prime;
use hefv_math::rns::HpsPrecision;
use hefv_math::zq::Modulus;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

/// Minimum time per measurement in seconds (keeps samples meaningful
/// without pinning the CI smoke job).
fn measure<F: FnMut()>(mut f: F, quick: bool) -> f64 {
    // Warm up and size the batch.
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_secs_f64().max(1e-9);
    let target = if quick { 0.02 } else { 0.2 };
    let batch = ((target / 8.0 / once) as u64).clamp(1, 1 << 20);
    let samples = if quick { 3 } else { 8 };
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..batch {
            f();
        }
        best = best.min(t.elapsed().as_secs_f64() / batch as f64);
    }
    best
}

fn main() {
    let quick = std::env::var_os("BENCH_PR4_QUICK").is_some();
    let n = 4096usize;
    let q = ntt_prime(30, n, 0).unwrap();
    let table = NttTable::new(Modulus::new(q), n).unwrap();
    let input: Vec<u64> = (0..n as u64).map(|i| (i * 48271 + 3) % q).collect();

    let strict_fwd = measure(
        || {
            let mut x = input.clone();
            table.forward_strict(&mut x);
            black_box(x);
        },
        quick,
    ) * 1e6;
    let lazy_fwd = measure(
        || {
            let mut x = input.clone();
            table.forward(&mut x);
            black_box(x);
        },
        quick,
    ) * 1e6;
    let mut frev = input.clone();
    table.forward(&mut frev);
    let strict_inv = measure(
        || {
            let mut x = frev.clone();
            table.inverse_strict(&mut x);
            black_box(x);
        },
        quick,
    ) * 1e6;
    let lazy_inv = measure(
        || {
            let mut x = frev.clone();
            table.inverse(&mut x);
            black_box(x);
        },
        quick,
    ) * 1e6;

    // End-to-end Mult + relinearize at the paper's full parameter size.
    let ctx = FvContext::new(FvParams::hpca19()).unwrap();
    let mut rng = StdRng::seed_from_u64(2019);
    let (_sk, pk, rlk) = keygen(&ctx, &mut rng);
    let pa = Plaintext::new(vec![1, 1], 2, ctx.params().n);
    let ca = encrypt(&ctx, &pk, &pa, &mut rng);
    let cb = encrypt(&ctx, &pk, &pa, &mut rng);
    let backend = Backend::Hps(HpsPrecision::Fixed);
    let mult_ms = measure(
        || {
            black_box(eval::mul(&ctx, &ca, &cb, &rlk, backend));
        },
        quick,
    ) * 1e3;
    let tensor = eval::tensor(&ctx, &ca, &cb, backend);
    let relin_ms = measure(
        || {
            black_box(eval::relinearize(&ctx, &tensor, &rlk));
        },
        quick,
    ) * 1e3;

    let fwd_speedup = strict_fwd / lazy_fwd;
    let inv_speedup = strict_inv / lazy_inv;
    let combined = (strict_fwd + strict_inv) / (lazy_fwd + lazy_inv);
    println!("NTT n={n}, 30-bit prime (times are per-transform minima):");
    println!("  forward  strict {strict_fwd:9.2} µs   lazy {lazy_fwd:9.2} µs   ×{fwd_speedup:.2}");
    println!("  inverse  strict {strict_inv:9.2} µs   lazy {lazy_inv:9.2} µs   ×{inv_speedup:.2}");
    println!("  forward+inverse speedup ×{combined:.2}");
    println!("End-to-end (n=4096, 6+7 primes, HPS fixed-point):");
    println!("  Mult        {mult_ms:8.2} ms");
    println!("  relinearize {relin_ms:8.2} ms");

    let json = format!(
        concat!(
            "{{\n",
            "  \"n\": {n},\n",
            "  \"ntt\": {{\n",
            "    \"strict_forward_us\": {sf:.3},\n",
            "    \"lazy_forward_us\": {lf:.3},\n",
            "    \"strict_inverse_us\": {si:.3},\n",
            "    \"lazy_inverse_us\": {li:.3},\n",
            "    \"forward_speedup\": {fs:.3},\n",
            "    \"inverse_speedup\": {is:.3},\n",
            "    \"forward_plus_inverse_speedup\": {cs:.3}\n",
            "  }},\n",
            "  \"kernels\": {{\n",
            "    \"mult_hps_fixed_ms\": {mm:.3},\n",
            "    \"relinearize_ms\": {rm:.3}\n",
            "  }}\n",
            "}}\n"
        ),
        n = n,
        sf = strict_fwd,
        lf = lazy_fwd,
        si = strict_inv,
        li = lazy_inv,
        fs = fwd_speedup,
        is = inv_speedup,
        cs = combined,
        mm = mult_ms,
        rm = relin_ms,
    );
    let out = std::env::var("BENCH_PR4_OUT").unwrap_or_else(|_| "BENCH_PR4.json".into());
    std::fs::write(&out, json).expect("write bench report");
    println!("report written to {out}");
}
