//! Criterion benches of the arithmetic kernels the RTL accelerates: NTT at
//! several sizes, coefficient-wise ops, and the two modular-reduction
//! datapaths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hefv_math::ntt::NttTable;
use hefv_math::primes::ntt_prime;
use hefv_math::zq::{Modulus, SlidingWindowTable};
use std::hint::black_box;

fn bench_ntt(c: &mut Criterion) {
    let mut g = c.benchmark_group("ntt");
    for n in [1024usize, 4096, 8192] {
        let q = ntt_prime(30, n, 0).unwrap();
        let table = NttTable::new(Modulus::new(q), n).unwrap();
        let a: Vec<u64> = (0..n as u64).map(|i| (i * 48271 + 3) % q).collect();
        g.bench_with_input(BenchmarkId::new("forward", n), &n, |b, _| {
            b.iter(|| {
                let mut x = a.clone();
                table.forward(&mut x);
                black_box(x)
            })
        });
        g.bench_with_input(BenchmarkId::new("inverse", n), &n, |b, _| {
            b.iter(|| {
                let mut x = a.clone();
                table.inverse(&mut x);
                black_box(x)
            })
        });
    }
    g.finish();
}

fn bench_coeffwise(c: &mut Criterion) {
    let n = 4096usize;
    let q = ntt_prime(30, n, 0).unwrap();
    let m = Modulus::new(q);
    let a: Vec<u64> = (0..n as u64).map(|i| (i * 7 + 1) % q).collect();
    let b2: Vec<u64> = (0..n as u64).map(|i| (i * 31 + 5) % q).collect();
    let mut g = c.benchmark_group("coeffwise_4096");
    g.bench_function("mul", |b| {
        b.iter(|| {
            let out: Vec<u64> = a.iter().zip(&b2).map(|(&x, &y)| m.mul(x, y)).collect();
            black_box(out)
        })
    });
    g.bench_function("add", |b| {
        b.iter(|| {
            let out: Vec<u64> = a.iter().zip(&b2).map(|(&x, &y)| m.add(x, y)).collect();
            black_box(out)
        })
    });
    g.finish();
}

fn bench_reduction(c: &mut Criterion) {
    let q = ntt_prime(30, 4096, 0).unwrap();
    let m = Modulus::new(q);
    let sw = SlidingWindowTable::new(&m);
    let inputs: Vec<u128> = (0..4096u128)
        .map(|i| (i * 1_000_003 + 7) * (i * 999_983 + 13))
        .collect();
    let mut g = c.benchmark_group("modular_reduction");
    g.bench_function("barrett", |b| {
        b.iter(|| {
            let s: u64 = inputs.iter().map(|&x| m.reduce_u128(x)).sum();
            black_box(s)
        })
    });
    g.bench_function("sliding_window(paper RTL)", |b| {
        b.iter(|| {
            let s: u64 = inputs
                .iter()
                .map(|&x| m.reduce_sliding_window(x, &sw))
                .sum();
            black_box(s)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_ntt, bench_coeffwise, bench_reduction);
criterion_main!(benches);
