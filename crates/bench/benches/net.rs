//! Loopback TCP front-end throughput: pipelined frames through
//! `hefv_net::NetServer` vs calling the router in-process.
//!
//! The interesting number is the transport tax — framing, the poll
//! loop, per-connection queues — on top of the same engine work.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hefv_core::prelude::*;
use hefv_engine::prelude::*;
use hefv_engine::router::ShardSpec;
use hefv_engine::wire;
use hefv_net::{Client, NetServer, ServerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const TENANT: u64 = 9;
const FRAMES_PER_ITER: u64 = 32;

struct Fixture {
    router: Arc<ShardRouter>,
    /// A pre-encoded Add frame (the workload is transport-bound).
    frame: Vec<u8>,
}

fn fixture() -> Fixture {
    let ctx = Arc::new(FvContext::new(FvParams::insecure_toy()).unwrap());
    let router = Arc::new(ShardRouter::new());
    for i in 0..2 {
        router
            .add_shard(ShardSpec {
                name: format!("net-{i}"),
                ctx: Arc::clone(&ctx),
                config: EngineConfig {
                    workers: 2,
                    threads_per_job: 1,
                    queue_capacity: 256,
                    ..EngineConfig::default()
                },
            })
            .unwrap();
    }
    let mut rng = StdRng::seed_from_u64(7);
    let (_sk, pk, rlk) = keygen(&ctx, &mut rng);
    router
        .register_tenant(TENANT, TenantKeys::compute(pk.clone(), rlk))
        .unwrap();
    let t = ctx.params().t;
    let n = ctx.params().n;
    let enc = |v, rng: &mut StdRng| encrypt(&ctx, &pk, &Plaintext::new(vec![v], t, n), rng);
    let req = EvalRequest::binary(TENANT, EvalOp::Add, enc(2, &mut rng), enc(3, &mut rng));
    Fixture {
        router,
        frame: wire::encode_request(&req),
    }
}

/// Pipelined loopback round trips vs the in-process dispatch ceiling.
fn bench_loopback(c: &mut Criterion) {
    let f = fixture();
    let mut g = c.benchmark_group("net_loopback");
    g.sample_size(10)
        .throughput(Throughput::Elements(FRAMES_PER_ITER));

    g.bench_function("in_process_dispatch", |b| {
        b.iter(|| {
            for _ in 0..FRAMES_PER_ITER {
                let reply = f.router.dispatch_frame(&f.frame);
                assert!(wire::peek_response_job_id(&reply).is_ok());
            }
        })
    });

    let server = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&f.router),
        ServerConfig {
            max_inflight: FRAMES_PER_ITER as usize,
            poll_interval: std::time::Duration::from_micros(50),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    g.bench_function("tcp_pipelined", |b| {
        b.iter(|| {
            for _ in 0..FRAMES_PER_ITER {
                client.send_frame(&f.frame).unwrap();
            }
            for _ in 0..FRAMES_PER_ITER {
                client.recv_reply().unwrap();
            }
        })
    });
    let mut client2 = Client::connect(server.local_addr()).unwrap();
    g.bench_function("tcp_serial_round_trips", |b| {
        b.iter(|| {
            for _ in 0..FRAMES_PER_ITER {
                client2.call(&f.frame).unwrap();
            }
        })
    });
    g.finish();
    drop(client);
    drop(client2);
    server.shutdown();
    f.router.shutdown();
}

criterion_group!(benches, bench_loopback);
criterion_main!(benches);
