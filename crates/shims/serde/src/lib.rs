//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its model types so
//! that switching to the real `serde` is a Cargo.toml change, but nothing
//! in-tree serializes through serde (the wire formats under
//! `hefv_core::wire` and `hefv_engine::wire` are explicit binary layouts).
//! These derives therefore expand to nothing; they exist so `#[derive(...)]`
//! attributes and `use serde::{Serialize, Deserialize}` imports compile
//! without the real crate.

use proc_macro::TokenStream;

/// No-op replacement for `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
