//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! the subset of the `rand 0.8` API it actually uses: the [`Rng`] and
//! [`SeedableRng`] traits, [`rngs::StdRng`], uniform `gen_range` over the
//! primitive integer ranges, and `gen::<f64>()`/`gen::<bool>()`.
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — not the CSPRNG
//! the real crate uses. That is fine for tests, examples and benchmarks, but
//! the distinction matters for key material: swap the workspace dependency
//! back to the real `rand` before using keys outside a simulation.

pub mod rngs {
    /// Deterministic PRNG with the `rand::rngs::StdRng` API (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StdRng {
    #[inline]
    fn next(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Core RNG interface: a source of uniformly random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types `Rng::gen` can produce (the real crate's `Standard` distribution).
pub trait StandardSample {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-sampled uniform draw from `[0, span)`, `span >= 1`.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span >= 1);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Largest multiple of span that fits in u64; reject above it.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// Integer types `gen_range` can draw uniformly. The two blanket
/// [`SampleRange`] impls below are generic over this trait so that type
/// inference can flow *backward* from the use site into the range literal
/// (`base + rng.gen_range(0..5)` with `base: u64` infers a `u64` range),
/// matching the real crate's behavior.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty gen_range");
                lo + uniform_below(rng, (hi - lo) as u64) as $t
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty gen_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty gen_range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                (lo as i64).wrapping_add(uniform_below(rng, span) as i64) as $t
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(uniform_below(rng, span + 1) as i64) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// The user-facing RNG interface.
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, (0..8).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-1i64..=1);
            assert!((-1..=1).contains(&v));
            let u = rng.gen_range(5..50u64);
            assert!((5..50).contains(&u));
            let b = rng.gen_range(0..2u8);
            assert!(b < 2);
        }
    }

    #[test]
    fn gen_range_covers_support() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(rng.gen_range(-1i64..=1) + 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0..10u64)
        }
        let mut rng = StdRng::seed_from_u64(4);
        assert!(draw(&mut rng) < 10);
    }
}
