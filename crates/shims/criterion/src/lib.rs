//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace benches use — [`Criterion`],
//! benchmark groups, [`BenchmarkId`], [`Throughput`], `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — over a deliberately simple
//! measurement loop: a short warm-up to size the batch, then `sample_size`
//! timed batches, reporting min/mean/max per iteration. No statistics
//! beyond that, no plots, no saved baselines.
//!
//! Benches must set `harness = false` in Cargo.toml (they already do for
//! real criterion) so `criterion_main!` can provide `fn main`.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall-clock time for one measured sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(40);
/// Cap on total time spent per benchmark function.
const BENCH_BUDGET: Duration = Duration::from_secs(3);

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.default_sample_size, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\ngroup: {name}");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.default_sample_size,
            throughput: None,
        }
    }
}

/// Identifies one parameterized benchmark within a group.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `function_name/parameter` display form, as real criterion prints it.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            full: format!("{function_name}/{parameter}"),
        }
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (requests, coefficients, …) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares per-iteration throughput; rates are printed alongside times.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, name),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Runs a parameterized benchmark; the input is passed to the closure.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.full),
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (printing is already done per-benchmark).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` times the workload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    tp: Option<Throughput>,
    mut f: F,
) {
    // Warm-up: one iteration, timed, to size the measured batches.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let per_sample = (SAMPLE_TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

    let budget = Instant::now();
    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        if budget.elapsed() > BENCH_BUDGET && !per_iter.is_empty() {
            break;
        }
        let mut b = Bencher {
            iters: per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / per_sample as f64);
    }

    let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().copied().fold(0.0, f64::max);
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    print!(
        "{label:<56} time: [{} {} {}]",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max)
    );
    match tp {
        Some(Throughput::Elements(n)) => {
            print!("  thrpt: {:.1} elem/s", n as f64 / mean);
        }
        Some(Throughput::Bytes(n)) => {
            print!("  thrpt: {:.1} MiB/s", n as f64 / mean / (1024.0 * 1024.0));
        }
        None => {}
    }
    println!();
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Provides `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn groups_run_all_benches() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3).throughput(Throughput::Elements(4));
        let mut ran = false;
        g.bench_with_input(BenchmarkId::new("p", 42), &7u32, |b, &x| {
            b.iter(|| x * 2);
            ran = true;
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn time_formatting_scales() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with("ms"));
        assert!(fmt_time(2e-6).ends_with("µs"));
        assert!(fmt_time(2e-9).ends_with("ns"));
    }
}
