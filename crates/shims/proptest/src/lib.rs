//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`/`prop_filter`,
//! integer-range and `any::<T>()` strategies, `prop::collection::vec`,
//! [`ProptestConfig`], and the `proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, `prop_assert_ne!` and `prop_assume!` macros.
//!
//! Differences from the real crate: cases are generated from a fixed seed
//! (fully deterministic across runs) and failing inputs are *not shrunk* —
//! the failing case's `Debug` rendering is reported as-is.

use rand::rngs::StdRng;
use rand::Rng;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Error raised by the `prop_assert*` family; aborts the current case.
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// Result type the generated test bodies return.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of random values of type `Value`.
pub trait Strategy {
    type Value: core::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: core::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `pred` (retries, bounded).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            pred,
            whence,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: core::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates: {}", self.whence);
    }
}

/// Strategy producing a constant.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + core::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.start..=<$t>::MAX)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Marker for types `any::<T>()` can generate.
pub trait Arbitrary: Sized + core::fmt::Debug {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                // Mix full-width values with small ones so boundary-heavy
                // code sees both regimes.
                match rng.gen_range(0..4u8) {
                    0 => (rng.gen::<u64>() % 16) as $t,
                    1 => <$t>::MAX - (rng.gen::<u64>() % 4) as $t,
                    _ => {
                        let mut wide = rng.gen::<u64>() as u128;
                        wide |= (rng.gen::<u64>() as u128) << 64;
                        wide as $t
                    }
                }
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, u128, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

/// Strategy wrapper returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over every value of `T` (the proptest entry point).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// The `prop::` namespace (`prop::collection::vec` and friends).
pub mod prop {
    pub mod collection {
        use super::super::{StdRng, Strategy};
        use rand::Rng;

        /// Length specification for [`vec()`]: an exact size or a range.
        pub struct SizeRange {
            lo: usize,
            /// Exclusive upper bound.
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(r: core::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        impl From<core::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: core::ops::RangeInclusive<usize>) -> Self {
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end() + 1,
                }
            }
        }

        /// Strategy for `Vec`s with lengths drawn from `len`.
        pub struct VecStrategy<S> {
            elem: S,
            len: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let len = rng.gen_range(self.len.lo..self.len.hi);
                (0..len).map(|_| self.elem.generate(rng)).collect()
            }
        }

        /// `prop::collection::vec(element_strategy, size)` where `size` is
        /// an exact length or a length range.
        pub fn vec<S: Strategy, L: Into<SizeRange>>(elem: S, len: L) -> VecStrategy<S> {
            VecStrategy {
                elem,
                len: len.into(),
            }
        }
    }
}

/// Everything a property-test module needs in one import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// Deterministic per-test seed derived from the test path.
    pub fn seed_for(name: &str, case: u32) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

/// Aborts the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Aborts the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError(format!(
                "{} ({:?} != {:?})",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Aborts the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Declares property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            use $crate::Strategy as _;
            use $crate::__rt::SeedableRng as _;
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __proptest_rng = $crate::__rt::StdRng::seed_from_u64(
                    $crate::__rt::seed_for(concat!(module_path!(), "::", stringify!($name)), case),
                );
                $(let $arg = ($strat).generate(&mut __proptest_rng);)+
                let __proptest_inputs =
                    [$(format!(concat!(stringify!($arg), " = {:?}"), &$arg)),+].join(", ");
                let result: $crate::TestCaseResult = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        case + 1,
                        config.cases,
                        e.0,
                        __proptest_inputs,
                    );
                }
            }
        }
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(a in 0u64..100, b in 3u32..13, c in -4i64..=4) {
            prop_assert!(a < 100);
            prop_assert!((3..13).contains(&b));
            prop_assert!((-4..=4).contains(&c));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(any::<u64>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn map_applies(x in (1u64..50).prop_map(|v| v * 2)) {
            prop_assert!(x % 2 == 0 && (2..100).contains(&x));
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn assume_skips(x in 0u64..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn deterministic_between_runs() {
        use crate::__rt::{seed_for, StdRng};
        use crate::Strategy;
        use rand::SeedableRng;
        let s = crate::prop::collection::vec(crate::any::<u64>(), 0..6);
        let a: Vec<Vec<u64>> = (0..5)
            .map(|c| s.generate(&mut StdRng::seed_from_u64(seed_for("t", c))))
            .collect();
        let b: Vec<Vec<u64>> = (0..5)
            .map(|c| s.generate(&mut StdRng::seed_from_u64(seed_for("t", c))))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(5))]
            #[allow(unused)]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x too small");
            }
        }
        always_fails();
    }
}
