//! Homomorphic evaluation of a Rasta-style cipher — §III-A's "evaluation
//! of low-complexity block cipher such as Rasta \[25\] on ciphertext".
//!
//! The transciphering use case: a client encrypts its data with a cheap
//! symmetric cipher and uploads the *FV-encrypted symmetric key*; the
//! cloud homomorphically evaluates the cipher's keystream to convert the
//! data into FV ciphertexts without ever decrypting. Rasta fits because
//! its only nonlinear element is the χ-layer, one AND-depth per round —
//! `r` rounds consume exactly `r` of the paper's 4 multiplicative levels.
//!
//! This is a *toy-sized* Rasta (small block, few rounds) exercising the
//! real structure: random invertible affine layers over GF(2) derived
//! from a nonce, χ-rounds, and a final affine layer plus feed-forward.

use hefv_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Public per-nonce parameters of the toy Rasta instance.
#[derive(Debug, Clone)]
pub struct ToyRasta {
    /// Block size in bits (odd, ≥ 3, for an invertible χ).
    pub block: usize,
    /// Number of χ rounds (= multiplicative depth used).
    pub rounds: usize,
    /// One invertible GF(2) matrix per affine layer (`rounds + 1` of them).
    matrices: Vec<Vec<Vec<u8>>>,
    /// Round constants.
    constants: Vec<Vec<u8>>,
}

impl ToyRasta {
    /// Derives an instance from a nonce (the affine layers are public and
    /// nonce-dependent, as in Rasta).
    ///
    /// # Panics
    ///
    /// Panics if `block` is even or < 3, or `rounds` is 0.
    pub fn new(block: usize, rounds: usize, nonce: u64) -> Self {
        assert!(block >= 3 && block % 2 == 1, "χ needs an odd block ≥ 3");
        assert!(rounds >= 1, "at least one round");
        let mut rng = StdRng::seed_from_u64(nonce);
        let matrices = (0..=rounds)
            .map(|_| random_invertible_matrix(block, &mut rng))
            .collect();
        let constants = (0..=rounds)
            .map(|_| (0..block).map(|_| rng.gen_range(0..2u8)).collect())
            .collect();
        ToyRasta {
            block,
            rounds,
            matrices,
            constants,
        }
    }

    /// Plaintext reference: the keystream block for `key`.
    ///
    /// # Panics
    ///
    /// Panics if the key length differs from the block size.
    pub fn keystream(&self, key: &[u8]) -> Vec<u8> {
        assert_eq!(key.len(), self.block, "key length");
        let mut state: Vec<u8> = key.iter().map(|&b| b & 1).collect();
        for r in 0..self.rounds {
            state = affine(&self.matrices[r], &self.constants[r], &state);
            state = chi(&state);
        }
        state = affine(
            &self.matrices[self.rounds],
            &self.constants[self.rounds],
            &state,
        );
        // Feed-forward: ⊕ key.
        state.iter().zip(key).map(|(&s, &k)| s ^ (k & 1)).collect()
    }

    /// Homomorphic evaluation: the same keystream over FV-encrypted key
    /// bits (`t = 2`).
    ///
    /// # Panics
    ///
    /// Panics if the encrypted key length differs from the block size.
    pub fn keystream_encrypted(
        &self,
        ctx: &FvContext,
        key_bits: &[Ciphertext],
        rlk: &RelinKey,
        backend: Backend,
    ) -> Vec<Ciphertext> {
        assert_eq!(key_bits.len(), self.block, "key length");
        assert_eq!(ctx.params().t, 2, "binary plaintext space required");
        let mut state: Vec<Ciphertext> = key_bits.to_vec();
        for r in 0..self.rounds {
            state = self.affine_encrypted(ctx, r, &state);
            state = chi_encrypted(ctx, &state, rlk, backend);
        }
        state = self.affine_encrypted(ctx, self.rounds, &state);
        state
            .iter()
            .zip(key_bits)
            .map(|(s, k)| add(ctx, s, k))
            .collect()
    }

    fn affine_encrypted(
        &self,
        ctx: &FvContext,
        layer: usize,
        state: &[Ciphertext],
    ) -> Vec<Ciphertext> {
        let n = ctx.params().n;
        let zero = trivial_encrypt(ctx, &Plaintext::zero(2, n));
        let one = trivial_encrypt(ctx, &Plaintext::new(vec![1], 2, n));
        (0..self.block)
            .map(|i| {
                let mut acc = if self.constants[layer][i] == 1 {
                    one.clone()
                } else {
                    zero.clone()
                };
                for (j, s) in state.iter().enumerate() {
                    if self.matrices[layer][i][j] == 1 {
                        acc = add(ctx, &acc, s);
                    }
                }
                acc
            })
            .collect()
    }
}

/// The χ transformation: `y_i = x_i ⊕ (x_{i+1} ⊕ 1)·x_{i+2}`.
fn chi(x: &[u8]) -> Vec<u8> {
    let b = x.len();
    (0..b)
        .map(|i| x[i] ^ ((x[(i + 1) % b] ^ 1) & x[(i + 2) % b]))
        .collect()
}

fn chi_encrypted(
    ctx: &FvContext,
    x: &[Ciphertext],
    rlk: &RelinKey,
    backend: Backend,
) -> Vec<Ciphertext> {
    let b = x.len();
    let one = trivial_encrypt(ctx, &Plaintext::new(vec![1], 2, ctx.params().n));
    (0..b)
        .map(|i| {
            let not_next = add(ctx, &x[(i + 1) % b], &one);
            let and = mul(ctx, &not_next, &x[(i + 2) % b], rlk, backend);
            add(ctx, &x[i], &and)
        })
        .collect()
}

fn affine(m: &[Vec<u8>], c: &[u8], x: &[u8]) -> Vec<u8> {
    (0..x.len())
        .map(|i| {
            let dot: u8 = m[i]
                .iter()
                .zip(x)
                .map(|(&a, &b)| a & b)
                .fold(0, |s, v| s ^ v);
            dot ^ c[i]
        })
        .collect()
}

/// Generates a random invertible GF(2) matrix as a product of random
/// unit-diagonal lower and upper triangular matrices (always invertible).
fn random_invertible_matrix<R: Rng + ?Sized>(b: usize, rng: &mut R) -> Vec<Vec<u8>> {
    let mut lower = vec![vec![0u8; b]; b];
    let mut upper = vec![vec![0u8; b]; b];
    for i in 0..b {
        lower[i][i] = 1;
        upper[i][i] = 1;
        for cell in lower[i].iter_mut().take(i) {
            *cell = rng.gen_range(0..2);
        }
        for cell in upper[i].iter_mut().skip(i + 1) {
            *cell = rng.gen_range(0..2);
        }
    }
    // product L·U
    let mut out = vec![vec![0u8; b]; b];
    for i in 0..b {
        for j in 0..b {
            let mut acc = 0u8;
            for (k, urow) in upper.iter().enumerate() {
                acc ^= lower[i][k] & urow[j];
            }
            out[i][j] = acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chi_is_nonlinear_and_correct() {
        assert_eq!(chi(&[0, 0, 0]), vec![0, 0, 0]);
        // x = (1,0,1): y0 = 1 ^ (0^1)&1 = 0 ; y1 = 0 ^ (1^1)&1 = 0 ;
        // y2 = 1 ^ (1^1)&0 = 1
        assert_eq!(chi(&[1, 0, 1]), vec![0, 0, 1]);
    }

    #[test]
    fn matrices_are_invertible() {
        // rank check over GF(2) by Gaussian elimination
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let b = 7;
            let m = random_invertible_matrix(b, &mut rng);
            let mut a = m.clone();
            let mut rank = 0;
            for col in 0..b {
                if let Some(p) = (rank..b).find(|&r| a[r][col] == 1) {
                    a.swap(rank, p);
                    for r in 0..b {
                        if r != rank && a[r][col] == 1 {
                            let pivot = a[rank].clone();
                            for (x, p) in a[r].iter_mut().zip(&pivot) {
                                *x ^= p;
                            }
                        }
                    }
                    rank += 1;
                }
            }
            assert_eq!(rank, b, "matrix must be full-rank");
        }
    }

    #[test]
    fn keystream_differs_across_nonces_and_keys() {
        let key = [1u8, 0, 1, 1, 0];
        let a = ToyRasta::new(5, 2, 1).keystream(&key);
        let b = ToyRasta::new(5, 2, 2).keystream(&key);
        assert_ne!(a, b, "nonce changes the keystream");
        let c = ToyRasta::new(5, 2, 1).keystream(&[0, 0, 0, 0, 0]);
        assert_ne!(a, c, "key changes the keystream");
    }

    #[test]
    fn homomorphic_keystream_matches_reference() {
        let ctx = FvContext::new(FvParams::insecure_medium()).unwrap(); // t = 2
        let mut rng = StdRng::seed_from_u64(71);
        let (sk, pk, rlk) = keygen(&ctx, &mut rng);
        let cipher = ToyRasta::new(5, 2, 0xA0A0);
        let key = [1u8, 1, 0, 1, 0];
        let enc_key: Vec<Ciphertext> = key
            .iter()
            .map(|&b| {
                encrypt(
                    &ctx,
                    &pk,
                    &Plaintext::new(vec![b as u64], 2, ctx.params().n),
                    &mut rng,
                )
            })
            .collect();
        let expect = cipher.keystream(&key);
        let got_ct = cipher.keystream_encrypted(&ctx, &enc_key, &rlk, Backend::default());
        let got: Vec<u8> = got_ct
            .iter()
            .map(|c| decrypt(&ctx, &sk, c).coeffs()[0] as u8)
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn transciphering_roundtrip() {
        // Client: data ⊕ keystream (cheap, symmetric). Cloud: homomorphic
        // keystream, then homomorphic XOR brings the data into FV.
        let ctx = FvContext::new(FvParams::insecure_medium()).unwrap();
        let mut rng = StdRng::seed_from_u64(72);
        let (sk, pk, rlk) = keygen(&ctx, &mut rng);
        let cipher = ToyRasta::new(5, 2, 7);
        let key = [0u8, 1, 1, 0, 1];
        let data = [1u8, 0, 0, 1, 1];
        let stream = cipher.keystream(&key);
        let sym_ct: Vec<u8> = data.iter().zip(&stream).map(|(&d, &s)| d ^ s).collect();

        // Cloud side: FV-encrypted key → homomorphic keystream → XOR.
        let enc_key: Vec<Ciphertext> = key
            .iter()
            .map(|&b| {
                encrypt(
                    &ctx,
                    &pk,
                    &Plaintext::new(vec![b as u64], 2, ctx.params().n),
                    &mut rng,
                )
            })
            .collect();
        let hom_stream = cipher.keystream_encrypted(&ctx, &enc_key, &rlk, Backend::default());
        let fv_data: Vec<Ciphertext> = hom_stream
            .iter()
            .zip(&sym_ct)
            .map(|(ks, &bit)| {
                let b = trivial_encrypt(&ctx, &Plaintext::new(vec![bit as u64], 2, ctx.params().n));
                add(&ctx, ks, &b)
            })
            .collect();
        let recovered: Vec<u8> = fv_data
            .iter()
            .map(|c| decrypt(&ctx, &sk, c).coeffs()[0] as u8)
            .collect();
        assert_eq!(
            recovered, data,
            "cloud now holds FV encryptions of the data"
        );
    }

    #[test]
    #[should_panic(expected = "odd block")]
    fn even_block_rejected() {
        ToyRasta::new(4, 2, 0);
    }
}
