//! Encrypted sorting — another §III-A target application ("encrypted
//! sorting").
//!
//! Works on encrypted *bits* (`t = 2`): a compare-and-swap of two encrypted
//! bits is `min = a·b`, `max = a + b − a·b` (one homomorphic multiplication
//! per comparator). A sorting network of depth `d` therefore consumes `d`
//! multiplicative levels; the classic 4-input Batcher network has three
//! comparator layers, fitting the paper's depth-4 budget with room for a
//! fresh-noise margin.

use hefv_core::prelude::*;

/// A comparator network as layers of index pairs `(i, j)` meaning
/// "place min at `i`, max at `j`".
#[derive(Debug, Clone)]
pub struct SortingNetwork {
    /// Comparator layers; comparators within one layer touch disjoint
    /// wires and cost one multiplicative level together.
    pub layers: Vec<Vec<(usize, usize)>>,
    /// Number of wires.
    pub wires: usize,
}

impl SortingNetwork {
    /// The 4-input Batcher odd-even merge network: 5 comparators in 3
    /// layers.
    pub fn batcher4() -> Self {
        SortingNetwork {
            layers: vec![vec![(0, 1), (2, 3)], vec![(0, 2), (1, 3)], vec![(1, 2)]],
            wires: 4,
        }
    }

    /// The 2-input network (a single comparator).
    pub fn pair() -> Self {
        SortingNetwork {
            layers: vec![vec![(0, 1)]],
            wires: 2,
        }
    }

    /// Multiplicative depth consumed by the network.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Validates the layer structure (wires in range, disjoint within a
    /// layer).
    ///
    /// # Errors
    ///
    /// Describes the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        for (li, layer) in self.layers.iter().enumerate() {
            let mut used = vec![false; self.wires];
            for &(i, j) in layer {
                if i >= self.wires || j >= self.wires || i == j {
                    return Err(format!("layer {li}: bad comparator ({i},{j})"));
                }
                if used[i] || used[j] {
                    return Err(format!("layer {li}: wire reuse in ({i},{j})"));
                }
                used[i] = true;
                used[j] = true;
            }
        }
        Ok(())
    }
}

/// Compare-and-swap of two encrypted bits:
/// `(min, max) = (a·b, a + b − a·b)`.
pub fn compare_swap(
    ctx: &FvContext,
    a: &Ciphertext,
    b: &Ciphertext,
    rlk: &RelinKey,
    backend: Backend,
) -> (Ciphertext, Ciphertext) {
    let prod = mul(ctx, a, b, rlk, backend);
    let maxv = sub(ctx, &add(ctx, a, b), &prod);
    (prod, maxv)
}

/// Sorts a slice of encrypted bits through the network.
///
/// # Panics
///
/// Panics if the input length differs from the network's wire count or the
/// network is malformed.
pub fn sort_bits(
    ctx: &FvContext,
    network: &SortingNetwork,
    bits: &[Ciphertext],
    rlk: &RelinKey,
    backend: Backend,
) -> Vec<Ciphertext> {
    assert_eq!(bits.len(), network.wires, "wire count mismatch");
    network.validate().expect("well-formed network");
    let mut wires: Vec<Ciphertext> = bits.to_vec();
    for layer in &network.layers {
        for &(i, j) in layer {
            let (lo, hi) = compare_swap(ctx, &wires[i], &wires[j], rlk, backend);
            wires[i] = lo;
            wires[j] = hi;
        }
    }
    wires
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (FvContext, SecretKey, PublicKey, RelinKey, StdRng) {
        let ctx = FvContext::new(FvParams::insecure_medium()).unwrap(); // t = 2
        let mut rng = StdRng::seed_from_u64(77);
        let (sk, pk, rlk) = keygen(&ctx, &mut rng);
        (ctx, sk, pk, rlk, rng)
    }

    fn enc_bit(ctx: &FvContext, pk: &PublicKey, b: u64, rng: &mut StdRng) -> Ciphertext {
        encrypt(ctx, pk, &Plaintext::new(vec![b], 2, ctx.params().n), rng)
    }

    fn dec_bit(ctx: &FvContext, sk: &SecretKey, ct: &Ciphertext) -> u64 {
        decrypt(ctx, sk, ct).coeffs()[0]
    }

    #[test]
    fn networks_validate() {
        assert!(SortingNetwork::batcher4().validate().is_ok());
        assert!(SortingNetwork::pair().validate().is_ok());
        assert_eq!(SortingNetwork::batcher4().depth(), 3);
    }

    #[test]
    fn malformed_network_rejected() {
        let bad = SortingNetwork {
            layers: vec![vec![(0, 1), (1, 2)]],
            wires: 3,
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn compare_swap_truth_table() {
        let (ctx, sk, pk, rlk, mut rng) = setup();
        for (a, b) in [(0u64, 0u64), (0, 1), (1, 0), (1, 1)] {
            let ca = enc_bit(&ctx, &pk, a, &mut rng);
            let cb = enc_bit(&ctx, &pk, b, &mut rng);
            let (lo, hi) = compare_swap(&ctx, &ca, &cb, &rlk, Backend::default());
            assert_eq!(dec_bit(&ctx, &sk, &lo), a.min(b), "min({a},{b})");
            assert_eq!(dec_bit(&ctx, &sk, &hi), a.max(b), "max({a},{b})");
        }
    }

    #[test]
    fn batcher4_sorts_every_input() {
        let (ctx, sk, pk, rlk, mut rng) = setup();
        let net = SortingNetwork::batcher4();
        for pattern in 0..16u64 {
            let bits: Vec<Ciphertext> = (0..4)
                .map(|i| enc_bit(&ctx, &pk, (pattern >> i) & 1, &mut rng))
                .collect();
            let sorted = sort_bits(&ctx, &net, &bits, &rlk, Backend::default());
            let got: Vec<u64> = sorted.iter().map(|c| dec_bit(&ctx, &sk, c)).collect();
            let mut expect: Vec<u64> = (0..4).map(|i| (pattern >> i) & 1).collect();
            expect.sort_unstable();
            assert_eq!(got, expect, "pattern {pattern:04b}");
        }
    }
}
