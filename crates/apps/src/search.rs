//! Encrypted table search (private information retrieval by equality) —
//! one of the paper's target applications: "private information retrieval
//! or encrypted search in a table of 2^16 entries" (§III-A).
//!
//! The client encrypts the *bits* of its query key. The server holds a
//! plaintext table of `(key, value)` records packed one per slot. For each
//! key bit `b`, the server computes the encrypted bit-equality
//! `eq_b = 1 − (q_b − d_b)²` (one squaring), then multiplies the per-bit
//! equalities together in a balanced tree — `log2(bits)` more levels — and
//! finally masks the value column with the match indicator. The client
//! decrypts a vector that is zero everywhere except the matching slot,
//! which holds the value.
//!
//! Total depth: `1 + log2(bits)` multiplications — 3 for 4-bit keys,
//! exactly the regime the paper's depth-4 parameters target.

use hefv_core::prelude::*;

/// A plaintext `(key, value)` table held by the server, one record per
/// slot.
#[derive(Debug, Clone)]
pub struct Table {
    /// Record keys (each below `2^key_bits`).
    pub keys: Vec<u64>,
    /// Record values.
    pub values: Vec<u64>,
    /// Key width in bits.
    pub key_bits: usize,
}

impl Table {
    /// Builds a table.
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch or a key overflows `key_bits`.
    pub fn new(keys: Vec<u64>, values: Vec<u64>, key_bits: usize) -> Self {
        assert_eq!(keys.len(), values.len(), "ragged table");
        assert!((1..=16).contains(&key_bits));
        assert!(keys.iter().all(|&k| k < 1 << key_bits), "key overflow");
        Table {
            keys,
            values,
            key_bits,
        }
    }
}

/// The client's encrypted query: one ciphertext per key bit, each bit
/// broadcast across all slots.
pub struct EncryptedQuery {
    /// Bit ciphertexts, LSB first.
    pub bits: Vec<Ciphertext>,
}

/// Encrypts a query key bit-by-bit (client side).
pub fn encrypt_query<R: rand::Rng + ?Sized>(
    ctx: &FvContext,
    enc: &BatchEncoder,
    pk: &PublicKey,
    key: u64,
    key_bits: usize,
    rng: &mut R,
) -> EncryptedQuery {
    let bits = (0..key_bits)
        .map(|b| {
            let bit = (key >> b) & 1;
            let pt = enc.encode(&vec![bit; enc.slots()]);
            encrypt(ctx, pk, &pt, rng)
        })
        .collect();
    EncryptedQuery { bits }
}

/// Server-side search: returns the encrypted masked value column.
pub fn search(
    ctx: &FvContext,
    enc: &BatchEncoder,
    table: &Table,
    query: &EncryptedQuery,
    rlk: &RelinKey,
    backend: Backend,
) -> Ciphertext {
    assert_eq!(query.bits.len(), table.key_bits, "query width mismatch");
    let ones = enc.encode(&vec![1; enc.slots()]);

    // Per-bit equality: eq_b = 1 − (q_b − d_b)².
    let mut eqs: Vec<Ciphertext> = Vec::with_capacity(table.key_bits);
    for b in 0..table.key_bits {
        let db: Vec<u64> = table.keys.iter().map(|&k| (k >> b) & 1).collect();
        let d_pt = enc.encode(&db);
        // q_b − d_b  (plaintext subtraction realized as add of negation)
        let diff = sub(ctx, &query.bits[b], &trivial_encrypt(ctx, &d_pt));
        let sq = mul(ctx, &diff, &diff, rlk, backend);
        eqs.push(sub(ctx, &trivial_encrypt(ctx, &ones), &sq));
    }

    // Balanced product tree over the bit equalities.
    while eqs.len() > 1 {
        let mut next = Vec::with_capacity(eqs.len().div_ceil(2));
        let mut iter = eqs.chunks(2);
        for pair in &mut iter {
            if pair.len() == 2 {
                next.push(mul(ctx, &pair[0], &pair[1], rlk, backend));
            } else {
                next.push(pair[0].clone());
            }
        }
        eqs = next;
    }
    let indicator = eqs.pop().expect("at least one bit");

    // Mask the value column.
    let values = enc.encode(&table.values);
    mul_plain(ctx, &indicator, &values)
}

/// Client-side extraction: decrypt and return `(slot, value)` of the
/// single nonzero entry, or `None` when the key was absent.
pub fn extract(enc: &BatchEncoder, pt: &Plaintext, records: usize) -> Option<(usize, u64)> {
    let slots = enc.decode(pt);
    slots
        .iter()
        .take(records)
        .enumerate()
        .find(|&(_, &v)| v != 0)
        .map(|(i, &v)| (i, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (
        FvContext,
        BatchEncoder,
        SecretKey,
        PublicKey,
        RelinKey,
        StdRng,
    ) {
        let mut params = FvParams::insecure_medium();
        params.t = 7681; // prime, 7680 = 30·256 ≡ 0 mod 512 ✓ batching-capable
        let ctx = FvContext::new(params).unwrap();
        let enc = BatchEncoder::new(7681, ctx.params().n).unwrap();
        let mut rng = StdRng::seed_from_u64(31);
        let (sk, pk, rlk) = keygen(&ctx, &mut rng);
        (ctx, enc, sk, pk, rlk, rng)
    }

    #[test]
    fn finds_the_matching_record() {
        let (ctx, enc, sk, pk, rlk, mut rng) = setup();
        let keys: Vec<u64> = (0..16).collect();
        let values: Vec<u64> = keys.iter().map(|k| 100 + k * 11).collect();
        let table = Table::new(keys, values, 4);
        let q = encrypt_query(&ctx, &enc, &pk, 13, 4, &mut rng);
        let masked = search(&ctx, &enc, &table, &q, &rlk, Backend::default());
        let pt = decrypt(&ctx, &sk, &masked);
        let (slot, value) = extract(&enc, &pt, 16).expect("key 13 present");
        assert_eq!(slot, 13);
        assert_eq!(value, 100 + 13 * 11);
    }

    #[test]
    fn absent_key_returns_none() {
        let (ctx, enc, sk, pk, rlk, mut rng) = setup();
        let table = Table::new(vec![1, 2, 3], vec![10, 20, 30], 4);
        let q = encrypt_query(&ctx, &enc, &pk, 9, 4, &mut rng);
        let masked = search(&ctx, &enc, &table, &q, &rlk, Backend::default());
        let pt = decrypt(&ctx, &sk, &masked);
        assert_eq!(extract(&enc, &pt, 3), None);
    }

    #[test]
    #[should_panic(expected = "key overflow")]
    fn rejects_wide_keys() {
        Table::new(vec![16], vec![1], 4);
    }
}
