//! The cloud service architecture of Fig. 11, running on
//! `hefv_engine::router::ShardRouter`.
//!
//! Earlier revisions of this module owned a bespoke dispatcher and worker
//! threads, then a single `Engine`; it is now a thin adapter over the
//! shard router, which adds consistent-hash tenant placement, per-job
//! Traditional-vs-HPS datapath dispatch (`Backend::Auto`), cost-aware
//! scheduling, per-tenant key isolation and fleet telemetry. The public
//! surface (requests over the §V-D wire format, per-response worker id
//! and simulated coprocessor cost) is unchanged.

use hefv_core::context::FvContext;
use hefv_core::encrypt::Ciphertext;
use hefv_core::eval::Backend;
use hefv_core::keys::RelinKey;
use hefv_core::wire::{decode_ciphertext, encode_ciphertext};
use hefv_engine::{EngineConfig, EvalOp, EvalRequest, ShardRouter, ShardSpec, TenantKeys};
use hefv_net::{NetServer, ServerConfig};
use std::net::ToSocketAddrs;
use std::sync::mpsc::{channel, Receiver};
use std::sync::Arc;

/// The tenant id the single-tenant cloud façade registers its key under.
const CLOUD_TENANT: u64 = 0;

/// A homomorphic request, as it arrives from the network.
#[derive(Debug, Clone)]
pub enum Request {
    /// Homomorphic addition of two wire-format ciphertexts.
    Add(Vec<u8>, Vec<u8>),
    /// Homomorphic multiplication of two wire-format ciphertexts.
    Mult(Vec<u8>, Vec<u8>),
}

/// A completed response: the result ciphertext plus the simulated
/// hardware cost of producing it.
#[derive(Debug, Clone)]
pub struct Response {
    /// Wire-format result ciphertext.
    pub bytes: Vec<u8>,
    /// Which engine worker executed it.
    pub worker: usize,
    /// Simulated coprocessor time, µs (excluding transfers).
    pub coproc_us: f64,
}

/// The cloud server: an engine shard behind the Fig. 11 API, fronted by
/// the shard router so more parameter sets / datapath policies can join
/// the fleet without touching this layer.
pub struct CloudServer {
    ctx: Arc<FvContext>,
    router: Arc<ShardRouter>,
    workers: usize,
}

impl CloudServer {
    /// Spawns the server with `workers` engine workers (the paper places
    /// two coprocessors) sharing one evaluation context and
    /// relinearization key. The shard runs `Backend::Auto`, so each job
    /// executes on whichever Lift/Scale datapath the paper's cycle model
    /// prices cheaper.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn start(ctx: Arc<FvContext>, rlk: Arc<RelinKey>, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        let router = ShardRouter::new();
        router
            .add_shard(ShardSpec {
                name: "cloud-0".into(),
                ctx: Arc::clone(&ctx),
                config: EngineConfig {
                    workers,
                    threads_per_job: 1,
                    queue_capacity: 128,
                    backend: Backend::Auto,
                    ..EngineConfig::default()
                },
            })
            .expect("fresh router has shard ids available");
        router
            .register_tenant(
                CLOUD_TENANT,
                TenantKeys {
                    pk: None,
                    rlk: Some(rlk),
                    galois: None,
                },
            )
            .expect("router has a shard");
        CloudServer {
            ctx,
            router: Arc::new(router),
            workers,
        }
    }

    /// Serves this cloud server's router over TCP: clients connect with
    /// `hefv_net::Client` and speak length-prefixed `HEVQ`/`HEVP` frames
    /// (tenant 0 holds the server's relinearization key). Bind to port 0
    /// for an ephemeral port; the returned front-end shuts down
    /// independently of the server itself.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from bind.
    pub fn serve(&self, addr: impl ToSocketAddrs) -> std::io::Result<NetServer> {
        NetServer::bind(addr, Arc::clone(&self.router), ServerConfig::default())
    }

    fn to_eval_request(&self, request: &Request) -> Result<EvalRequest, String> {
        let (a_bytes, b_bytes, op): (_, _, fn(_, _) -> EvalOp) = match request {
            Request::Add(a, b) => (a, b, EvalOp::Add),
            Request::Mult(a, b) => (a, b, EvalOp::Mul),
        };
        let a = decode_ciphertext(&self.ctx, a_bytes).map_err(String::from)?;
        let b = decode_ciphertext(&self.ctx, b_bytes).map_err(String::from)?;
        Ok(EvalRequest::binary(CLOUD_TENANT, op, a, b))
    }

    /// Submits a request; returns a receiver for the response.
    pub fn submit(&self, request: Request) -> Receiver<Result<Response, String>> {
        let (tx, rx) = channel();
        match self.to_eval_request(&request) {
            Ok(req) => {
                let sent = self.router.submit_with_callback(req, move |outcome| {
                    let _ = tx.send(
                        outcome
                            .map(|resp| Response {
                                bytes: encode_ciphertext(&resp.result),
                                worker: resp.report.worker as usize,
                                coproc_us: resp.report.est_cost_us,
                            })
                            .map_err(String::from),
                    );
                });
                if let Err(e) = sent {
                    // The callback (and tx with it) was dropped unused; a
                    // fresh channel carries the submission error instead.
                    let (tx2, rx2) = channel();
                    let _ = tx2.send(Err(String::from(e)));
                    return rx2;
                }
            }
            Err(e) => {
                let _ = tx.send(Err(e));
            }
        }
        rx
    }

    /// Convenience: submit and wait.
    ///
    /// # Errors
    ///
    /// Propagates decode/execution errors from the engine.
    pub fn call(&self, request: Request) -> Result<Response, String> {
        self.submit(request)
            .recv()
            .map_err(|_| "server stopped".to_string())?
    }

    /// Number of engine workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Total simulated coprocessor busy time so far, µs.
    pub fn simulated_busy_us(&self) -> f64 {
        self.router.stats().total.sim_cost_us
    }

    /// The underlying shard router (stats, placement, pinning, batching).
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// The Prometheus-text metrics exposition of this server's fleet —
    /// the same body the TCP front-end serves for a `HEVS` metrics
    /// scrape, minus the transport counters.
    pub fn prometheus(&self) -> String {
        hefv_engine::render_prometheus(&self.router.stats())
    }

    /// Shuts the server down, joining the worker threads.
    pub fn shutdown(self) {
        self.router.shutdown();
    }
}

/// Client-side helpers: encode locally encrypted data for the server.
pub mod client {
    use super::*;

    /// Packs two ciphertexts into a `Mult` request.
    pub fn mult_request(a: &Ciphertext, b: &Ciphertext) -> Request {
        Request::Mult(encode_ciphertext(a), encode_ciphertext(b))
    }

    /// Packs two ciphertexts into an `Add` request.
    pub fn add_request(a: &Ciphertext, b: &Ciphertext) -> Request {
        Request::Add(encode_ciphertext(a), encode_ciphertext(b))
    }

    /// Unpacks a response ciphertext.
    ///
    /// # Errors
    ///
    /// Propagates wire-format errors.
    pub fn unpack(ctx: &FvContext, r: &Response) -> Result<Ciphertext, String> {
        decode_ciphertext(ctx, &r.bytes).map_err(String::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hefv_core::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Arc<FvContext>, SecretKey, PublicKey, Arc<RelinKey>, StdRng) {
        let ctx = FvContext::new(FvParams::insecure_toy()).unwrap();
        let mut rng = StdRng::seed_from_u64(61);
        let (sk, pk, rlk) = keygen(&ctx, &mut rng);
        (Arc::new(ctx), sk, pk, Arc::new(rlk), rng)
    }

    #[test]
    fn server_computes_correct_results() {
        let (ctx, sk, pk, rlk, mut rng) = setup();
        let server = CloudServer::start(Arc::clone(&ctx), rlk, 2);
        let t = ctx.params().t;
        let n = ctx.params().n;
        let ca = encrypt(&ctx, &pk, &Plaintext::new(vec![3], t, n), &mut rng);
        let cb = encrypt(&ctx, &pk, &Plaintext::new(vec![5], t, n), &mut rng);

        let prod = server.call(client::mult_request(&ca, &cb)).unwrap();
        let sum = server.call(client::add_request(&ca, &cb)).unwrap();
        let prod_ct = client::unpack(&ctx, &prod).unwrap();
        let sum_ct = client::unpack(&ctx, &sum).unwrap();
        assert_eq!(decrypt(&ctx, &sk, &prod_ct).coeffs()[0], 15);
        assert_eq!(decrypt(&ctx, &sk, &sum_ct).coeffs()[0], 8);
        assert!(prod.coproc_us > sum.coproc_us, "Mult costs more than Add");
        server.shutdown();
    }

    #[test]
    fn concurrent_requests_spread_over_both_workers() {
        let (ctx, sk, pk, rlk, mut rng) = setup();
        let server = CloudServer::start(Arc::clone(&ctx), rlk, 2);
        let t = ctx.params().t;
        let n = ctx.params().n;
        let cts: Vec<Ciphertext> = (1..=8u64)
            .map(|v| encrypt(&ctx, &pk, &Plaintext::new(vec![v % t], t, n), &mut rng))
            .collect();
        // Fire all requests first, then collect.
        let pending: Vec<_> = cts
            .iter()
            .map(|ct| (ct, server.submit(client::mult_request(ct, ct))))
            .collect();
        let mut workers_seen = std::collections::HashSet::new();
        for (ct, rx) in pending {
            let resp = rx.recv().unwrap().unwrap();
            workers_seen.insert(resp.worker);
            let out = client::unpack(&ctx, &resp).unwrap();
            let expect = decrypt(&ctx, &sk, ct).coeffs()[0].pow(2) % t;
            assert_eq!(decrypt(&ctx, &sk, &out).coeffs()[0], expect);
        }
        assert_eq!(workers_seen.len(), 2, "both workers used");
        assert!(server.simulated_busy_us() > 0.0);
        server.shutdown();
    }

    #[test]
    fn malformed_request_is_rejected_not_fatal() {
        let (ctx, _, pk, rlk, mut rng) = setup();
        let server = CloudServer::start(Arc::clone(&ctx), rlk, 1);
        let garbage = Request::Add(vec![1, 2, 3], vec![4, 5, 6]);
        assert!(server.call(garbage).is_err());
        // The server must still serve well-formed requests afterwards.
        let t = ctx.params().t;
        let n = ctx.params().n;
        let ca = encrypt(&ctx, &pk, &Plaintext::new(vec![1], t, n), &mut rng);
        assert!(server.call(client::add_request(&ca, &ca)).is_ok());
        server.shutdown();
    }

    #[test]
    fn tcp_front_end_serves_wire_requests() {
        use hefv_engine::wire;
        let (ctx, sk, pk, rlk, mut rng) = setup();
        let server = CloudServer::start(Arc::clone(&ctx), rlk, 2);
        let net = server.serve("127.0.0.1:0").unwrap();
        let mut client = hefv_net::Client::connect(net.local_addr()).unwrap();
        let t = ctx.params().t;
        let n = ctx.params().n;
        let enc = |v, rng: &mut StdRng| encrypt(&ctx, &pk, &Plaintext::new(vec![v], t, n), rng);
        // Pipeline a product and a sum on the single-tenant wire seam.
        let req_mul = EvalRequest::binary(0, EvalOp::Mul, enc(3, &mut rng), enc(5, &mut rng));
        let req_add = EvalRequest::binary(0, EvalOp::Add, enc(3, &mut rng), enc(5, &mut rng));
        let c_mul = client.send_frame(&wire::encode_request(&req_mul)).unwrap();
        let c_add = client.send_frame(&wire::encode_request(&req_add)).unwrap();
        for (corr, expect) in [(c_mul, 15), (c_add, 8)] {
            let reply = client.recv_reply_for(corr).unwrap();
            match wire::decode_response(&ctx, &reply).unwrap() {
                wire::ResponseFrame::Ok(resp) => {
                    assert_eq!(decrypt(&ctx, &sk, &resp.result).coeffs()[0], expect);
                }
                wire::ResponseFrame::Err { message, .. } => panic!("{message}"),
            }
        }
        net.shutdown();
        server.shutdown();
    }

    #[test]
    fn router_stats_visible_through_server() {
        let (ctx, _, pk, rlk, mut rng) = setup();
        let server = CloudServer::start(Arc::clone(&ctx), rlk, 1);
        let t = ctx.params().t;
        let n = ctx.params().n;
        let ca = encrypt(&ctx, &pk, &Plaintext::new(vec![2], t, n), &mut rng);
        server.call(client::mult_request(&ca, &ca)).unwrap();
        let stats = server.router().stats();
        assert_eq!(stats.total.jobs_completed, 1);
        assert_eq!(stats.per_shard.len(), 1);
        assert_eq!(stats.per_shard[0].name, "cloud-0");
        assert!(stats
            .total
            .per_op
            .iter()
            .any(|o| o.name == "mul" && o.count == 1));
        // Auto dispatch ran the job on exactly one concrete datapath.
        assert_eq!(stats.total.jobs_traditional + stats.total.jobs_hps, 1);
        server.shutdown();
    }
}
