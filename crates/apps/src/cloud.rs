//! The cloud service architecture of Fig. 11: a server with two
//! coprocessor workers fed by a dispatcher (the paper's "Networking Arm
//! Core"), and a thin client that ships ciphertexts over the wire format.
//!
//! The workers run on real threads; each executes requests *functionally*
//! (bit-exact FV arithmetic) and reports the simulated coprocessor timing,
//! so the server can account the platform's throughput the way §VI-A
//! measures it.

use crossbeam::channel::{bounded, Receiver, Sender};
use hefv_core::context::FvContext;
use hefv_core::encrypt::Ciphertext;
use hefv_core::keys::RelinKey;
use hefv_core::wire::{decode_ciphertext, encode_ciphertext};
use hefv_sim::coproc::Coprocessor;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A homomorphic request, as it arrives from the network.
#[derive(Debug, Clone)]
pub enum Request {
    /// Homomorphic addition of two wire-format ciphertexts.
    Add(Vec<u8>, Vec<u8>),
    /// Homomorphic multiplication of two wire-format ciphertexts.
    Mult(Vec<u8>, Vec<u8>),
}

/// A completed response: the result ciphertext plus the simulated
/// hardware cost of producing it.
#[derive(Debug, Clone)]
pub struct Response {
    /// Wire-format result ciphertext.
    pub bytes: Vec<u8>,
    /// Which coprocessor executed it.
    pub worker: usize,
    /// Simulated coprocessor time, µs (excluding transfers).
    pub coproc_us: f64,
}

struct Job {
    request: Request,
    reply: Sender<Result<Response, String>>,
}

/// The cloud server: a dispatcher feeding `workers` coprocessor threads.
pub struct CloudServer {
    queue: Sender<Job>,
    handles: Vec<JoinHandle<()>>,
    /// Total simulated coprocessor busy-time, nanoseconds (µs × 1000).
    busy_ns: Arc<AtomicU64>,
    workers: usize,
}

impl CloudServer {
    /// Spawns the server with `workers` coprocessor instances (the paper
    /// places two) sharing one evaluation context and relinearization key.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn start(ctx: Arc<FvContext>, rlk: Arc<RelinKey>, workers: usize) -> Self {
        assert!(workers > 0, "need at least one coprocessor");
        let (tx, rx): (Sender<Job>, Receiver<Job>) = bounded(128);
        let busy_ns = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::with_capacity(workers);
        for worker in 0..workers {
            let rx = rx.clone();
            let ctx = Arc::clone(&ctx);
            let rlk = Arc::clone(&rlk);
            let busy = Arc::clone(&busy_ns);
            handles.push(std::thread::spawn(move || {
                let cop = Coprocessor::default();
                while let Ok(job) = rx.recv() {
                    let result = Self::execute(&cop, &ctx, &rlk, worker, &job.request);
                    if let Ok(r) = &result {
                        busy.fetch_add((r.coproc_us * 1000.0) as u64, Ordering::Relaxed);
                    }
                    let _ = job.reply.send(result);
                }
            }));
        }
        CloudServer {
            queue: tx,
            handles,
            busy_ns,
            workers,
        }
    }

    fn execute(
        cop: &Coprocessor,
        ctx: &FvContext,
        rlk: &RelinKey,
        worker: usize,
        request: &Request,
    ) -> Result<Response, String> {
        let (a_bytes, b_bytes, is_mult) = match request {
            Request::Add(a, b) => (a, b, false),
            Request::Mult(a, b) => (a, b, true),
        };
        let a = decode_ciphertext(ctx, a_bytes)?;
        let b = decode_ciphertext(ctx, b_bytes)?;
        let (out, report) = if is_mult {
            cop.execute_mult(ctx, &a, &b, rlk)
        } else {
            cop.execute_add(ctx, &a, &b)
        };
        Ok(Response {
            bytes: encode_ciphertext(&out),
            worker,
            coproc_us: report.total_us,
        })
    }

    /// Submits a request; returns a receiver for the response.
    pub fn submit(&self, request: Request) -> Receiver<Result<Response, String>> {
        let (tx, rx) = bounded(1);
        self.queue
            .send(Job { request, reply: tx })
            .expect("server accepting requests");
        rx
    }

    /// Convenience: submit and wait.
    ///
    /// # Errors
    ///
    /// Propagates decode/execution errors from the worker.
    pub fn call(&self, request: Request) -> Result<Response, String> {
        self.submit(request)
            .recv()
            .map_err(|_| "server stopped".to_string())?
    }

    /// Number of coprocessor workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Total simulated coprocessor busy time so far, µs.
    pub fn simulated_busy_us(&self) -> f64 {
        self.busy_ns.load(Ordering::Relaxed) as f64 / 1000.0
    }

    /// Shuts the server down, joining the worker threads.
    pub fn shutdown(self) {
        drop(self.queue);
        for h in self.handles {
            let _ = h.join();
        }
    }
}

/// Client-side helpers: encode locally encrypted data for the server.
pub mod client {
    use super::*;

    /// Packs two ciphertexts into a `Mult` request.
    pub fn mult_request(a: &Ciphertext, b: &Ciphertext) -> Request {
        Request::Mult(encode_ciphertext(a), encode_ciphertext(b))
    }

    /// Packs two ciphertexts into an `Add` request.
    pub fn add_request(a: &Ciphertext, b: &Ciphertext) -> Request {
        Request::Add(encode_ciphertext(a), encode_ciphertext(b))
    }

    /// Unpacks a response ciphertext.
    ///
    /// # Errors
    ///
    /// Propagates wire-format errors.
    pub fn unpack(ctx: &FvContext, r: &Response) -> Result<Ciphertext, String> {
        decode_ciphertext(ctx, &r.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hefv_core::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Arc<FvContext>, SecretKey, PublicKey, Arc<RelinKey>, StdRng) {
        let ctx = FvContext::new(FvParams::insecure_toy()).unwrap();
        let mut rng = StdRng::seed_from_u64(61);
        let (sk, pk, rlk) = keygen(&ctx, &mut rng);
        (Arc::new(ctx), sk, pk, Arc::new(rlk), rng)
    }

    #[test]
    fn server_computes_correct_results() {
        let (ctx, sk, pk, rlk, mut rng) = setup();
        let server = CloudServer::start(Arc::clone(&ctx), rlk, 2);
        let t = ctx.params().t;
        let n = ctx.params().n;
        let ca = encrypt(&ctx, &pk, &Plaintext::new(vec![3], t, n), &mut rng);
        let cb = encrypt(&ctx, &pk, &Plaintext::new(vec![5], t, n), &mut rng);

        let prod = server.call(client::mult_request(&ca, &cb)).unwrap();
        let sum = server.call(client::add_request(&ca, &cb)).unwrap();
        let prod_ct = client::unpack(&ctx, &prod).unwrap();
        let sum_ct = client::unpack(&ctx, &sum).unwrap();
        assert_eq!(decrypt(&ctx, &sk, &prod_ct).coeffs()[0], 15);
        assert_eq!(decrypt(&ctx, &sk, &sum_ct).coeffs()[0], 8);
        assert!(prod.coproc_us > sum.coproc_us, "Mult costs more than Add");
        server.shutdown();
    }

    #[test]
    fn concurrent_requests_spread_over_both_workers() {
        let (ctx, sk, pk, rlk, mut rng) = setup();
        let server = CloudServer::start(Arc::clone(&ctx), rlk, 2);
        let t = ctx.params().t;
        let n = ctx.params().n;
        let cts: Vec<Ciphertext> = (1..=8u64)
            .map(|v| encrypt(&ctx, &pk, &Plaintext::new(vec![v % t], t, n), &mut rng))
            .collect();
        // Fire all requests first, then collect.
        let pending: Vec<_> = cts
            .iter()
            .map(|ct| (ct, server.submit(client::mult_request(ct, ct))))
            .collect();
        let mut workers_seen = std::collections::HashSet::new();
        for (ct, rx) in pending {
            let resp = rx.recv().unwrap().unwrap();
            workers_seen.insert(resp.worker);
            let out = client::unpack(&ctx, &resp).unwrap();
            let expect = decrypt(&ctx, &sk, ct).coeffs()[0].pow(2) % t;
            assert_eq!(decrypt(&ctx, &sk, &out).coeffs()[0], expect);
        }
        assert_eq!(workers_seen.len(), 2, "both coprocessors used");
        assert!(server.simulated_busy_us() > 0.0);
        server.shutdown();
    }

    #[test]
    fn malformed_request_is_rejected_not_fatal() {
        let (ctx, _, pk, rlk, mut rng) = setup();
        let server = CloudServer::start(Arc::clone(&ctx), rlk, 1);
        let garbage = Request::Add(vec![1, 2, 3], vec![4, 5, 6]);
        assert!(server.call(garbage).is_err());
        // The server must still serve well-formed requests afterwards.
        let t = ctx.params().t;
        let n = ctx.params().n;
        let ca = encrypt(&ctx, &pk, &Plaintext::new(vec![1], t, n), &mut rng);
        assert!(server.call(client::add_request(&ca, &ca)).is_ok());
        server.shutdown();
    }
}
