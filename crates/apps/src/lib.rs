//! # hefv-apps
//!
//! Cloud applications over the HEAT-rs FV library — the workloads the
//! paper's introduction and §III-A motivate:
//!
//! * [`meter`] — privacy-friendly smart-meter forecasting;
//! * [`search`] — encrypted table search / private information retrieval;
//! * [`sorting`] — encrypted sorting with comparator networks;
//! * [`cloud`] — the Fig. 11 client/server architecture with two
//!   coprocessor workers.
//!
//! Each application stays within the paper's multiplicative depth-4 budget
//! and is exercised end-to-end (encrypt → evaluate → decrypt → compare to
//! the plaintext reference) in its tests and in the workspace examples.

pub mod cloud;
pub mod meter;
pub mod rasta;
pub mod search;
pub mod sorting;
