//! Privacy-friendly smart-meter forecasting — the paper's motivating cloud
//! workload (§III-A, citing Bos et al. \[4\]).
//!
//! Households upload encrypted consumption readings; the (untrusted) cloud
//! computes a per-household forecast without decrypting: a weighted moving
//! average over the last three readings plus a quadratic trend-correction
//! term. One homomorphic multiplication of ciphertexts and a handful of
//! plaintext multiplications — comfortably inside the paper's depth-4
//! budget. With batching (`t = 65537`), all `n` households are processed
//! simultaneously in slots.

use hefv_core::prelude::*;
use rand::Rng;

/// The cloud-side forecaster: fixed public weights, working entirely on
/// ciphertexts.
#[derive(Debug, Clone)]
pub struct Forecaster {
    /// Weights of the moving average, scaled by `weight_denominator`.
    pub weights: [u64; 3],
    /// Trend-correction coefficient (applied to the encrypted squared
    /// difference of the last two readings).
    pub trend_coeff: u64,
}

impl Default for Forecaster {
    fn default() -> Self {
        // forecast = 4·x2 + 2·x1 + 1·x0 (in units of 1/7) + 1·(x2 − x1)²
        Forecaster {
            weights: [1, 2, 4],
            trend_coeff: 1,
        }
    }
}

impl Forecaster {
    /// Computes the encrypted forecast from three encrypted readings
    /// (oldest first). Uses one ciphertext-ciphertext multiplication.
    pub fn forecast(
        &self,
        ctx: &FvContext,
        enc: &BatchEncoder,
        readings: &[Ciphertext; 3],
        rlk: &RelinKey,
        backend: Backend,
    ) -> Ciphertext {
        let w = |i: usize| enc.encode(&vec![self.weights[i]; enc.slots()]);
        // Weighted moving average (plaintext multiplications only).
        let mut acc = mul_plain(ctx, &readings[0], &w(0));
        acc = add(ctx, &acc, &mul_plain(ctx, &readings[1], &w(1)));
        acc = add(ctx, &acc, &mul_plain(ctx, &readings[2], &w(2)));
        // Quadratic trend term: (x2 − x1)² — the homomorphic Mult.
        let diff = sub(ctx, &readings[2], &readings[1]);
        let sq = mul(ctx, &diff, &diff, rlk, backend);
        let coeff = enc.encode(&vec![self.trend_coeff; enc.slots()]);
        add(ctx, &acc, &mul_plain(ctx, &sq, &coeff))
    }

    /// The plaintext reference computation, per household.
    pub fn forecast_plain(&self, t: u64, x: [u64; 3]) -> u64 {
        let avg = self.weights[0] * x[0] + self.weights[1] * x[1] + self.weights[2] * x[2];
        let d = (x[2] + t - x[1]) % t;
        (avg + self.trend_coeff * d * d) % t
    }
}

/// Grid-level aggregation: the operator learns the *total* consumption
/// across all households without seeing any individual reading. Uses the
/// Galois slot-sum fold (`log2(n)` rotations), so the returned ciphertext
/// holds `Σ_h readings_h` in every slot.
pub fn aggregate_total(
    ctx: &FvContext,
    readings_ct: &Ciphertext,
    keys: &GaloisKeySet,
) -> Ciphertext {
    sum_slots(ctx, readings_ct, keys)
}

/// Generates synthetic household readings (kWh-scaled integers) — the
/// stand-in for the paper's real consumption traces, which are not public.
pub fn synthetic_readings<R: Rng + ?Sized>(rng: &mut R, households: usize) -> Vec<[u64; 3]> {
    (0..households)
        .map(|_| {
            let base = rng.gen_range(5..50u64);
            [
                base + rng.gen_range(0..5),
                base + rng.gen_range(0..5),
                base + rng.gen_range(0..5),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forecast_matches_plaintext_reference() {
        // A batching-capable toy set: t = 257 ≡ 1 (mod 2·64)? 257-1 = 256
        // = 4·64 ✓ prime.
        let mut params = FvParams::insecure_toy();
        params.t = 257;
        let ctx = FvContext::new(params).unwrap();
        let enc = BatchEncoder::new(257, ctx.params().n).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let (sk, pk, rlk) = keygen(&ctx, &mut rng);

        let households = enc.slots();
        let readings = synthetic_readings(&mut rng, households);
        // transpose into three slot vectors, encrypt each epoch
        let mut epoch = |i: usize| -> Ciphertext {
            let vals: Vec<u64> = readings.iter().map(|r| r[i] % 257).collect();
            encrypt(&ctx, &pk, &enc.encode(&vals), &mut rng)
        };
        let cts = [epoch(0), epoch(1), epoch(2)];

        let f = Forecaster::default();
        let result = f.forecast(&ctx, &enc, &cts, &rlk, Backend::default());
        let slots = enc.decode(&decrypt(&ctx, &sk, &result));
        for (h, r) in readings.iter().enumerate() {
            assert_eq!(
                slots[h],
                f.forecast_plain(257, [r[0] % 257, r[1] % 257, r[2] % 257]),
                "household {h}"
            );
        }
    }

    #[test]
    fn aggregation_reveals_only_the_total() {
        let mut params = FvParams::insecure_medium();
        params.t = 7681;
        let ctx = FvContext::new(params).unwrap();
        let enc = BatchEncoder::new(7681, ctx.params().n).unwrap();
        let mut rng = StdRng::seed_from_u64(22);
        let (sk, pk, _) = keygen(&ctx, &mut rng);
        let keys = GaloisKeySet::for_slot_sum(&ctx, &sk, &mut rng);

        let readings: Vec<u64> = (0..enc.slots() as u64).map(|h| 5 + h % 20).collect();
        let total: u64 = readings.iter().sum::<u64>() % 7681;
        let ct = encrypt(&ctx, &pk, &enc.encode(&readings), &mut rng);
        let agg = aggregate_total(&ctx, &ct, &keys);
        let slots = enc.decode(&decrypt(&ctx, &sk, &agg));
        assert!(slots.iter().all(|&s| s == total), "every slot = grid total");
    }

    #[test]
    fn synthetic_readings_in_plausible_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let rs = synthetic_readings(&mut rng, 100);
        assert_eq!(rs.len(), 100);
        assert!(rs.iter().flatten().all(|&x| (5..55).contains(&x)));
    }
}
