//! Deterministic end-to-end corruption test: with `corrupt:P` fault
//! injection flipping bits in front→node envelopes, every corrupted
//! frame must be caught by the CRC trailer and refused with
//! `IntegrityFailure` — and the retry machinery must still deliver every
//! job exactly once with a bit-exact result. Zero silently-wrong
//! replies, ever.
//!
//! This file is its own test binary, so setting `HEFV_NET_FAULT` here
//! (before the first `TcpConnector::connect`) is what arms the
//! process-wide fault plan — it cannot race the other net tests.

use hefv_core::prelude::*;
use hefv_engine::prelude::*;
use hefv_engine::router::{RemoteShardSpec, RouterConfig, ShardSpec};
use hefv_engine::wire;
use hefv_net::{Client, NetServer, ServerConfig, TcpConnector};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

const FRAMES: u64 = 200;

#[test]
fn every_injected_corruption_is_caught_and_retried() {
    // Armed before any connector exists; the per-connection RNG streams
    // are seeded from a fixed process counter, so the corruption
    // pattern is deterministic for this binary.
    std::env::set_var("HEFV_NET_FAULT", "corrupt:0.05");

    let ctx = Arc::new(FvContext::new(FvParams::insecure_toy()).unwrap());
    let (t, n) = (ctx.params().t, ctx.params().n);

    // One node behind TCP…
    let node = Arc::new(ShardRouter::new());
    node.add_shard(ShardSpec {
        name: "node0-s0".into(),
        ctx: Arc::clone(&ctx),
        config: EngineConfig {
            workers: 2,
            threads_per_job: 1,
            queue_capacity: 256,
            ..EngineConfig::default()
        },
    })
    .unwrap();
    let node_server = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&node),
        ServerConfig {
            max_inflight: 256,
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // …behind a front whose only shard is that node's RemoteShard: the
    // front→node link is exactly the fault-injected data path.
    let front = Arc::new(ShardRouter::with_config(RouterConfig {
        key_replicas: 1,
        hedge: None,
        ..RouterConfig::default()
    }));
    front
        .add_remote_shard(RemoteShardSpec {
            name: "node0".into(),
            ctx: Arc::clone(&ctx),
            connector: Arc::new(TcpConnector::new(node_server.local_addr())),
            config: RemoteShardConfig {
                connections: 2,
                max_inflight: 256,
                // Short reply timeout: a refusal that came back under a
                // corrupted correlation id is dropped as unknown, and
                // the sweep re-sends the original after this long.
                reply_timeout: Duration::from_millis(500),
                probe_interval: Duration::from_millis(100),
                probe_timeout: Duration::from_millis(300),
                eject_after: 8,
                // Generous re-send budget: at corrupt:0.05 the chance of
                // one frame burning 12 attempts is ~0.05^12.
                send_attempts: 12,
                reconnect_backoff: Duration::from_millis(50),
            },
        })
        .unwrap();
    let front_server = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&front),
        ServerConfig {
            max_inflight: 64,
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // Key registration crosses the same lossy link (acked HEVK push).
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    let (sk, pk, rlk) = keygen(&ctx, &mut rng);
    let tenant = 0xF1u64;
    front
        .register_tenant(tenant, TenantKeys::compute(pk.clone(), rlk))
        .unwrap();

    // Plain-client traffic to the front door is exempt from injection;
    // every corruption happens on the front→node hop.
    let mut client = Client::connect(front_server.local_addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut expected = HashMap::new();
    for f in 0..FRAMES {
        let (a, b) = (f % t, (5 * f + 3) % t);
        let enc = |v, rng: &mut StdRng| encrypt(&ctx, &pk, &Plaintext::new(vec![v], t, n), rng);
        let req = EvalRequest::binary(tenant, EvalOp::Add, enc(a, &mut rng), enc(b, &mut rng));
        let corr = client.send_frame(&wire::encode_request(&req)).unwrap();
        expected.insert(corr, (a + b) % t);
    }
    client.finish_sending().unwrap();

    // Exactly once, bit-exact, through every injected corruption.
    let mut seen = HashSet::new();
    for _ in 0..FRAMES {
        let (corr, reply) = client.recv_reply().unwrap();
        assert!(seen.insert(corr), "duplicate reply for corr {corr}");
        let want = expected[&corr];
        match wire::decode_response(&ctx, &reply).unwrap() {
            wire::ResponseFrame::Ok(resp) => {
                let got = decrypt(&ctx, &sk, &resp.result).coeffs()[0];
                assert_eq!(
                    got, want,
                    "corr {corr} decrypted wrong — corruption got through"
                );
            }
            wire::ResponseFrame::Err { message, .. } => {
                panic!("corr {corr} failed instead of being retried: {message}")
            }
        }
    }
    assert_eq!(seen.len() as u64, FRAMES, "lost frames");

    // The CRC layer did real work: the node refused at least one
    // corrupted envelope (at corrupt:0.05 over 200+ frames the chance
    // of zero injections is ~1e-5, and the injection stream itself is
    // deterministic in-process)…
    let refused = node_server.stats().integrity_failures;
    assert!(
        refused > 0,
        "no envelope was refused — either injection or the CRC check is dead"
    );
    // …and every refusal was healed by a re-send, not surfaced to the
    // client (all FRAMES decrypted correctly above).
    let remote = &front.stats().remote[0].stats;
    assert!(
        remote.retries > 0,
        "refusals happened ({refused}) but nothing was ever re-sent"
    );
    println!(
        "corruption leg: {refused} envelopes refused by CRC, {} re-sends, {FRAMES}/{FRAMES} bit-exact",
        remote.retries
    );

    front_server.shutdown();
    front.shutdown();
    node_server.shutdown();
    node.shutdown();
}
