//! End-to-end TCP front-end tests: the acceptance-scale pipelined load,
//! adversarial frame segmentation, mid-stream oversized-frame rejection,
//! backpressure, and graceful shutdown with jobs in flight.

use hefv_core::prelude::*;
use hefv_engine::prelude::*;
use hefv_engine::router::ShardSpec;
use hefv_engine::wire;
use hefv_net::{envelope, Client, NetServer, ServerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet};
use std::io::{Read, Write};
use std::sync::Arc;
use std::time::Duration;

fn toy_router(shards: usize, queue_capacity: usize) -> (Arc<FvContext>, Arc<ShardRouter>) {
    toy_router_shedding(shards, queue_capacity, SheddingPolicy::default())
}

/// Like [`toy_router`] but with an explicit admission policy — the
/// shutdown tests run deliberately over-budget chains as slow filler
/// jobs, which the default noise gate would (correctly) refuse.
fn toy_router_shedding(
    shards: usize,
    queue_capacity: usize,
    shedding: SheddingPolicy,
) -> (Arc<FvContext>, Arc<ShardRouter>) {
    let ctx = Arc::new(FvContext::new(FvParams::insecure_toy()).unwrap());
    let router = Arc::new(ShardRouter::new());
    for i in 0..shards {
        router
            .add_shard(ShardSpec {
                name: format!("s{i}"),
                ctx: Arc::clone(&ctx),
                config: EngineConfig {
                    workers: 2,
                    threads_per_job: 1,
                    queue_capacity,
                    shedding: shedding.clone(),
                    ..EngineConfig::default()
                },
            })
            .unwrap();
    }
    (ctx, router)
}

struct Tenant {
    id: u64,
    home: ShardId,
    sk: SecretKey,
    pk: PublicKey,
}

fn onboard(ctx: &Arc<FvContext>, router: &ShardRouter, id: u64, seed: u64) -> Tenant {
    let mut rng = StdRng::seed_from_u64(seed);
    let (sk, pk, rlk) = keygen(ctx, &mut rng);
    let home = router
        .register_tenant(id, TenantKeys::compute(pk.clone(), rlk))
        .unwrap();
    Tenant { id, home, sk, pk }
}

fn add_frame(ctx: &Arc<FvContext>, tenant: &Tenant, a: u64, b: u64, rng: &mut StdRng) -> Vec<u8> {
    let t = ctx.params().t;
    let n = ctx.params().n;
    let enc = |v, rng: &mut StdRng| encrypt(ctx, &tenant.pk, &Plaintext::new(vec![v], t, n), rng);
    wire::encode_request(&EvalRequest::binary(
        tenant.id,
        EvalOp::Add,
        enc(a, rng),
        enc(b, rng),
    ))
}

fn expect_ok(ctx: &FvContext, sk: &SecretKey, reply: &[u8]) -> u64 {
    match wire::decode_response(ctx, reply).unwrap() {
        wire::ResponseFrame::Ok(resp) => decrypt(ctx, sk, &resp.result).coeffs()[0],
        wire::ResponseFrame::Err { message, .. } => panic!("job failed: {message}"),
    }
}

/// The acceptance test: 4 concurrent clients, each pipelining 256 frames
/// over its own connection into a 4-shard router. Every reply must come
/// back exactly once, stamped with the tenant's shard, and decrypt to
/// the right value — with no ordering deadlock between the pipelined
/// reads and writes.
#[test]
fn four_clients_pipeline_256_frames_over_four_shards() {
    const FRAMES: u64 = 256;
    let (ctx, router) = toy_router(4, 512);

    // Four tenants on four distinct shards so every shard serves load.
    let mut tenants = Vec::new();
    let mut covered = HashSet::new();
    for candidate in 1u64.. {
        if covered.insert(router.shard_for(candidate).unwrap()) {
            tenants.push(onboard(&ctx, &router, candidate, 100 + candidate));
            if tenants.len() == 4 {
                break;
            }
        }
    }

    let server = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&router),
        ServerConfig {
            max_inflight: 48,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    std::thread::scope(|scope| {
        for (i, tenant) in tenants.iter().enumerate() {
            let ctx = Arc::clone(&ctx);
            scope.spawn(move || {
                let t = ctx.params().t;
                let mut rng = StdRng::seed_from_u64(7_000 + i as u64);
                let mut client = Client::connect(addr).unwrap();
                client
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .unwrap();
                let mut expected = HashMap::new();
                for f in 0..FRAMES {
                    let (a, b) = (f % t, (3 * f + i as u64) % t);
                    let frame = add_frame(&ctx, tenant, a, b, &mut rng);
                    let corr = client.send_frame(&frame).unwrap();
                    expected.insert(corr, (a + b) % t);
                }
                let mut seen = HashSet::new();
                for _ in 0..FRAMES {
                    let (corr, reply) = client.recv_reply().unwrap();
                    assert!(seen.insert(corr), "duplicate reply for corr {corr}");
                    let stamp = wire::peek_response_shard(&reply).unwrap();
                    assert_eq!(
                        u16::from(stamp),
                        tenant.home,
                        "reply stamped with the wrong shard"
                    );
                    assert_eq!(expect_ok(&ctx, &tenant.sk, &reply), expected[&corr]);
                }
                assert_eq!(seen.len() as u64, FRAMES, "lost frames");
            });
        }
    });

    let stats = server.stats();
    assert_eq!(stats.frames_in, 4 * FRAMES);
    assert_eq!(stats.replies_out, 4 * FRAMES);
    let fleet = router.stats();
    assert_eq!(fleet.total.jobs_completed, 4 * FRAMES);
    for shard in &fleet.per_shard {
        assert!(shard.stats.jobs_completed > 0, "an idle shard");
    }
    server.shutdown();
    router.shutdown();
}

/// Frames must reassemble no matter how TCP segments them: the envelope
/// is dribbled in 1–7 byte chunks over a raw socket.
#[test]
fn frames_split_across_arbitrary_read_boundaries() {
    let (ctx, router) = toy_router(1, 64);
    let tenant = onboard(&ctx, &router, 5, 42);
    let server =
        NetServer::bind("127.0.0.1:0", Arc::clone(&router), ServerConfig::default()).unwrap();

    let mut rng = StdRng::seed_from_u64(9);
    let mut stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    for (corr, (a, b)) in [(11u64, (2u64, 3u64)), (12, (7, 8))] {
        let env = envelope::encode(corr, &add_frame(&ctx, &tenant, a, b, &mut rng));
        let mut off = 0;
        let mut step = 1;
        while off < env.len() {
            let end = (off + step).min(env.len());
            stream.write_all(&env[off..end]).unwrap();
            stream.flush().unwrap();
            off = end;
            step = step % 7 + 1; // 1..=7 byte chunks
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    // Both replies arrive, intact, over the same raw socket.
    let read_reply = |stream: &mut std::net::TcpStream| {
        let mut header = [0u8; 12];
        stream.read_exact(&mut header).unwrap();
        let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
        let corr = u64::from_le_bytes(header[4..].try_into().unwrap());
        let mut frame = vec![0u8; len - 8];
        stream.read_exact(&mut frame).unwrap();
        (corr, frame)
    };
    let mut replies = HashMap::new();
    for _ in 0..2 {
        let (corr, frame) = read_reply(&mut stream);
        replies.insert(corr, frame);
    }
    assert_eq!(expect_ok(&ctx, &tenant.sk, &replies[&11]), 5);
    assert_eq!(expect_ok(&ctx, &tenant.sk, &replies[&12]), 15);
    server.shutdown();
    router.shutdown();
}

/// An oversized frame mid-stream gets an error reply, its body is
/// skipped, and the connection keeps serving the frames around it.
#[test]
fn oversized_frame_is_rejected_mid_stream() {
    let (ctx, router) = toy_router(1, 64);
    let tenant = onboard(&ctx, &router, 3, 77);
    let cap = 4096;
    let server = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&router),
        ServerConfig {
            max_frame_bytes: cap,
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let mut rng = StdRng::seed_from_u64(1);
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    let good = add_frame(&ctx, &tenant, 4, 5, &mut rng);
    assert!(good.len() <= cap, "toy frames must fit the test cap");
    let oversized = vec![0xAB; cap + 1];

    let c1 = client.send_frame(&good).unwrap();
    let c2 = client.send_frame(&oversized).unwrap();
    let c3 = client.send_frame(&good).unwrap();

    assert_eq!(
        expect_ok(&ctx, &tenant.sk, &client.recv_reply_for(c1).unwrap()),
        9
    );
    let rejection = client.recv_reply_for(c2).unwrap();
    // Transport-level failures are stamped with the reserved error
    // shard, not a real shard id.
    assert_eq!(
        wire::peek_response_shard(&rejection).unwrap(),
        wire::ERROR_SHARD
    );
    match wire::decode_response(&ctx, &rejection).unwrap() {
        wire::ResponseFrame::Err {
            job_id, message, ..
        } => {
            assert_eq!(job_id, u64::MAX);
            assert!(message.contains("cap"), "unexpected error: {message}");
        }
        wire::ResponseFrame::Ok(_) => panic!("oversized frame must not execute"),
    }
    // The stream stays usable: the frame after the oversized one runs.
    assert_eq!(
        expect_ok(&ctx, &tenant.sk, &client.recv_reply_for(c3).unwrap()),
        9
    );
    assert_eq!(server.stats().frames_rejected, 1);
    server.shutdown();
    router.shutdown();
}

/// A decode-level bad frame (garbage inside a well-formed envelope) gets
/// an error reply without poisoning the connection.
#[test]
fn malformed_frame_gets_error_reply() {
    let (ctx, router) = toy_router(1, 64);
    let tenant = onboard(&ctx, &router, 8, 11);
    let server =
        NetServer::bind("127.0.0.1:0", Arc::clone(&router), ServerConfig::default()).unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    let garbage = client.send_frame(&[1, 2, 3, 4]).unwrap();
    let good = client
        .send_frame(&add_frame(&ctx, &tenant, 1, 2, &mut rng))
        .unwrap();
    match wire::decode_response(&ctx, &client.recv_reply_for(garbage).unwrap()).unwrap() {
        wire::ResponseFrame::Err { job_id, .. } => assert_eq!(job_id, u64::MAX),
        wire::ResponseFrame::Ok(_) => panic!("garbage must not execute"),
    }
    assert_eq!(
        expect_ok(&ctx, &tenant.sk, &client.recv_reply_for(good).unwrap()),
        3
    );
    server.shutdown();
    router.shutdown();
}

/// `max_inflight: 1` serializes the engine but must not lose frames —
/// backpressure holds them in the socket until slots free up.
#[test]
fn backpressure_with_tiny_inflight_window_loses_nothing() {
    let (ctx, router) = toy_router(1, 64);
    let tenant = onboard(&ctx, &router, 21, 5);
    let server = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&router),
        ServerConfig {
            max_inflight: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let t = ctx.params().t;
    let mut corrs = Vec::new();
    for f in 0..32u64 {
        let frame = add_frame(&ctx, &tenant, f % t, 1, &mut rng);
        corrs.push((client.send_frame(&frame).unwrap(), (f % t + 1) % t));
    }
    client.finish_sending().unwrap();
    for (corr, expect) in corrs {
        let reply = client.recv_reply_for(corr).unwrap();
        assert_eq!(expect_ok(&ctx, &tenant.sk, &reply), expect);
    }
    server.shutdown();
    router.shutdown();
}

/// A shard queue far smaller than the pipelined burst: the poll loop
/// must convert engine backpressure into TCP backpressure (retrying
/// buffered frames) instead of blocking or dropping. Regression test
/// for the non-blocking dispatch seam.
#[test]
fn tiny_shard_queue_backpressure_loses_nothing() {
    let (ctx, router) = toy_router(1, 2); // queue capacity 2
    let tenant = onboard(&ctx, &router, 6, 23);
    let server = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&router),
        ServerConfig {
            max_inflight: 64, // far above the queue: the queue is the gate
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(8);
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let t = ctx.params().t;
    let mut expected = HashMap::new();
    for f in 0..48u64 {
        let frame = add_frame(&ctx, &tenant, f % t, 2, &mut rng);
        expected.insert(client.send_frame(&frame).unwrap(), (f % t + 2) % t);
    }
    client.finish_sending().unwrap();
    let mut seen = HashSet::new();
    for _ in 0..48 {
        let (corr, reply) = client.recv_reply().unwrap();
        assert!(seen.insert(corr));
        assert_eq!(expect_ok(&ctx, &tenant.sk, &reply), expected[&corr]);
    }
    // Every refused dispatch attempt is *counted*, not silently undone:
    // a 2-deep queue under a 48-frame burst must have turned work away
    // at least once, even though every frame eventually ran.
    let fleet = router.stats();
    assert!(
        fleet.total.jobs_rejected > 0,
        "a 2-deep queue absorbed a 48-frame burst without one refusal"
    );
    assert_eq!(fleet.total.jobs_completed, 48);
    server.shutdown();
    router.shutdown();
}

/// Graceful shutdown drains: every job accepted before the shutdown call
/// completes and its reply reaches the client before the socket closes.
#[test]
fn shutdown_drains_jobs_in_flight() {
    const JOBS: u64 = 24;
    let (ctx, router) = toy_router_shedding(
        1,
        64,
        SheddingPolicy {
            noise_admission: false, // the filler chains are over-budget on purpose
            ..SheddingPolicy::default()
        },
    );
    let tenant = onboard(&ctx, &router, 4, 13);
    let server =
        NetServer::bind("127.0.0.1:0", Arc::clone(&router), ServerConfig::default()).unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    // A deliberately heavy request: a chain of 24 squarings.
    let t = ctx.params().t;
    let n = ctx.params().n;
    let enc = |v, rng: &mut StdRng| encrypt(&ctx, &tenant.pk, &Plaintext::new(vec![v], t, n), rng);
    let mut ops = vec![EvalOp::Mul(ValRef::Input(0), ValRef::Input(0))];
    for i in 1..24 {
        ops.push(EvalOp::Mul(ValRef::Op(i - 1), ValRef::Op(i - 1)));
    }
    let req = EvalRequest {
        tenant: tenant.id,
        inputs: vec![enc(1, &mut rng)],
        plaintexts: vec![],
        ops,
        deadline_us: None,
        trace_id: None,
    };
    let frame = wire::encode_request(&req);
    let mut corrs = HashSet::new();
    for _ in 0..JOBS {
        corrs.insert(client.send_frame(&frame).unwrap());
    }
    // Wait until the server has accepted every job…
    while server.stats().frames_in < JOBS {
        std::thread::sleep(Duration::from_millis(1));
    }
    // …then shut down with most of them still queued or executing.
    server.shutdown();

    // The drain guarantees every accepted job still answers. (The chain
    // is far past the toy noise budget, so the *value* is meaningless —
    // only Ok delivery is asserted.)
    let mut seen = HashSet::new();
    for _ in 0..JOBS {
        let (corr, reply) = client.recv_reply().unwrap();
        assert!(seen.insert(corr));
        match wire::decode_response(&ctx, &reply).unwrap() {
            wire::ResponseFrame::Ok(_) => {}
            wire::ResponseFrame::Err { message, .. } => panic!("dropped in drain: {message}"),
        }
    }
    assert_eq!(seen, corrs);
    router.shutdown();
}

/// Regression: when the drain window closes with jobs still in flight,
/// the server must answer every outstanding correlation id with a typed
/// `ShuttingDown` refusal before closing the socket — not silently drop
/// them. Every id gets exactly one reply: Ok if it finished inside the
/// window, `ShuttingDown` if it did not.
#[test]
fn drain_timeout_expiry_answers_undrained_jobs_with_shutting_down() {
    const JOBS: u64 = 32;
    let (ctx, router) = toy_router_shedding(
        1,
        64,
        SheddingPolicy {
            noise_admission: false, // the filler chains are over-budget on purpose
            ..SheddingPolicy::default()
        },
    );
    let tenant = onboard(&ctx, &router, 14, 19);
    let server = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&router),
        ServerConfig {
            // Far shorter than the backlog needs: the drain WILL expire.
            drain_timeout: Duration::from_millis(20),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(15);
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    // Heavy filler: a chain of 200 squarings per job keeps two workers
    // busy far past the 20 ms drain window.
    let t = ctx.params().t;
    let n = ctx.params().n;
    let enc = |v, rng: &mut StdRng| encrypt(&ctx, &tenant.pk, &Plaintext::new(vec![v], t, n), rng);
    let mut ops = vec![EvalOp::Mul(ValRef::Input(0), ValRef::Input(0))];
    for i in 1..200 {
        ops.push(EvalOp::Mul(ValRef::Op(i - 1), ValRef::Op(i - 1)));
    }
    let req = EvalRequest {
        tenant: tenant.id,
        inputs: vec![enc(1, &mut rng)],
        plaintexts: vec![],
        ops,
        deadline_us: None,
        trace_id: None,
    };
    let frame = wire::encode_request(&req);
    let mut corrs = HashSet::new();
    for _ in 0..JOBS {
        corrs.insert(client.send_frame(&frame).unwrap());
    }
    while server.stats().frames_in < JOBS {
        std::thread::sleep(Duration::from_millis(1));
    }
    server.shutdown();

    // Every correlation id answers exactly once; the ones the window
    // cut off carry the retryable ShuttingDown code, nothing vanishes.
    let mut seen = HashSet::new();
    let mut cut_off = 0u64;
    for _ in 0..JOBS {
        let (corr, reply) = client.recv_reply().unwrap();
        assert!(seen.insert(corr), "duplicate reply for corr {corr}");
        match wire::peek_response_error(&reply).unwrap() {
            None => {} // finished inside the window
            Some(info) => {
                assert_eq!(info.code, ErrorCode::ShuttingDown, "wrong refusal class");
                assert!(info.code.retryable(), "ShuttingDown must invite a retry");
                cut_off += 1;
            }
        }
    }
    assert_eq!(seen, corrs, "a correlation id was dropped in the drain");
    assert!(
        cut_off > 0,
        "a 20 ms window cannot drain 32 deep Mul chains — the expiry path never ran"
    );
    router.shutdown();
}

/// The `HEVS` admin route end to end: after real load, a metrics scrape
/// over the same connection returns a parseable Prometheus exposition
/// with the engine, tenant, shard and transport families, and a trace
/// scrape returns spans whose trace ids are exactly the ones the client
/// stamped into its request envelopes.
#[test]
fn hevs_scrape_returns_metrics_and_matching_trace_ids() {
    const FRAMES: u64 = 16;
    let (ctx, router) = toy_router(2, 64);
    let tenant = onboard(&ctx, &router, 9, 31);
    let server =
        NetServer::bind("127.0.0.1:0", Arc::clone(&router), ServerConfig::default()).unwrap();
    let mut rng = StdRng::seed_from_u64(6);
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    let t = ctx.params().t;
    let n = ctx.params().n;
    let enc = |v, rng: &mut StdRng| encrypt(&ctx, &tenant.pk, &Plaintext::new(vec![v], t, n), rng);
    let mut sent_ids = HashSet::new();
    for f in 0..FRAMES {
        let trace_id = 0xD00D_0000 + f;
        sent_ids.insert(trace_id);
        let req = EvalRequest::binary(tenant.id, EvalOp::Add, enc(f, &mut rng), enc(1, &mut rng))
            .with_trace_id(trace_id);
        let reply = client.call(&wire::encode_request(&req)).unwrap();
        assert_eq!(expect_ok(&ctx, &tenant.sk, &reply), (f + 1) % t);
    }

    let metrics = client.scrape_stats(wire::StatsKind::Metrics).unwrap();
    for family in [
        "hefv_jobs_submitted_total",
        "hefv_jobs_completed_total",
        "hefv_op_latency_seconds",
        "hefv_backend_latency_seconds",
        "hefv_queue_wait_seconds",
        "hefv_tenant_requests_total",
        "hefv_shard_up",
        "hefv_net_connections_total",
        "hefv_net_replies_out_total",
    ] {
        assert!(metrics.contains(family), "missing family {family}");
    }
    for q in ["quantile=\"0.5\"", "quantile=\"0.95\"", "quantile=\"0.99\""] {
        assert!(metrics.contains(q), "missing {q} in exposition");
    }
    assert!(
        metrics.contains("hefv_tenant_requests_total{tenant=\"9\"} 16"),
        "per-tenant accounting missing from the scrape"
    );

    // Every trace id the dump mentions is one this client stamped, and
    // at least one request is actually in the (large enough) ring.
    let traces = client.scrape_stats(wire::StatsKind::Traces).unwrap();
    let mut matched = 0u64;
    for line in traces.lines().filter(|l| !l.starts_with('#')) {
        let token = line
            .split_whitespace()
            .find_map(|w| w.strip_prefix("trace=0x"))
            .unwrap_or_else(|| panic!("span line without a trace id: {line}"));
        let id = u64::from_str_radix(token, 16).unwrap();
        assert!(
            sent_ids.contains(&id),
            "span with an id nobody sent: {line}"
        );
        matched += 1;
    }
    assert_eq!(
        matched, FRAMES,
        "every request fits the default ring, so every span must show"
    );
    server.shutdown();
    router.shutdown();
}

/// A corrupted checked envelope is refused with `IntegrityFailure` —
/// never decoded, never silently wrong — and the connection keeps
/// serving the intact frames around it. Every reply on an upgraded
/// connection carries a verifying CRC trailer of its own.
#[test]
fn corrupted_checked_envelope_is_refused_not_decoded() {
    let (ctx, router) = toy_router(1, 64);
    let tenant = onboard(&ctx, &router, 17, 91);
    let server =
        NetServer::bind("127.0.0.1:0", Arc::clone(&router), ServerConfig::default()).unwrap();
    let mut rng = StdRng::seed_from_u64(12);
    let mut stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    // Reads one reply, verifying (and stripping) the CRC trailer when
    // the server sent a checked envelope.
    let read_reply = |stream: &mut std::net::TcpStream| {
        let mut header = [0u8; 12];
        stream.read_exact(&mut header).unwrap();
        let raw = u32::from_le_bytes(header[..4].try_into().unwrap());
        let checked = raw & envelope::CRC_FLAG != 0;
        let len = (raw & !envelope::CRC_FLAG) as usize;
        let corr = u64::from_le_bytes(header[4..].try_into().unwrap());
        let mut frame = vec![0u8; len - 8];
        stream.read_exact(&mut frame).unwrap();
        if checked {
            let mut body = header[4..].to_vec();
            body.extend_from_slice(&frame);
            let (payload, tail) = body.split_at(body.len() - 4);
            assert_eq!(
                hefv_core::crc32::crc32(payload),
                u32::from_le_bytes(tail.try_into().unwrap()),
                "server reply failed its own CRC"
            );
            frame.truncate(frame.len() - 4);
        }
        (corr, frame, checked)
    };

    // Good (checked) → corrupted (checked) → good: the middle one must
    // come back as a typed IntegrityFailure, the outer two as Ok.
    let good1 = envelope::encode_checked(31, &add_frame(&ctx, &tenant, 2, 3, &mut rng));
    let mut corrupt = envelope::encode_checked(32, &add_frame(&ctx, &tenant, 4, 4, &mut rng));
    let at = corrupt.len() / 2; // inside the frame body, past len+corr
    corrupt[at] ^= 0x04;
    let good2 = envelope::encode_checked(33, &add_frame(&ctx, &tenant, 5, 6, &mut rng));
    stream.write_all(&good1).unwrap();
    stream.write_all(&corrupt).unwrap();
    stream.write_all(&good2).unwrap();
    stream.flush().unwrap();

    let mut replies = HashMap::new();
    for _ in 0..3 {
        let (corr, frame, checked) = read_reply(&mut stream);
        assert!(checked, "upgraded connection must answer checked");
        replies.insert(corr, frame);
    }
    assert_eq!(expect_ok(&ctx, &tenant.sk, &replies[&31]), 5);
    assert_eq!(expect_ok(&ctx, &tenant.sk, &replies[&33]), 11);
    let info = wire::peek_response_error(&replies[&32])
        .unwrap()
        .expect("corrupted envelope must answer with an error frame");
    assert_eq!(info.code, ErrorCode::IntegrityFailure);
    assert!(
        info.code.retryable(),
        "IntegrityFailure must invite a re-send"
    );
    assert_eq!(server.stats().integrity_failures, 1);
    server.shutdown();
    router.shutdown();
}

/// Idle connections past the timeout are closed; busy ones are not.
#[test]
fn idle_timeout_closes_quiet_connections() {
    let (_ctx, router) = toy_router(1, 64);
    let server = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&router),
        ServerConfig {
            idle_timeout: Some(Duration::from_millis(50)),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = [0u8; 1];
    // The server closes an idle connection: read returns EOF.
    assert_eq!(stream.read(&mut buf).unwrap(), 0);
    server.shutdown();
    router.shutdown();
}
