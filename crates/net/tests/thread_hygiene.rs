//! Thread-lifecycle hygiene: engines (with their batch-linger timers),
//! routers and net servers must not leak OS threads across repeated
//! start/stop cycles.
//!
//! The engine's linger timer and workers, the router's shard engines and
//! the net server's poll thread are all joined on shutdown; this suite
//! pins that down by counting the process's live tasks around many
//! cycles. Linux-only (it reads `/proc/self/task`), which covers CI.

#![cfg(target_os = "linux")]

use hefv_core::prelude::*;
use hefv_engine::prelude::*;
use hefv_engine::router::ShardSpec;
use hefv_net::{Client, NetServer, ServerConfig};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The harness runs `#[test]`s concurrently, and a sibling test's live
/// workers would skew this process's task count — every counting test
/// holds this lock for its whole body.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn live_threads() -> usize {
    std::fs::read_dir("/proc/self/task").unwrap().count()
}

fn toy_ctx() -> Arc<FvContext> {
    Arc::new(FvContext::new(FvParams::insecure_toy()).unwrap())
}

#[test]
fn repeated_engine_start_stop_leaks_no_threads() {
    let _guard = serial();
    let ctx = toy_ctx();
    // Warm up allocator/runtime threads before taking the baseline.
    Engine::start(Arc::clone(&ctx), EngineConfig::default()).shutdown();
    let before = live_threads();
    for _ in 0..20 {
        let engine = Engine::start(
            Arc::clone(&ctx),
            EngineConfig {
                workers: 3,
                // A short linger so the timer thread actually ticks
                // (not just parks) before shutdown joins it.
                batch_linger: Some(Duration::from_millis(1)),
                ..EngineConfig::default()
            },
        );
        std::thread::sleep(Duration::from_millis(3));
        engine.shutdown();
    }
    let after = live_threads();
    assert!(
        after <= before,
        "thread leak: {before} tasks before, {after} after 20 engine cycles"
    );
}

#[test]
fn repeated_router_and_server_start_stop_leaks_no_threads() {
    let _guard = serial();
    let ctx = toy_ctx();
    let cycle = || {
        let router = Arc::new(ShardRouter::new());
        for i in 0..2 {
            router
                .add_shard(ShardSpec {
                    name: format!("s{i}"),
                    ctx: Arc::clone(&ctx),
                    config: EngineConfig {
                        workers: 2,
                        batch_linger: Some(Duration::from_millis(1)),
                        ..EngineConfig::default()
                    },
                })
                .unwrap();
        }
        let server =
            NetServer::bind("127.0.0.1:0", Arc::clone(&router), ServerConfig::default()).unwrap();
        // Touch the socket path so the poll loop does real work.
        let _ = Client::connect(server.local_addr()).unwrap();
        server.shutdown();
        router.shutdown();
    };
    cycle(); // warm-up
    let before = live_threads();
    for _ in 0..10 {
        cycle();
    }
    let after = live_threads();
    assert!(
        after <= before,
        "thread leak: {before} tasks before, {after} after 10 router+server cycles"
    );
}

#[test]
fn dropping_the_server_joins_the_poll_thread() {
    let _guard = serial();
    let ctx = toy_ctx();
    let router = Arc::new(ShardRouter::new());
    router
        .add_shard(ShardSpec {
            name: "s0".into(),
            ctx,
            config: EngineConfig {
                workers: 1,
                ..EngineConfig::default()
            },
        })
        .unwrap();
    let before = live_threads();
    {
        let _server =
            NetServer::bind("127.0.0.1:0", Arc::clone(&router), ServerConfig::default()).unwrap();
        assert!(live_threads() > before, "poll thread is running");
        // Dropped here without an explicit shutdown().
    }
    assert_eq!(live_threads(), before, "drop must join the poll thread");
    router.shutdown();
}
