//! Thread-lifecycle hygiene: engines (with their batch-linger timers),
//! routers and net servers must not leak OS threads across repeated
//! start/stop cycles.
//!
//! The engine's linger timer and workers, the router's shard engines and
//! the net server's poll thread are all joined on shutdown; this suite
//! pins that down by counting the process's live tasks around many
//! cycles. Linux-only (it reads `/proc/self/task`), which covers CI.

#![cfg(target_os = "linux")]

use hefv_core::prelude::*;
use hefv_engine::prelude::*;
use hefv_engine::router::ShardSpec;
use hefv_net::{Client, NetServer, ServerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The harness runs `#[test]`s concurrently, and a sibling test's live
/// workers would skew this process's task count — every counting test
/// holds this lock for its whole body.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn live_threads() -> usize {
    std::fs::read_dir("/proc/self/task").unwrap().count()
}

fn live_fds() -> usize {
    std::fs::read_dir("/proc/self/fd").unwrap().count()
}

fn toy_ctx() -> Arc<FvContext> {
    Arc::new(FvContext::new(FvParams::insecure_toy()).unwrap())
}

#[test]
fn repeated_engine_start_stop_leaks_no_threads() {
    let _guard = serial();
    let ctx = toy_ctx();
    // Warm up allocator/runtime threads before taking the baseline.
    Engine::start(Arc::clone(&ctx), EngineConfig::default()).shutdown();
    let before = live_threads();
    for _ in 0..20 {
        let engine = Engine::start(
            Arc::clone(&ctx),
            EngineConfig {
                workers: 3,
                // A short linger so the timer thread actually ticks
                // (not just parks) before shutdown joins it.
                batch_linger: Some(Duration::from_millis(1)),
                ..EngineConfig::default()
            },
        );
        std::thread::sleep(Duration::from_millis(3));
        engine.shutdown();
    }
    let after = live_threads();
    assert!(
        after <= before,
        "thread leak: {before} tasks before, {after} after 20 engine cycles"
    );
}

#[test]
fn repeated_router_and_server_start_stop_leaks_no_threads() {
    let _guard = serial();
    let ctx = toy_ctx();
    let cycle = || {
        let router = Arc::new(ShardRouter::new());
        for i in 0..2 {
            router
                .add_shard(ShardSpec {
                    name: format!("s{i}"),
                    ctx: Arc::clone(&ctx),
                    config: EngineConfig {
                        workers: 2,
                        batch_linger: Some(Duration::from_millis(1)),
                        ..EngineConfig::default()
                    },
                })
                .unwrap();
        }
        let server =
            NetServer::bind("127.0.0.1:0", Arc::clone(&router), ServerConfig::default()).unwrap();
        // Touch the socket path so the poll loop does real work.
        let _ = Client::connect(server.local_addr()).unwrap();
        server.shutdown();
        router.shutdown();
    };
    cycle(); // warm-up
    let before = live_threads();
    for _ in 0..10 {
        cycle();
    }
    let after = live_threads();
    assert!(
        after <= before,
        "thread leak: {before} tasks before, {after} after 10 router+server cycles"
    );
}

/// Chaos-injected worker panics must be fully contained: across 20
/// engine lifecycles of forced panics, quarantine trips, and quarantine
/// expiry, no OS thread leaks (`catch_unwind` keeps the worker alive, a
/// panicking worker is not respawned-and-abandoned), no fd leaks, and
/// every submission gets exactly one answer — an Ok, a contained
/// `Internal` panic report, or a typed `Quarantined` refusal. Nothing
/// hangs, nothing vanishes.
#[test]
fn chaos_panic_cycles_leak_no_threads_fds_or_replies() {
    let _guard = serial();
    // Injected panics would spray default-hook backtraces over the test
    // output; filter exactly those, delegate everything else.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|s| s.contains("chaos:"))
            || info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("chaos:"));
        if !injected {
            prev(info);
        }
    }));

    let ctx = toy_ctx();
    let mut rng = StdRng::seed_from_u64(77);
    let (_sk, pk, rlk) = keygen(&ctx, &mut rng);
    let (t, n) = (ctx.params().t, ctx.params().n);
    const TTL: Duration = Duration::from_millis(20);
    let cycle = |rng: &mut StdRng| {
        let engine = Engine::start(
            Arc::clone(&ctx),
            EngineConfig {
                workers: 2,
                shedding: SheddingPolicy {
                    quarantine_after: 3,
                    quarantine_ttl: TTL,
                    ..SheddingPolicy::default()
                },
                chaos: Some(ChaosPlan {
                    panic: 1.0, // every executed job panics in the worker
                    ..ChaosPlan::default()
                }),
                ..EngineConfig::default()
            },
        );
        engine.register_tenant(1, TenantKeys::compute(pk.clone(), rlk.clone()));
        let enc =
            |v: u64, rng: &mut StdRng| encrypt(&ctx, &pk, &Plaintext::new(vec![v], t, n), rng);
        let (mut panicked, mut quarantined) = (0u32, 0u32);
        for _ in 0..8 {
            let req = EvalRequest::binary(1, EvalOp::Mul, enc(2, rng), enc(3, rng));
            // Exactly one answer per submission: a refusal at the door
            // or a (failed) reply from the worker. A lost correlation
            // would hang `call` forever — the suite timeout catches it.
            match engine.call(req) {
                Ok(_) => panic!("panic:1.0 cannot produce a clean reply"),
                Err(e) if e.code() == ErrorCode::Internal => panicked += 1,
                Err(e) if e.code() == ErrorCode::Quarantined => quarantined += 1,
                Err(e) => panic!("unexpected refusal class: {e}"),
            }
        }
        assert_eq!(panicked, 3, "exactly K strikes execute");
        assert_eq!(quarantined, 5, "the rest are fenced at admission");
        assert_eq!(engine.stats().quarantine_active, 1);
        // Quarantine expiry: after the TTL the signature is admitted
        // (and panics) again, and the gauge self-corrects on scrape.
        std::thread::sleep(TTL + Duration::from_millis(10));
        assert_eq!(engine.stats().quarantine_active, 0, "TTL sweep");
        let req = EvalRequest::binary(1, EvalOp::Mul, enc(4, rng), enc(5, rng));
        assert_eq!(
            engine.call(req).expect_err("still panicking").code(),
            ErrorCode::Internal,
            "expired quarantine admits the signature again"
        );
        engine.shutdown();
    };
    cycle(&mut rng); // warm-up
    let (threads_before, fds_before) = (live_threads(), live_fds());
    for _ in 0..20 {
        cycle(&mut rng);
    }
    let (threads_after, fds_after) = (live_threads(), live_fds());
    assert!(
        threads_after <= threads_before,
        "thread leak: {threads_before} tasks before, {threads_after} after 20 chaos cycles"
    );
    assert!(
        fds_after <= fds_before,
        "fd leak: {fds_before} fds before, {fds_after} after 20 chaos cycles"
    );
}

#[test]
fn dropping_the_server_joins_the_poll_thread() {
    let _guard = serial();
    let ctx = toy_ctx();
    let router = Arc::new(ShardRouter::new());
    router
        .add_shard(ShardSpec {
            name: "s0".into(),
            ctx,
            config: EngineConfig {
                workers: 1,
                ..EngineConfig::default()
            },
        })
        .unwrap();
    let before = live_threads();
    {
        let _server =
            NetServer::bind("127.0.0.1:0", Arc::clone(&router), ServerConfig::default()).unwrap();
        assert!(live_threads() > before, "poll thread is running");
        // Dropped here without an explicit shutdown().
    }
    assert_eq!(live_threads(), before, "drop must join the poll thread");
    router.shutdown();
}
