//! Test-only fault injection for the remote-shard transport.
//!
//! The `HEFV_NET_FAULT` environment variable turns on a lossy/slow link
//! simulation in [`crate::remote::TcpConnector`]'s data path (probes and
//! ordinary [`crate::Client`] traffic are unaffected). Off by default;
//! compiled in always, so CI can exercise the retry/backoff machinery
//! without a special build. Format:
//!
//! ```text
//! HEFV_NET_FAULT=drop:0.01,corrupt:0.002,delay:5ms
//! ```
//!
//! * `drop:P` — silently swallow each outbound frame with probability
//!   `P` ∈ \[0, 1\] (the frame is "lost on the wire"; the remote-shard
//!   sweep re-sends it after its reply timeout).
//! * `corrupt:P` — flip one deterministic-pseudorandom bit in each
//!   outbound envelope with probability `P` ∈ \[0, 1\] (past the length
//!   prefix, so framing survives and the CRC layer must catch it; the
//!   server refuses the frame with `IntegrityFailure` and the sender
//!   re-sends under the same correlation id).
//! * `delay:N(ms|us|s)` — sleep that long before each outbound frame.
//!
//! Either part may be omitted; unparsable specs are ignored (fail open:
//! a typo must not make CI pass vacuously by crashing the harness —
//! the cluster smoke asserts on retry counters instead).

use std::sync::OnceLock;
use std::time::Duration;

/// One parsed `HEFV_NET_FAULT` spec.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub(crate) struct FaultPlan {
    /// Per-frame drop probability in \[0, 1\].
    pub drop: f64,
    /// Per-frame single-bit corruption probability in \[0, 1\].
    pub corrupt: f64,
    /// Per-frame send delay.
    pub delay: Duration,
}

impl FaultPlan {
    pub(crate) fn active(&self) -> bool {
        self.drop > 0.0 || self.corrupt > 0.0 || self.delay > Duration::ZERO
    }
}

/// The process-wide plan, read from the environment once.
pub(crate) fn plan() -> FaultPlan {
    static PLAN: OnceLock<FaultPlan> = OnceLock::new();
    *PLAN.get_or_init(|| parse(std::env::var("HEFV_NET_FAULT").ok().as_deref()))
}

fn parse(spec: Option<&str>) -> FaultPlan {
    let mut plan = FaultPlan::default();
    let Some(spec) = spec else { return plan };
    for part in spec.split(',') {
        let part = part.trim();
        if let Some(p) = part.strip_prefix("drop:") {
            if let Ok(p) = p.trim().parse::<f64>() {
                if p.is_finite() {
                    plan.drop = p.clamp(0.0, 1.0);
                }
            }
        } else if let Some(p) = part.strip_prefix("corrupt:") {
            if let Ok(p) = p.trim().parse::<f64>() {
                if p.is_finite() {
                    plan.corrupt = p.clamp(0.0, 1.0);
                }
            }
        } else if let Some(d) = part.strip_prefix("delay:") {
            plan.delay = parse_duration(d.trim()).unwrap_or(Duration::ZERO);
        }
    }
    plan
}

fn parse_duration(s: &str) -> Option<Duration> {
    for (suffix, scale_ns) in [("ms", 1_000_000u64), ("us", 1_000), ("s", 1_000_000_000)] {
        if let Some(num) = s.strip_suffix(suffix) {
            // "s" would also strip "ms"/"us" tails; the longer suffixes
            // are checked first so `num` here is purely numeric.
            let v: f64 = num.trim().parse().ok()?;
            if !v.is_finite() || v < 0.0 {
                return None;
            }
            return Some(Duration::from_nanos((v * scale_ns as f64) as u64));
        }
    }
    None
}

/// One splitmix64 step over the per-connection state: the shared
/// deterministic randomness source behind every fault decision.
pub(crate) fn next_rand(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn coin(p: f64, state: &mut u64) -> bool {
    if p <= 0.0 {
        return false;
    }
    ((next_rand(state) >> 11) as f64 / (1u64 << 53) as f64) < p
}

/// Deterministic per-connection coin flip against the drop probability.
pub(crate) fn should_drop(plan: &FaultPlan, state: &mut u64) -> bool {
    coin(plan.drop, state)
}

/// Deterministic per-connection coin flip against the corruption
/// probability.
pub(crate) fn should_corrupt(plan: &FaultPlan, state: &mut u64) -> bool {
    coin(plan.corrupt, state)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_parse() {
        assert_eq!(parse(None), FaultPlan::default());
        assert_eq!(parse(Some("")), FaultPlan::default());
        let p = parse(Some("drop:0.01,corrupt:0.002,delay:5ms"));
        assert!((p.drop - 0.01).abs() < 1e-12);
        assert!((p.corrupt - 0.002).abs() < 1e-12);
        assert_eq!(p.delay, Duration::from_millis(5));
        assert_eq!(parse(Some("corrupt:7")).corrupt, 1.0, "clamped");
        assert_eq!(parse(Some("delay:250us")).delay, Duration::from_micros(250));
        assert_eq!(parse(Some("delay:2s")).delay, Duration::from_secs(2));
        assert_eq!(parse(Some("drop:1.5")).drop, 1.0, "clamped");
        assert_eq!(parse(Some("drop:-1")).drop, 0.0, "clamped");
        // Garbage fails open.
        assert_eq!(parse(Some("drop:lots,delay:soon")), FaultPlan::default());
        assert!(!parse(Some("nonsense")).active());
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let plan = FaultPlan {
            drop: 0.25,
            ..FaultPlan::default()
        };
        let mut state = 0xDEAD_BEEFu64;
        let dropped = (0..10_000)
            .filter(|_| should_drop(&plan, &mut state))
            .count();
        assert!(
            (2_000..3_000).contains(&dropped),
            "25% drop produced {dropped}/10000"
        );
        let none = FaultPlan::default();
        assert!(!should_drop(&none, &mut state));
    }
}
