//! A small blocking client for the envelope protocol.
//!
//! [`Client`] owns one TCP connection and hands out sequential
//! correlation ids. It supports both one-shot request/reply
//! ([`Client::call`]) and pipelining: send any number of frames with
//! [`Client::send_frame`], then collect replies with
//! [`Client::recv_reply`] (completion order) or
//! [`Client::recv_reply_for`] (a specific request — replies that arrive
//! for other ids are stashed and returned by later calls, so the two
//! styles mix freely).

use crate::envelope::{self, CORR_BYTES, CRC_BYTES, LEN_BYTES};
use hefv_engine::wire;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// How many out-of-order replies a client stashes before
/// [`Client::recv_reply_for`] refuses to buffer more.
pub const DEFAULT_STASH_LIMIT: usize = 1024;

/// Process-wide count of [`Client::call_with_retry`] re-submissions
/// (rendered as `hefv_client_retries_total` in the metrics exposition).
static CLIENT_RETRIES: AtomicU64 = AtomicU64::new(0);

/// Total frames this process re-submitted after a retryable refusal.
pub fn client_retries_total() -> u64 {
    CLIENT_RETRIES.load(Ordering::Relaxed)
}

/// Backoff tuning for [`Client::call_with_retry`].
///
/// A refused frame is re-submitted only when its typed error code says
/// retrying can help ([`hefv_engine::ErrorCode::retryable`]) — refusals
/// like `DeadlineInfeasible` or `Quarantined` come back to the caller
/// immediately, since repeating the identical request cannot change the
/// outcome before the server's own state does. When the refusal carries
/// a `retry-after` hint (overload sheds do), the hint wins over the
/// local exponential schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total submission attempts, counting the first (≥ 1).
    pub max_attempts: u32,
    /// First backoff step; doubles per retry.
    pub base_backoff: Duration,
    /// Ceiling for any single wait, hinted or computed.
    pub max_backoff: Duration,
    /// Jitter seed: same seed + same refusal sequence = same waits, so
    /// tests stay deterministic. Vary it per client to decorrelate a
    /// thundering herd.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(250),
            jitter_seed: 0x5EED_CAB1E,
        }
    }
}

/// splitmix64 — the same tiny deterministic generator the engine's fault
/// injectors use; no RNG dependency for one jittered backoff.
fn mix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Full-jitter scale in `[0.5, 1.0)` of the nominal backoff step.
fn jittered(step: Duration, rng: &mut u64) -> Duration {
    let frac = 0.5 + 0.5 * (mix64(rng) >> 11) as f64 / (1u64 << 53) as f64;
    step.mul_f64(frac)
}

/// Blocking client over one connection. See the module docs.
pub struct Client {
    stream: TcpStream,
    next_corr: u64,
    /// Replies read while waiting for a different correlation id.
    stashed: HashMap<u64, Vec<u8>>,
    /// Cap on `stashed` — see [`Client::set_stash_limit`].
    stash_limit: usize,
}

impl Client {
    /// Connects (with `TCP_NODELAY`, since frames are latency-sensitive
    /// and self-contained).
    ///
    /// # Errors
    ///
    /// Propagates connect/configure errors.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client::from_stream(stream))
    }

    /// Wraps an already-connected stream (the caller keeps whatever
    /// socket options it set — no `TCP_NODELAY` is applied here).
    pub fn from_stream(stream: TcpStream) -> Client {
        Client {
            stream,
            next_corr: 0,
            stashed: HashMap::new(),
            stash_limit: DEFAULT_STASH_LIMIT,
        }
    }

    /// Caps how many out-of-order replies [`Client::recv_reply_for`]
    /// buffers while waiting for its target (≥ 1; default
    /// [`DEFAULT_STASH_LIMIT`]). At the cap it errors instead of growing
    /// without bound — drain with [`Client::recv_reply`] and retry.
    pub fn set_stash_limit(&mut self, limit: usize) {
        self.stash_limit = limit.max(1);
    }

    /// The server's address.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.stream.peer_addr()
    }

    /// Bounds how long a `recv` blocks (`None` = forever).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Sends one `HEVQ` frame in a checked (CRC-trailered) envelope,
    /// returning the correlation id its reply will carry. Does not wait
    /// for the reply — call repeatedly to pipeline.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn send_frame(&mut self, frame: &[u8]) -> io::Result<u64> {
        let corr = self.next_corr;
        self.next_corr += 1;
        self.stream
            .write_all(&envelope::encode_checked(corr, frame))?;
        Ok(corr)
    }

    /// Receives the next reply in completion order: `(corr, HEVP
    /// frame)`. Replies stashed by [`Client::recv_reply_for`] are
    /// returned first.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; `UnexpectedEof` when the server closed
    /// the connection; `InvalidData` for envelopes breaking the
    /// protocol.
    pub fn recv_reply(&mut self) -> io::Result<(u64, Vec<u8>)> {
        if let Some(&corr) = self.stashed.keys().next() {
            let frame = self.stashed.remove(&corr).expect("key just seen");
            return Ok((corr, frame));
        }
        self.read_envelope()
    }

    /// Receives the reply to a specific request, stashing any other
    /// replies that arrive first (up to the stash limit — see
    /// [`Client::set_stash_limit`]).
    ///
    /// # Errors
    ///
    /// See [`Client::recv_reply`]; additionally fails — without reading
    /// (and losing) further replies — once the stash is full, instead of
    /// buffering without bound. Drain stashed replies with
    /// [`Client::recv_reply`] and call again; the target reply may also
    /// already be among them.
    pub fn recv_reply_for(&mut self, corr: u64) -> io::Result<Vec<u8>> {
        if let Some(frame) = self.stashed.remove(&corr) {
            return Ok(frame);
        }
        loop {
            if self.stashed.len() >= self.stash_limit {
                return Err(io::Error::other(format!(
                    "{} replies stashed while waiting for corr {corr}; drain them with \
                     recv_reply or raise the stash limit",
                    self.stashed.len()
                )));
            }
            let (got, frame) = self.read_envelope()?;
            if got == corr {
                return Ok(frame);
            }
            self.stashed.insert(got, frame);
        }
    }

    /// One-shot convenience: send a frame, wait for its reply.
    ///
    /// # Errors
    ///
    /// See [`Client::send_frame`] and [`Client::recv_reply_for`].
    pub fn call(&mut self, frame: &[u8]) -> io::Result<Vec<u8>> {
        let corr = self.send_frame(frame)?;
        self.recv_reply_for(corr)
    }

    /// [`Client::call`] with backoff-and-retry on *retryable* refusals.
    ///
    /// Each attempt is a fresh submission under a fresh correlation id —
    /// safe because a refused job never executed. The reply returned is
    /// the first success, the first non-retryable refusal, or the last
    /// attempt's refusal once the budget is spent; the caller decodes it
    /// exactly as it would a [`Client::call`] reply. Waits honor the
    /// server's retry-after hint when present, else follow the policy's
    /// jittered exponential schedule (see [`RetryPolicy`]).
    ///
    /// # Errors
    ///
    /// Transport errors from [`Client::call`], immediately — a broken
    /// connection is not retried here (the stream is gone).
    pub fn call_with_retry(&mut self, frame: &[u8], policy: &RetryPolicy) -> io::Result<Vec<u8>> {
        let mut rng = policy.jitter_seed ^ self.next_corr;
        let mut step = policy.base_backoff;
        let budget = policy.max_attempts.max(1);
        for attempt in 1..=budget {
            let reply = self.call(frame)?;
            let refusal = match wire::peek_response_error(&reply) {
                Ok(Some(info)) => info,
                // Success — or a frame the engine decoder rejects, which
                // retrying verbatim cannot fix; the caller sees it either
                // way.
                Ok(None) | Err(_) => return Ok(reply),
            };
            if !refusal.code.retryable() || attempt == budget {
                return Ok(reply);
            }
            CLIENT_RETRIES.fetch_add(1, Ordering::Relaxed);
            let wait = refusal
                .retry_after_us
                .map(Duration::from_micros)
                .unwrap_or_else(|| jittered(step, &mut rng))
                .min(policy.max_backoff);
            std::thread::sleep(wait);
            step = (step * 2).min(policy.max_backoff);
        }
        unreachable!("loop returns on the final attempt")
    }

    /// Scrapes the server's `HEVS` admin endpoint: the Prometheus-text
    /// metrics exposition ([`wire::StatsKind::Metrics`]) or the trace
    /// span dump ([`wire::StatsKind::Traces`]). Served synchronously by
    /// the poll thread, so it works even while every shard queue is
    /// full.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; `InvalidData` when the reply is not a
    /// well-formed `HEVS` response of the requested kind.
    pub fn scrape_stats(&mut self, kind: wire::StatsKind) -> io::Result<String> {
        let reply = self.call(&wire::encode_stats_request(kind))?;
        let (got, body) = wire::decode_stats_response(&reply)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        if got != kind {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("asked for {kind:?} stats, server answered {got:?}"),
            ));
        }
        Ok(body)
    }

    /// Half-closes the write side: tells the server no more requests are
    /// coming while replies to pipelined frames keep arriving.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn finish_sending(&mut self) -> io::Result<()> {
        self.stream.shutdown(Shutdown::Write)
    }

    fn read_envelope(&mut self) -> io::Result<(u64, Vec<u8>)> {
        let mut header = [0u8; LEN_BYTES + CORR_BYTES];
        self.stream.read_exact(&mut header)?;
        let len = envelope::read_len(&header);
        let checked = envelope::is_checked(&header);
        let overhead = CORR_BYTES + if checked { CRC_BYTES } else { 0 };
        if len < overhead || len - overhead > wire::MAX_FRAME_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("reply envelope of {len} bytes breaks the protocol"),
            ));
        }
        let corr = envelope::read_corr(&header);
        let mut frame = vec![0u8; len - CORR_BYTES];
        self.stream.read_exact(&mut frame)?;
        if checked {
            let mut body = header[LEN_BYTES..].to_vec();
            body.extend_from_slice(&frame);
            if !envelope::trailer_ok(&body) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "reply envelope failed its CRC check",
                ));
            }
            frame.truncate(frame.len() - CRC_BYTES);
        }
        Ok((corr, frame))
    }
}
