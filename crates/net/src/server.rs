//! The TCP server: a single poll thread multiplexing every connection
//! over non-blocking std sockets.
//!
//! Each accepted connection runs a small state machine: bytes are read
//! into a reassembly buffer (frames may arrive split across arbitrary
//! read boundaries), complete envelopes are peeled off and dispatched
//! through [`ShardRouter::dispatch_frame_with_callback`], and finished
//! replies — delivered by engine worker threads in completion order —
//! are drained from a per-connection write queue back onto the socket,
//! again tolerating partial writes. The poll thread never blocks:
//! sockets are non-blocking, and submission uses the router's
//! non-blocking seam — a full shard queue leaves the frame buffered and
//! retried, converting engine backpressure into TCP backpressure. It
//! sleeps [`ServerConfig::poll_interval`] only when an entire sweep
//! made no progress.
//!
//! Overload and misuse are bounded per connection: at most
//! [`ServerConfig::max_inflight`] jobs are in flight (further frames
//! stay in the socket until slots free up — backpressure, not errors),
//! frames beyond [`ServerConfig::max_frame_bytes`] are answered with an
//! error reply while the stream skips the oversized body and keeps
//! serving, and connections idle past [`ServerConfig::idle_timeout`]
//! with nothing pending are closed.
//!
//! `HEVS` admin frames ([`wire::is_stats_frame`]) are answered
//! synchronously on the poll thread — a metrics scrape or trace dump
//! never enters a shard queue, so observability stays available while
//! the fleet is saturated. The metrics body is the router-wide
//! Prometheus exposition ([`hefv_engine::render_prometheus`]) with the
//! transport's own `hefv_net_*` counters appended.

use crate::envelope::{self, CORR_BYTES, CRC_BYTES, LEN_BYTES};
use hefv_core::error::Error;
use hefv_engine::router::ShardRouter;
use hefv_engine::wire;
use hefv_engine::EngineError;
use std::collections::{HashSet, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs. `Default` is sized for a loopback service.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Largest accepted `HEVQ` frame, bytes. Clamped to the engine's
    /// [`wire::MAX_FRAME_BYTES`] ceiling; oversized frames are answered
    /// with an error reply and their bytes skipped.
    pub max_frame_bytes: usize,
    /// Jobs one connection may have in flight (≥ 1). Once reached, the
    /// connection's frames wait in the socket — backpressure toward the
    /// client instead of unbounded queueing.
    pub max_inflight: usize,
    /// Close a connection after this long with no jobs in flight and no
    /// socket progress in either direction — covers both quiet
    /// connections and clients that stopped reading their replies.
    /// `None` keeps such connections forever.
    pub idle_timeout: Option<Duration>,
    /// Concurrent connections; excess accepts are dropped immediately.
    pub max_connections: usize,
    /// Sleep between poll sweeps that made no progress.
    pub poll_interval: Duration,
    /// How long [`NetServer::shutdown`] waits for in-flight jobs to
    /// complete and their replies to flush before closing sockets
    /// anyway (a client that stops reading must not wedge shutdown).
    pub drain_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_frame_bytes: wire::MAX_FRAME_BYTES,
            max_inflight: 64,
            idle_timeout: Some(Duration::from_secs(60)),
            max_connections: 1024,
            poll_interval: Duration::from_micros(500),
            drain_timeout: Duration::from_secs(10),
        }
    }
}

/// Monotonic server counters (snapshot with [`NetServer::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStatsSnapshot {
    /// Connections accepted.
    pub connections: u64,
    /// Connections refused at [`ServerConfig::max_connections`].
    pub connections_refused: u64,
    /// Complete request frames read off sockets.
    pub frames_in: u64,
    /// Frames refused before reaching the router (oversized).
    pub frames_rejected: u64,
    /// Checked envelopes refused for failing their CRC check. Every one
    /// of these is a frame that would otherwise have fed corrupted bytes
    /// into the engine decoder.
    pub integrity_failures: u64,
    /// Reply envelopes fully written back.
    pub replies_out: u64,
}

#[derive(Default)]
struct NetStats {
    connections: AtomicU64,
    connections_refused: AtomicU64,
    frames_in: AtomicU64,
    frames_rejected: AtomicU64,
    integrity_failures: AtomicU64,
    replies_out: AtomicU64,
}

impl NetStats {
    fn snapshot(&self) -> NetStatsSnapshot {
        NetStatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            connections_refused: self.connections_refused.load(Ordering::Relaxed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_rejected: self.frames_rejected.load(Ordering::Relaxed),
            integrity_failures: self.integrity_failures.load(Ordering::Relaxed),
            replies_out: self.replies_out.load(Ordering::Relaxed),
        }
    }
}

/// The half of a connection shared with engine worker threads: finished
/// replies land here (in completion order) and the in-flight set gates
/// how fast the poll thread admits new frames.
///
/// In-flight jobs are tracked by correlation id, not just a count, so
/// shutdown can answer every outstanding id when the drain window
/// expires. A job's completion callback only replies if its id is still
/// in the set — once shutdown has answered an id with `ShuttingDown`, a
/// late completion finds its id gone and stays silent (each correlation
/// id gets exactly one reply).
#[derive(Default)]
struct ConnShared {
    replies: VecDeque<Vec<u8>>,
    inflight: HashSet<u64>,
    /// The peer has sent at least one checked (CRC-trailered) envelope;
    /// every reply to it goes out checked too. This is the whole version
    /// negotiation: legacy peers never set the flag and keep getting
    /// legacy envelopes.
    checked: bool,
}

/// Wraps a reply frame in the envelope flavor the connection negotiated.
fn seal(checked: bool, corr: u64, reply: &[u8]) -> Vec<u8> {
    if checked {
        envelope::encode_checked(corr, reply)
    } else {
        envelope::encode(corr, reply)
    }
}

struct Conn {
    stream: TcpStream,
    /// Reassembly buffer: bytes read but not yet peeled into frames.
    rbuf: Vec<u8>,
    /// Remaining bytes of an oversized frame being skipped.
    discard: usize,
    shared: Arc<Mutex<ConnShared>>,
    /// Reply currently being written, and how much of it went out.
    wbuf: Vec<u8>,
    woff: usize,
    last_activity: Instant,
    /// Peer sent EOF: no more reads, but buffered frames still execute
    /// and their replies still flush (clients may half-close after
    /// their last request).
    read_closed: bool,
    /// Connection is broken; drop it without draining.
    dead: bool,
}

impl Conn {
    fn pending(&self) -> (usize, bool) {
        let s = self.shared.lock().unwrap();
        (
            s.inflight.len(),
            s.replies.is_empty() && self.woff >= self.wbuf.len(),
        )
    }

    /// In-flight jobs plus unwritten replies: the per-connection
    /// outstanding-work bound admission gates on. Counting queued
    /// replies means a peer that never reads stops being admitted once
    /// the backlog hits the cap, instead of growing the reply queue
    /// without bound while its jobs keep completing.
    fn outstanding(&self) -> usize {
        let s = self.shared.lock().unwrap();
        s.inflight.len() + s.replies.len()
    }
}

fn oversized_reply(checked: bool, corr: u64, frame_len: usize, cap: usize) -> Vec<u8> {
    let e = EngineError::Core(Error::Wire(format!(
        "frame of {frame_len} bytes exceeds this server's {cap}-byte cap"
    )));
    seal(checked, corr, &wire::encode_response(&Err((u64::MAX, e))))
}

/// The refusal for a checked envelope whose CRC trailer does not match:
/// the frame was corrupted in flight and is never decoded. The reply
/// goes out under whatever correlation id the (possibly corrupted)
/// envelope carried — if the corruption hit the id itself, the sender
/// finds no pending entry, drops the refusal, and its timeout sweep
/// re-sends the original frame; either way, exactly-once holds.
fn integrity_reply(corr: u64) -> Vec<u8> {
    let e = EngineError::IntegrityFailure("request envelope failed its CRC check".into());
    seal(true, corr, &wire::encode_response(&Err((u64::MAX, e))))
}

/// A running TCP front-end. Bind with [`NetServer::bind`]; the listener
/// and every connection are serviced by one background poll thread until
/// [`NetServer::shutdown`] (or drop) stops accepting, drains in-flight
/// jobs and joins the thread.
pub struct NetServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<NetStats>,
    handle: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `addr` (use port 0 for an ephemeral port — see
    /// [`NetServer::local_addr`]) and starts the poll thread serving
    /// `router`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from bind/configure.
    pub fn bind(
        addr: impl ToSocketAddrs,
        router: Arc<ShardRouter>,
        config: ServerConfig,
    ) -> io::Result<NetServer> {
        let config = ServerConfig {
            max_frame_bytes: config.max_frame_bytes.min(wire::MAX_FRAME_BYTES),
            max_inflight: config.max_inflight.max(1),
            max_connections: config.max_connections.max(1),
            ..config
        };
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(NetStats::default());
        let handle = {
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            std::thread::Builder::new()
                .name("hefv-net-poll".into())
                .spawn(move || poll_loop(&listener, &router, &config, &stop, &stats))
                .expect("spawn net poll thread")
        };
        Ok(NetServer {
            addr,
            stop,
            stats,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current transport counters.
    pub fn stats(&self) -> NetStatsSnapshot {
        self.stats.snapshot()
    }

    /// Graceful shutdown: stops accepting connections and reading new
    /// frames, waits for in-flight jobs to finish and their replies to
    /// flush (bounded by [`ServerConfig::drain_timeout`]), closes every
    /// socket, and joins the poll thread. Dropping the server does the
    /// same.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn poll_loop(
    listener: &TcpListener,
    router: &Arc<ShardRouter>,
    config: &ServerConfig,
    stop: &AtomicBool,
    stats: &Arc<NetStats>,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut draining_since: Option<Instant> = None;
    loop {
        let stopping = stop.load(Ordering::SeqCst);
        if stopping && draining_since.is_none() {
            draining_since = Some(Instant::now());
        }
        let mut progress = false;
        if !stopping {
            progress |= accept_new(listener, &mut conns, config, stats);
        }
        for conn in &mut conns {
            if conn.dead {
                continue;
            }
            let (inflight, _) = conn.pending();
            if !stopping && !conn.read_closed && inflight < config.max_inflight {
                match read_some(conn, config) {
                    Ok(p) => progress |= p,
                    Err(_) => {
                        conn.dead = true;
                        continue;
                    }
                }
            }
            if !stopping {
                progress |= parse_frames(conn, router, config, stats);
            }
            match write_some(conn, stats) {
                Ok(p) => progress |= p,
                Err(_) => conn.dead = true,
            }
        }
        conns.retain(|c| {
            if c.dead {
                return false;
            }
            let (inflight, flushed) = c.pending();
            if c.read_closed && inflight == 0 && flushed && !has_complete_frame(c, config) {
                // EOF with nothing pending anywhere — jobs, replies, or
                // complete-but-not-yet-admitted frames (those may be
                // waiting out the in-flight cap and must still run).
                // Leftover bytes are a partial frame that cannot grow.
                return false;
            }
            if let Some(idle) = config.idle_timeout {
                // No in-flight work and no socket progress for the whole
                // window: either a quiet connection or a client that
                // stopped reading its replies — both are reaped (write
                // progress refreshes `last_activity`, so a slow but live
                // reader never trips this).
                if inflight == 0 && c.last_activity.elapsed() > idle {
                    return false;
                }
            }
            true
        });
        if stopping {
            let drained = conns.iter().all(|c| {
                let (inflight, flushed) = c.pending();
                inflight == 0 && flushed
            });
            if drained {
                return;
            }
            let expired = draining_since.is_some_and(|t| t.elapsed() > config.drain_timeout);
            if expired {
                // The drain window closed with jobs still in flight.
                // Closing the sockets now would silently drop their
                // correlation ids — the one thing the exactly-one-reply
                // contract forbids. Answer every outstanding id with a
                // ShuttingDown refusal and give the sockets one bounded
                // final flush. A job that completes after this point
                // finds its id gone and stays silent (see `dispatch`).
                abort_undrained(&mut conns, stats);
                return;
            }
        }
        if !progress {
            std::thread::sleep(config.poll_interval);
        }
    }
}

/// Drain-timeout expiry path: answers every still-outstanding
/// correlation id with a [`EngineError::QueueClosed`] (`ShuttingDown` on
/// the wire) refusal, then flushes the write queues for one bounded
/// window. Clients waiting on those ids get a typed, retryable refusal
/// instead of a silent connection close mid-request.
fn abort_undrained(conns: &mut [Conn], stats: &Arc<NetStats>) {
    const FINAL_FLUSH_BUDGET: Duration = Duration::from_millis(250);
    for conn in conns.iter_mut() {
        if conn.dead {
            continue;
        }
        let mut s = conn.shared.lock().unwrap();
        let checked = s.checked;
        let mut orphans: Vec<u64> = s.inflight.drain().collect();
        orphans.sort_unstable(); // deterministic reply order
        for corr in orphans {
            let reply = wire::encode_response(&Err((u64::MAX, EngineError::QueueClosed)));
            s.replies.push_back(seal(checked, corr, &reply));
        }
    }
    let deadline = Instant::now() + FINAL_FLUSH_BUDGET;
    loop {
        let mut all_flushed = true;
        let mut progress = false;
        for conn in conns.iter_mut() {
            if conn.dead {
                continue;
            }
            match write_some(conn, stats) {
                Ok(p) => progress |= p,
                Err(_) => {
                    conn.dead = true;
                    continue;
                }
            }
            let (_, flushed) = conn.pending();
            all_flushed &= flushed;
        }
        if all_flushed || Instant::now() >= deadline {
            return;
        }
        if !progress {
            std::thread::sleep(Duration::from_micros(500));
        }
    }
}

fn accept_new(
    listener: &TcpListener,
    conns: &mut Vec<Conn>,
    config: &ServerConfig,
    stats: &NetStats,
) -> bool {
    let mut progress = false;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                progress = true;
                if conns.len() >= config.max_connections {
                    stats.connections_refused.fetch_add(1, Ordering::Relaxed);
                    continue; // dropped: refused at capacity
                }
                if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                    continue;
                }
                stats.connections.fetch_add(1, Ordering::Relaxed);
                conns.push(Conn {
                    stream,
                    rbuf: Vec::new(),
                    discard: 0,
                    shared: Arc::new(Mutex::new(ConnShared::default())),
                    wbuf: Vec::new(),
                    woff: 0,
                    last_activity: Instant::now(),
                    read_closed: false,
                    dead: false,
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return progress,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return progress, // transient accept failure; retry next sweep
        }
    }
}

/// Reads whatever the socket has, up to a per-sweep budget so one noisy
/// connection cannot starve the rest.
fn read_some(conn: &mut Conn, config: &ServerConfig) -> io::Result<bool> {
    // High-water: one max-size envelope beyond what is already buffered.
    let high_water = LEN_BYTES + CORR_BYTES + config.max_frame_bytes;
    let mut scratch = [0u8; 16 * 1024];
    let mut progress = false;
    let mut budget: usize = 256 * 1024;
    while budget > 0 && (conn.rbuf.len() < high_water || conn.discard > 0) {
        match conn.stream.read(&mut scratch) {
            Ok(0) => {
                conn.read_closed = true;
                return Ok(progress);
            }
            Ok(n) => {
                conn.rbuf.extend_from_slice(&scratch[..n]);
                conn.last_activity = Instant::now();
                progress = true;
                budget = budget.saturating_sub(n);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(progress)
}

/// Peels complete envelopes off the reassembly buffer and dispatches
/// them, honoring the in-flight cap and the oversized-frame skip state.
fn parse_frames(
    conn: &mut Conn,
    router: &Arc<ShardRouter>,
    config: &ServerConfig,
    stats: &Arc<NetStats>,
) -> bool {
    // Consumed bytes advance an offset; the buffer is compacted once at
    // the end of the sweep. Draining the Vec per frame would memmove the
    // entire backlog for every admitted frame — quadratic when a client
    // pipelines far ahead of `max_inflight`.
    let mut off = 0;
    loop {
        if conn.discard > 0 {
            let take = conn.discard.min(conn.rbuf.len() - off);
            if take == 0 {
                break;
            }
            off += take;
            conn.discard -= take;
            continue;
        }
        let rest = &conn.rbuf[off..];
        if rest.len() < LEN_BYTES {
            break;
        }
        let len = envelope::read_len(rest);
        let checked = envelope::is_checked(rest);
        let overhead = CORR_BYTES + if checked { CRC_BYTES } else { 0 };
        if len < overhead {
            // The stream is not speaking the envelope protocol; there is
            // no way to resynchronize, and no corr id to reply under.
            conn.dead = true;
            break;
        }
        if len - overhead > config.max_frame_bytes {
            if rest.len() < LEN_BYTES + CORR_BYTES {
                break; // need the corr id to reject under
            }
            // Rejections produce replies too: the outstanding-work cap
            // pauses the parse so a peer streaming oversized headers
            // while never reading stays bounded.
            if conn.outstanding() >= config.max_inflight {
                break;
            }
            let corr = envelope::read_corr(rest);
            let reply = oversized_reply(checked, corr, len - overhead, config.max_frame_bytes);
            conn.shared.lock().unwrap().replies.push_back(reply);
            stats.frames_rejected.fetch_add(1, Ordering::Relaxed);
            off += LEN_BYTES + CORR_BYTES;
            conn.discard = len - CORR_BYTES;
            continue;
        }
        if conn.outstanding() >= config.max_inflight {
            break; // backpressure: leave the frame buffered
        }
        if rest.len() < LEN_BYTES + len {
            break;
        }
        let corr = envelope::read_corr(rest);
        if checked {
            // First checked envelope upgrades the connection: every
            // reply from here on carries a trailer too. (That is the
            // whole version negotiation — legacy peers never set the
            // flag and keep the legacy reply format.)
            conn.shared.lock().unwrap().checked = true;
            if !envelope::trailer_ok(&rest[LEN_BYTES..LEN_BYTES + len]) {
                // Corrupted in flight: refuse with a typed, retryable
                // error instead of feeding garbage into the decoder.
                stats.integrity_failures.fetch_add(1, Ordering::Relaxed);
                conn.shared
                    .lock()
                    .unwrap()
                    .replies
                    .push_back(integrity_reply(corr));
                off += LEN_BYTES + len;
                continue;
            }
        }
        let frame = &rest[LEN_BYTES + CORR_BYTES..LEN_BYTES + len - (overhead - CORR_BYTES)];
        if wire::is_stats_frame(frame) {
            // Admin frames are answered inline on the poll thread: no
            // shard queue, no worker — a scrape works even while every
            // queue is full (that is when it matters most).
            let reply = answer_stats(frame, router, stats);
            conn.shared
                .lock()
                .unwrap()
                .replies
                .push_back(seal(checked, corr, &reply));
            stats.frames_in.fetch_add(1, Ordering::Relaxed);
            off += LEN_BYTES + len;
            continue;
        }
        if wire::is_key_frame(frame) {
            // `HEVK` key pushes (cross-node key migration) are answered
            // inline too: a topology change must be able to land keys
            // even while every shard queue is saturated.
            let reply = router.handle_key_push(frame);
            conn.shared
                .lock()
                .unwrap()
                .replies
                .push_back(seal(checked, corr, &reply));
            stats.frames_in.fetch_add(1, Ordering::Relaxed);
            off += LEN_BYTES + len;
            continue;
        }
        if !dispatch(conn, router, corr, frame, checked) {
            // Shard queue full: keep the frame and retry next sweep.
            // This counts as liveness — a connection with admissible
            // work waiting out fleet saturation must not be reaped as
            // idle (a peer that stopped *reading* never gets here: the
            // outstanding cap above halts it first, with no refresh).
            conn.last_activity = Instant::now();
            break;
        }
        stats.frames_in.fetch_add(1, Ordering::Relaxed);
        off += LEN_BYTES + len;
    }
    if off > 0 {
        conn.rbuf.drain(..off);
    }
    off > 0 || conn.dead
}

/// Whether the reassembly buffer still holds a complete envelope that a
/// later sweep could serve (it may be held back *right now* by the
/// in-flight cap, the reply backlog or a full shard queue). Half-closed
/// connections must not be reaped while this is true, or a pipelined
/// tail would be silently dropped.
fn has_complete_frame(conn: &Conn, config: &ServerConfig) -> bool {
    if conn.discard > 0 || conn.rbuf.len() < LEN_BYTES {
        return false;
    }
    let len = envelope::read_len(&conn.rbuf);
    let overhead = CORR_BYTES
        + if envelope::is_checked(&conn.rbuf) {
            CRC_BYTES
        } else {
            0
        };
    if len < overhead {
        return false; // malformed: the next parse marks the conn dead
    }
    if len - overhead > config.max_frame_bytes {
        // Rejectable (and answerable) once the corr id is present.
        return conn.rbuf.len() >= LEN_BYTES + CORR_BYTES;
    }
    conn.rbuf.len() >= LEN_BYTES + len
}

/// Hands one frame to the router without ever blocking the poll thread.
/// Returns whether the frame was consumed: `false` means the owning
/// shard's queue was full — nothing happened, the caller keeps the
/// frame buffered and engine backpressure becomes TCP backpressure. The
/// completion callback runs on an engine worker thread and only touches
/// the connection's shared half.
fn dispatch(
    conn: &Conn,
    router: &Arc<ShardRouter>,
    corr: u64,
    frame: &[u8],
    checked: bool,
) -> bool {
    conn.shared.lock().unwrap().inflight.insert(corr);
    let shared = Arc::clone(&conn.shared);
    let sent = router.try_dispatch_frame_with_callback(frame, move |reply| {
        let mut s = shared.lock().unwrap();
        // Reply only while the id is still outstanding: drain-expired
        // shutdown answers ids itself, and a late completion must not
        // produce a second reply under the same correlation id.
        if s.inflight.remove(&corr) {
            s.replies.push_back(seal(checked, corr, &reply));
        }
    });
    match sent {
        Ok(Some(_)) => true,
        Ok(None) => {
            // Shard queue at capacity; the callback was dropped unused.
            conn.shared.lock().unwrap().inflight.remove(&corr);
            false
        }
        Err(e) => {
            // Synchronous refusal (bad frame, unknown tenant/shard,
            // closed queue): the callback was never registered, so the
            // error reply is produced here — the frame is consumed.
            let reply = seal(checked, corr, &wire::encode_response(&Err((u64::MAX, e))));
            let mut s = conn.shared.lock().unwrap();
            s.inflight.remove(&corr);
            s.replies.push_back(reply);
            true
        }
    }
}

/// Serves one `HEVS` admin frame synchronously: the merged router-wide
/// metrics exposition (with transport counters appended) or the trace
/// dump. Malformed admin frames get an ordinary error reply under the
/// same corr id, so a confused client is told rather than hung.
fn answer_stats(frame: &[u8], router: &Arc<ShardRouter>, stats: &Arc<NetStats>) -> Vec<u8> {
    match wire::decode_stats_request(frame) {
        Ok(wire::StatsKind::Metrics) => {
            let mut body = hefv_engine::render_prometheus(&router.stats());
            render_net_metrics(&mut body, &stats.snapshot());
            wire::encode_stats_response(wire::StatsKind::Metrics, &body)
        }
        Ok(wire::StatsKind::Traces) => {
            wire::encode_stats_response(wire::StatsKind::Traces, &router.render_traces())
        }
        Err(e) => wire::encode_response(&Err((u64::MAX, e))),
    }
}

/// Appends the transport's own counter families to a metrics body, in
/// the same Prometheus text grammar the engine exposition uses. Lives
/// here (not in `hefv-engine`) so the engine stays net-independent.
fn render_net_metrics(out: &mut String, s: &NetStatsSnapshot) {
    use std::fmt::Write;
    let mut family = |name: &str, help: &str, value: u64| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    };
    family(
        "hefv_net_connections_total",
        "Connections accepted by the TCP front-end.",
        s.connections,
    );
    family(
        "hefv_net_connections_refused_total",
        "Connections refused at the connection cap.",
        s.connections_refused,
    );
    family(
        "hefv_net_frames_in_total",
        "Complete request frames read off sockets.",
        s.frames_in,
    );
    family(
        "hefv_net_frames_rejected_total",
        "Frames refused before reaching the router (oversized).",
        s.frames_rejected,
    );
    family(
        "hefv_integrity_failures_total",
        "Checked envelopes refused for failing their CRC check.",
        s.integrity_failures,
    );
    family(
        "hefv_net_replies_out_total",
        "Reply envelopes fully written back.",
        s.replies_out,
    );
    family(
        "hefv_client_retries_total",
        "Frames this process re-submitted after a retryable refusal.",
        crate::client::client_retries_total(),
    );
}

/// Flushes the write queue as far as the socket allows.
fn write_some(conn: &mut Conn, stats: &Arc<NetStats>) -> io::Result<bool> {
    let mut progress = false;
    loop {
        if conn.woff >= conn.wbuf.len() {
            match conn.shared.lock().unwrap().replies.pop_front() {
                Some(next) => {
                    conn.wbuf = next;
                    conn.woff = 0;
                }
                None => return Ok(progress),
            }
        }
        match conn.stream.write(&conn.wbuf[conn.woff..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => {
                conn.woff += n;
                conn.last_activity = Instant::now();
                progress = true;
                if conn.woff >= conn.wbuf.len() {
                    stats.replies_out.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(progress),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}
