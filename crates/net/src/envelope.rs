//! The transport envelope wrapping each `HEVQ`/`HEVP` frame on a TCP
//! stream.
//!
//! Engine wire frames are self-describing but not self-delimiting, and
//! the server completes jobs out of order (that is the point of
//! pipelining), so the stream protocol adds the two things TCP needs:
//! a length prefix to find frame boundaries and a caller-chosen
//! correlation id echoed verbatim in the reply. Layout (little-endian):
//!
//! ```text
//! envelope := len u32 | corr u64 | frame…                (len = 8 + frame length)
//! checked  := len|CRC_FLAG u32 | corr u64 | frame… | crc32 u32
//!                                                        (len = 8 + frame length + 4)
//! ```
//!
//! The same envelope carries requests client→server and replies
//! server→client. `corr` is opaque to the server; [`crate::Client`]
//! assigns sequential ids and matches replies back to calls with them.
//!
//! # Integrity (version negotiation via the flag bit)
//!
//! A *checked* envelope sets the top bit of the length prefix
//! ([`CRC_FLAG`]) and appends a CRC32 trailer computed over
//! `corr || frame` (everything after the length prefix, before the
//! trailer). The engine's 64 MiB frame cap keeps real lengths far below
//! the flag bit, so legacy peers and checked peers coexist on the same
//! port: the flag *is* the version negotiation. A receiver that sees the
//! flag verifies the trailer and strips it; a mismatch means the frame
//! was corrupted in flight and must be refused — never decoded.

use hefv_core::crc32::crc32;

/// Bytes of the length prefix.
pub const LEN_BYTES: usize = 4;

/// Bytes of the correlation id (counted inside the length prefix).
pub const CORR_BYTES: usize = 8;

/// Bytes of the CRC32 trailer on a checked envelope (counted inside the
/// length prefix).
pub const CRC_BYTES: usize = 4;

/// Length-prefix flag marking a checked (CRC-trailered) envelope.
pub const CRC_FLAG: u32 = 1 << 31;

/// Wraps one frame in a legacy (unchecked) envelope.
///
/// # Panics
///
/// Panics if `frame` exceeds `u32::MAX - 8` bytes — unreachable for
/// frames under the engine's 64 MiB cap, which both endpoints enforce.
pub fn encode(corr: u64, frame: &[u8]) -> Vec<u8> {
    let len = u32::try_from(CORR_BYTES + frame.len()).expect("frame under the u32 envelope limit");
    let mut out = Vec::with_capacity(LEN_BYTES + CORR_BYTES + frame.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&corr.to_le_bytes());
    out.extend_from_slice(frame);
    out
}

/// Wraps one frame in a checked envelope: [`CRC_FLAG`] set in the length
/// prefix, CRC32 over `corr || frame` appended.
///
/// # Panics
///
/// Panics if `frame` is large enough for the length to collide with
/// [`CRC_FLAG`] — unreachable under the engine's 64 MiB frame cap.
pub fn encode_checked(corr: u64, frame: &[u8]) -> Vec<u8> {
    let len = u32::try_from(CORR_BYTES + frame.len() + CRC_BYTES)
        .expect("frame under the u32 envelope limit");
    assert!(len & CRC_FLAG == 0, "frame length collides with CRC flag");
    let mut out = Vec::with_capacity(LEN_BYTES + len as usize);
    out.extend_from_slice(&(len | CRC_FLAG).to_le_bytes());
    out.extend_from_slice(&corr.to_le_bytes());
    out.extend_from_slice(frame);
    let crc = crc32(&out[LEN_BYTES..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Reads the length prefix from the first [`LEN_BYTES`] of `bytes`,
/// masking off [`CRC_FLAG`]: the result is the byte count following the
/// prefix, trailer included when present.
pub(crate) fn read_len(bytes: &[u8]) -> usize {
    (u32::from_le_bytes(bytes[..LEN_BYTES].try_into().expect("4 bytes")) & !CRC_FLAG) as usize
}

/// Whether the envelope starting at `bytes` carries a CRC trailer.
pub(crate) fn is_checked(bytes: &[u8]) -> bool {
    u32::from_le_bytes(bytes[..LEN_BYTES].try_into().expect("4 bytes")) & CRC_FLAG != 0
}

/// Reads the correlation id following the length prefix.
pub(crate) fn read_corr(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(
        bytes[LEN_BYTES..LEN_BYTES + CORR_BYTES]
            .try_into()
            .expect("8 bytes"),
    )
}

/// Verifies a checked envelope's trailer. `body` is everything after the
/// length prefix (`corr || frame || crc`); returns `true` when the
/// stored CRC matches a recomputation over `corr || frame`.
pub(crate) fn trailer_ok(body: &[u8]) -> bool {
    if body.len() < CORR_BYTES + CRC_BYTES {
        return false;
    }
    let (payload, tail) = body.split_at(body.len() - CRC_BYTES);
    crc32(payload) == u32::from_le_bytes(tail.try_into().expect("4 bytes"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let env = encode(0xDEAD_BEEF, b"frame");
        assert_eq!(read_len(&env), CORR_BYTES + 5);
        assert_eq!(read_corr(&env), 0xDEAD_BEEF);
        assert!(!is_checked(&env));
        assert_eq!(&env[LEN_BYTES + CORR_BYTES..], b"frame");
    }

    #[test]
    fn empty_frame_is_representable() {
        let env = encode(1, b"");
        assert_eq!(env.len(), LEN_BYTES + CORR_BYTES);
        assert_eq!(read_len(&env), CORR_BYTES);
    }

    #[test]
    fn checked_roundtrip() {
        let env = encode_checked(0xDEAD_BEEF, b"frame");
        assert!(is_checked(&env));
        assert_eq!(read_len(&env), CORR_BYTES + 5 + CRC_BYTES);
        assert_eq!(read_corr(&env), 0xDEAD_BEEF);
        assert!(trailer_ok(&env[LEN_BYTES..]));
        let payload = &env[LEN_BYTES + CORR_BYTES..env.len() - CRC_BYTES];
        assert_eq!(payload, b"frame");
    }

    #[test]
    fn every_flip_in_a_checked_envelope_is_caught() {
        let env = encode_checked(42, b"sensitive ciphertext bytes");
        // Any single-bit flip past the length prefix fails verification
        // (flips inside the prefix are framing errors, handled earlier).
        for byte in LEN_BYTES..env.len() {
            for bit in 0..8 {
                let mut bad = env.clone();
                bad[byte] ^= 1 << bit;
                assert!(!trailer_ok(&bad[LEN_BYTES..]), "flip at {byte}:{bit}");
            }
        }
    }

    #[test]
    fn short_checked_bodies_are_refused() {
        assert!(!trailer_ok(b""));
        assert!(!trailer_ok(&[0u8; CORR_BYTES + CRC_BYTES - 1]));
    }
}
