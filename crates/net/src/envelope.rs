//! The transport envelope wrapping each `HEVQ`/`HEVP` frame on a TCP
//! stream.
//!
//! Engine wire frames are self-describing but not self-delimiting, and
//! the server completes jobs out of order (that is the point of
//! pipelining), so the stream protocol adds the two things TCP needs:
//! a length prefix to find frame boundaries and a caller-chosen
//! correlation id echoed verbatim in the reply. Layout (little-endian):
//!
//! ```text
//! envelope := len u32 | corr u64 | frame…        (len = 8 + frame length)
//! ```
//!
//! The same envelope carries requests client→server and replies
//! server→client. `corr` is opaque to the server; [`crate::Client`]
//! assigns sequential ids and matches replies back to calls with them.

/// Bytes of the length prefix.
pub const LEN_BYTES: usize = 4;

/// Bytes of the correlation id (counted inside the length prefix).
pub const CORR_BYTES: usize = 8;

/// Wraps one frame in an envelope.
///
/// # Panics
///
/// Panics if `frame` exceeds `u32::MAX - 8` bytes — unreachable for
/// frames under the engine's 64 MiB cap, which both endpoints enforce.
pub fn encode(corr: u64, frame: &[u8]) -> Vec<u8> {
    let len = u32::try_from(CORR_BYTES + frame.len()).expect("frame under the u32 envelope limit");
    let mut out = Vec::with_capacity(LEN_BYTES + CORR_BYTES + frame.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&corr.to_le_bytes());
    out.extend_from_slice(frame);
    out
}

/// Reads the length prefix from the first [`LEN_BYTES`] of `bytes`.
pub(crate) fn read_len(bytes: &[u8]) -> usize {
    u32::from_le_bytes(bytes[..LEN_BYTES].try_into().expect("4 bytes")) as usize
}

/// Reads the correlation id following the length prefix.
pub(crate) fn read_corr(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(
        bytes[LEN_BYTES..LEN_BYTES + CORR_BYTES]
            .try_into()
            .expect("8 bytes"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let env = encode(0xDEAD_BEEF, b"frame");
        assert_eq!(read_len(&env), CORR_BYTES + 5);
        assert_eq!(read_corr(&env), 0xDEAD_BEEF);
        assert_eq!(&env[LEN_BYTES + CORR_BYTES..], b"frame");
    }

    #[test]
    fn empty_frame_is_representable() {
        let env = encode(1, b"");
        assert_eq!(env.len(), LEN_BYTES + CORR_BYTES);
        assert_eq!(read_len(&env), CORR_BYTES);
    }
}
