//! TCP transport for the engine's remote shards.
//!
//! [`TcpConnector`] implements [`hefv_engine::remote::ShardConnector`]
//! over the envelope protocol: a router process attaches a peer node
//! with [`ShardRouter::add_remote_shard`] and this connector supplies
//! the pooled connections its `RemoteShard` forwards frames on, plus the
//! liveness probe (an `HEVS` metrics scrape over a fresh connection —
//! proving the node's accept loop, poll thread and router all answer).
//!
//! Data-path frames go out in *checked* envelopes (CRC32 trailer, see
//! [`crate::envelope`]) and replies are verified on receipt, so a
//! corrupted frame in either direction is refused instead of decoded.
//!
//! The data path honors the test-only fault-injection knob
//! (`HEFV_NET_FAULT`); probes deliberately do not, so injected frame
//! loss exercises the retry machinery without flapping the circuit
//! breaker.
//!
//! [`ShardRouter::add_remote_shard`]:
//! hefv_engine::router::ShardRouter::add_remote_shard

use crate::client::Client;
use crate::envelope::{self, CORR_BYTES, CRC_BYTES, LEN_BYTES};
use crate::fault::{self, FaultPlan};
use hefv_engine::remote::{FrameReceiver, FrameSender, ShardConnector};
use hefv_engine::wire;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Connection factory for one peer node. See the module docs.
///
/// The target address is retargetable at runtime: pointing an existing
/// `RemoteShard` at a node's replacement (same role, new address) lets
/// its reconnect/probe machinery pick the new node up without tearing
/// the shard out of the router — the breaker closes on the first
/// successful probe and pending traffic resumes.
#[derive(Debug, Clone)]
pub struct TcpConnector {
    addr: Arc<Mutex<SocketAddr>>,
    connect_timeout: Duration,
}

impl TcpConnector {
    /// A connector for `addr` with a 2 s connect timeout.
    pub fn new(addr: SocketAddr) -> Self {
        Self::with_timeout(addr, Duration::from_secs(2))
    }

    /// A connector with an explicit connect timeout.
    pub fn with_timeout(addr: SocketAddr, connect_timeout: Duration) -> Self {
        TcpConnector {
            addr: Arc::new(Mutex::new(addr)),
            connect_timeout,
        }
    }

    /// Points every future connection and probe at `addr` (shared across
    /// clones, so the connector handed to a `RemoteShard` sees it).
    pub fn retarget(&self, addr: SocketAddr) {
        *self.addr.lock().unwrap() = addr;
    }

    fn current_addr(&self) -> SocketAddr {
        *self.addr.lock().unwrap()
    }
}

impl ShardConnector for TcpConnector {
    fn connect(&self) -> io::Result<(Box<dyn FrameSender>, Box<dyn FrameReceiver>)> {
        let stream = TcpStream::connect_timeout(&self.current_addr(), self.connect_timeout)?;
        stream.set_nodelay(true)?;
        let reader = stream.try_clone()?;
        // Distinct fault-injection streams per connection, seeded off a
        // process counter so reconnects do not replay the same coin
        // flips.
        static SEED: AtomicU64 = AtomicU64::new(0x5EED);
        Ok((
            Box::new(TcpFrameSender {
                stream,
                fault: fault::plan(),
                rng: SEED.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed),
            }),
            Box::new(TcpFrameReceiver { stream: reader }),
        ))
    }

    fn probe(&self, timeout: Duration) -> io::Result<()> {
        let stream = TcpStream::connect_timeout(&self.current_addr(), timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let mut client = Client::from_stream(stream);
        client.scrape_stats(wire::StatsKind::Metrics).map(|_| ())
    }

    fn endpoint(&self) -> String {
        self.current_addr().to_string()
    }
}

struct TcpFrameSender {
    stream: TcpStream,
    fault: FaultPlan,
    rng: u64,
}

impl FrameSender for TcpFrameSender {
    fn send(&mut self, corr: u64, frame: &[u8]) -> io::Result<()> {
        let mut bytes = envelope::encode_checked(corr, frame);
        if self.fault.active() {
            if self.fault.delay > Duration::ZERO {
                std::thread::sleep(self.fault.delay);
            }
            if fault::should_drop(&self.fault, &mut self.rng) {
                // "Lost on the wire": report success and send nothing —
                // the remote shard's sweep re-sends after its timeout.
                return Ok(());
            }
            if fault::should_corrupt(&self.fault, &mut self.rng) {
                // Flip one bit past the length prefix: framing survives,
                // and the receiver's CRC check must refuse the envelope.
                let span = bytes.len() - LEN_BYTES;
                let at = LEN_BYTES + (fault::next_rand(&mut self.rng) as usize) % span;
                bytes[at] ^= 1 << (fault::next_rand(&mut self.rng) % 8);
            }
        }
        self.stream.write_all(&bytes)
    }

    fn close(&mut self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

struct TcpFrameReceiver {
    stream: TcpStream,
}

impl FrameReceiver for TcpFrameReceiver {
    fn recv(&mut self) -> io::Result<(u64, Vec<u8>)> {
        let mut header = [0u8; LEN_BYTES + CORR_BYTES];
        self.stream.read_exact(&mut header)?;
        let len = envelope::read_len(&header);
        let checked = envelope::is_checked(&header);
        let overhead = CORR_BYTES + if checked { CRC_BYTES } else { 0 };
        if len < overhead || len - overhead > wire::MAX_FRAME_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("reply envelope of {len} bytes breaks the protocol"),
            ));
        }
        let corr = envelope::read_corr(&header);
        let mut frame = vec![0u8; len - CORR_BYTES];
        self.stream.read_exact(&mut frame)?;
        if checked {
            // `corr || frame || crc` is what the trailer covers.
            let mut body = header[LEN_BYTES..].to_vec();
            body.extend_from_slice(&frame);
            if !envelope::trailer_ok(&body) {
                // A corrupted reply cannot be decoded; kill the
                // connection so the pending frame is re-sent on a
                // fresh one by the maintenance sweep.
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "reply envelope failed its CRC check",
                ));
            }
            frame.truncate(frame.len() - CRC_BYTES);
        }
        Ok((corr, frame))
    }
}
