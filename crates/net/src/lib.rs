//! # hefv-net
//!
//! The TCP front-end for the evaluation engine: the listener the
//! ROADMAP's "async TCP front-end" item called for, feeding
//! [`hefv_engine::router::ShardRouter`] from off-box clients.
//!
//! The design is runtime-agnostic by construction — no async runtime, no
//! poll syscall wrapper, no external crates (consistent with the
//! workspace's offline shim policy): a single background thread drives
//! non-blocking std sockets in a small poll loop. Each connection speaks
//! the [`envelope`] protocol (a length prefix plus a correlation id
//! around the engine's v2 `HEVQ`/`HEVP` frames from
//! [`hefv_engine::wire`]), and every frame is dispatched through
//! [`ShardRouter::dispatch_frame_with_callback`] so a connection can
//! keep many jobs in flight: replies come back in *completion* order,
//! correlated by the envelope id, exactly like the engine's own
//! pipelined seam.
//!
//! What the server guarantees:
//!
//! * **Framing under adversarial segmentation** — frames split across
//!   arbitrary TCP read boundaries (or many-per-read) reassemble
//!   correctly; partial writes resume where they stopped.
//! * **Bounded resources** — the engine's 64 MiB frame cap (tightened
//!   per server by [`ServerConfig::max_frame_bytes`]) is enforced
//!   mid-stream: an oversized frame gets an error reply and its body is
//!   skipped without buffering, while the connection keeps serving.
//!   Per-connection in-flight jobs are capped ([`ServerConfig::max_inflight`])
//!   by *not reading* past the cap — backpressure through TCP, not
//!   unbounded queues. Idle connections time out.
//! * **Graceful shutdown** — [`NetServer::shutdown`] stops accepting,
//!   lets in-flight jobs finish, flushes their replies (bounded by
//!   [`ServerConfig::drain_timeout`]) and joins the poll thread; no
//!   thread outlives the server.
//!
//! [`ShardRouter::dispatch_frame_with_callback`]:
//! hefv_engine::router::ShardRouter::dispatch_frame_with_callback
//!
//! # Example: a loopback round trip
//!
//! ```
//! use hefv_core::prelude::*;
//! use hefv_engine::prelude::*;
//! use hefv_engine::router::ShardSpec;
//! use hefv_engine::wire;
//! use hefv_net::{Client, NetServer, ServerConfig};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use std::sync::Arc;
//!
//! // A one-shard router serving toy parameters.
//! let ctx = Arc::new(FvContext::new(FvParams::insecure_toy()).unwrap());
//! let router = Arc::new(ShardRouter::new());
//! router
//!     .add_shard(ShardSpec {
//!         name: "s0".into(),
//!         ctx: Arc::clone(&ctx),
//!         config: EngineConfig { workers: 1, ..EngineConfig::default() },
//!     })
//!     .unwrap();
//! let mut rng = StdRng::seed_from_u64(3);
//! let (sk, pk, rlk) = keygen(&ctx, &mut rng);
//! router.register_tenant(7, TenantKeys::compute(pk.clone(), rlk)).unwrap();
//!
//! // Serve it over TCP on an ephemeral loopback port.
//! let server = NetServer::bind("127.0.0.1:0", Arc::clone(&router), ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//!
//! // One encrypted 20 + 22 over the wire.
//! let (t, n) = (ctx.params().t, ctx.params().n);
//! let enc = |v, rng: &mut StdRng| encrypt(&ctx, &pk, &Plaintext::new(vec![v], t, n), rng);
//! let req = EvalRequest::binary(7, EvalOp::Add, enc(20, &mut rng), enc(22, &mut rng));
//! let reply = client.call(&wire::encode_request(&req)).unwrap();
//! match wire::decode_response(&ctx, &reply).unwrap() {
//!     wire::ResponseFrame::Ok(resp) => {
//!         assert_eq!(decrypt(&ctx, &sk, &resp.result).coeffs()[0], 42 % t);
//!     }
//!     wire::ResponseFrame::Err { message, .. } => panic!("{message}"),
//! }
//! server.shutdown();
//! router.shutdown();
//! ```

pub mod client;
pub mod envelope;
mod fault;
pub mod remote;
pub mod server;

pub use client::{client_retries_total, Client, RetryPolicy};
pub use remote::TcpConnector;
pub use server::{NetServer, NetStatsSnapshot, ServerConfig};
